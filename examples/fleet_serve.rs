//! Fleet serving: ~10,000 queries against a small campus population.
//!
//! Builds a scenario (cloud training + device personalization), enrolls
//! every personalized model into the sharded registry with its privacy
//! layer, then drives a Zipf-skewed, bursty, seeded request stream
//! through the batch scheduler and the fused inference kernels — the
//! ROADMAP's "heavy traffic from many users" north star in miniature,
//! extending Fig. 4 step 3 beyond the paper's one-query-at-a-time story.
//!
//! Run with: `cargo run --release --example fleet_serve`

use pelican::platform::ComputeTier;
use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_serve::{
    run_fleet, FleetConfig, RegistryConfig, SchedulerConfig, ShardedRegistry, TrafficConfig,
};

fn main() {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(4).build();
    println!("campus        : {} users, {} locations", scenario.dataset.users.len(), {
        scenario.dataset.n_locations()
    });
    println!("general model : {}", scenario.general.describe());
    println!("enrolled      : {} personalized models (T = 1e-3 privacy layer)\n", {
        scenario.personal.len()
    });

    // Guard the core contract where CI can see it: a fused batch answers
    // every query bit-identically to the one-at-a-time path.
    let mut sharpened = scenario.personal[0].model.clone();
    PrivacyLayer::default().apply(&mut sharpened);
    let queries: Vec<_> = scenario.personal[0].test.iter().map(|s| s.xs.clone()).collect();
    let fused = sharpened.predict_proba_batch(&queries);
    for (q, batched) in queries.iter().zip(&fused) {
        assert_eq!(&sharpened.predict_proba(q), batched, "batched answers must be bit-identical");
    }
    println!("equivalence   : {} fused answers bit-identical to unbatched ones ✓\n", fused.len());

    let config = FleetConfig {
        registry: RegistryConfig { shards: 8, hot_capacity: 2 },
        scheduler: SchedulerConfig { max_batch: 16, max_delay_us: 2_000 },
        traffic: TrafficConfig { requests: 10_000, seed: 42, ..TrafficConfig::default() },
        tier: ComputeTier::Cloud,
        privacy: Some(PrivacyLayer::default()),
        unenrolled_clients: 4,
        queries_per_user: 32,
        cloud: None,
    };
    let outcome = run_fleet(&scenario, &config).expect("registry envelopes decode");
    println!("{}", outcome.report.render());

    // A tighter cache shows the cold path under pressure.
    let registry = ShardedRegistry::new(scenario.general.clone(), config.registry);
    registry.enroll_scenario(&scenario, config.privacy);
    println!(
        "registry      : {} shards, {} cold envelopes, per-shard hot capacity {}",
        registry.shard_count(),
        registry.stats().cold_models,
        config.registry.hot_capacity
    );
}

//! Durable registry smoke: publish → restart → serve, then the
//! rollback-under-traffic study.
//!
//! Part one exercises the persistence contract end to end: a fleet of
//! personalized models is published through a store-backed
//! [`ShardedRegistry`] (every publication crosses the write-ahead commit
//! path before becoming visible), the registry is dropped, and a fresh
//! one is reopened over the same backend bytes — a kill-free restart.
//! Every user must serve bit-identically to before, from the log alone.
//!
//! Part two runs [`pelican_train::run_rollback_study`]: a regressed
//! fleet publication is canary-detected and rolled back to the retained
//! v1 envelopes over one contended egress link while queries keep
//! flowing, with the staleness window measured on the virtual clock.
//!
//! Run with: `cargo run --release --example fleet_rollback`

use std::sync::Arc;

use pelican_nn::SequenceModel;
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{run_rollback_study, RollbackConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USERS: usize = 8;
const SHARDS: usize = 4;

fn model(seed: u64) -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(seed);
    SequenceModel::single_lstm(3, 6, 5, 0.0, &mut rng)
}

fn main() {
    // --- Part one: publish → restart → serve -------------------------
    let disk = MemBackend::new();
    let config = StoreConfig { shards: SHARDS, compress: true, ..StoreConfig::default() };
    let store = EnvelopeStore::open(Arc::new(disk.clone()), config).expect("fresh log opens");
    let registry = ShardedRegistry::with_store(
        model(0),
        RegistryConfig { shards: SHARDS, hot_capacity: USERS / 2 },
        Arc::new(store),
    );

    let probe = vec![vec![0.4f32, 0.1, 0.7], vec![0.2, 0.9, 0.3]];
    let versions: Vec<u64> = (0..USERS).map(|u| registry.enroll(u, &model(u as u64 + 1))).collect();
    let answers: Vec<Vec<f32>> =
        (0..USERS).map(|u| registry.get(u).expect("decodes").0.predict_proba(&probe)).collect();
    println!("published     : {USERS} personalized models, versions {versions:?}");

    // Kill the process (drop every in-memory structure); the log is all
    // that survives.
    drop(registry);
    let store = EnvelopeStore::open(Arc::new(disk.clone()), config).expect("restart replays");
    assert_eq!(store.recovery().torn_segments, 0, "clean shutdown leaves nothing torn");
    let stats = store.stats();
    println!(
        "restart       : {} records replayed across {} segments (stored/raw {:.3})",
        stats.appended_records + stats.recovery.committed_records,
        stats.segments,
        stats.compression_ratio()
    );
    let reborn = ShardedRegistry::with_store(
        model(0),
        RegistryConfig { shards: SHARDS, hot_capacity: USERS / 2 },
        Arc::new(store),
    );
    for u in 0..USERS {
        assert_eq!(reborn.version_of(u), Some(versions[u]), "user {u} version survived");
        assert_eq!(
            reborn.get(u).expect("decodes").0.predict_proba(&probe),
            answers[u],
            "user {u} serves bit-identically after the restart"
        );
    }
    println!("served        : {USERS}/{USERS} users bit-identical after a kill-free restart ✓\n");

    // --- Part two: rollback under traffic ----------------------------
    let outcome = run_rollback_study(&RollbackConfig { users: USERS, ..Default::default() });
    print!("{}", outcome.report.render());
    assert_eq!(outcome.report.queries_degraded_after_swap, 0);
    assert!(outcome.report.staleness_us > 0);
    println!("\nrollback study: staleness window paid on the contended egress link ✓");
}

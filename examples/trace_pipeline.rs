//! The data layer end to end: ground-truth mobility → raw WiFi syslog
//! events → extracted sessions → the statistics the paper's analyses rest
//! on (skewed dwell time, regularity, degree of mobility).
//!
//! Run with: `cargo run --release --example trace_pipeline`

use pelican_mobility::{
    compare, extract_sessions, sessions_to_events, trace_stats, CampusConfig, EventNoise,
    ExtractConfig, Scale, TraceGenerator,
};

fn main() {
    let mut generator = TraceGenerator::new(CampusConfig::for_scale(Scale::Small), 7);
    let campus = generator.campus().clone();

    println!("campus: {} buildings, {} APs\n", campus.buildings().len(), campus.total_aps());
    println!("user  sessions  events  recall  top-share  entropy  regularity  mobility");
    println!("--------------------------------------------------------------------------");
    for user_id in 0..6 {
        let trace = generator.user_trace(user_id);

        // Lower ground truth into noisy controller syslog and re-extract —
        // the paper's preprocessing path (Trivedi et al.).
        let events = sessions_to_events(&trace.sessions, EventNoise::default());
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        let report = compare(&trace.sessions, &extracted);

        let stats = trace_stats(&extracted);
        println!(
            "{:>4}  {:>8}  {:>6}  {:>5.1}%  {:>8.1}%  {:>7.2}  {:>10.2}  {:>8}",
            user_id,
            trace.sessions.len(),
            events.len(),
            report.recall() * 100.0,
            stats.top_building_share * 100.0,
            stats.location_entropy,
            stats.regularity,
            stats.distinct_buildings,
        );
    }
    println!(
        "\nThe skewed top-share and high regularity are what make personalized\n\
         models accurate — and what the inversion attack feeds on."
    );
}

//! Streaming personalization smoke: the personalize-while-serve loop.
//!
//! A bootstrap week enrolls a small cohort through the one-shot
//! pipeline; then the second week of mobility sessions streams into the
//! serving tier as query arrivals while every arrival doubles as a
//! labeled sample for the per-user drift trigger. Marked users are
//! re-trained incrementally (warm-started from their durable envelopes)
//! on the work-stealing pool, re-audited through the shared logit cache,
//! and re-published while queries keep flowing — with rollback as the
//! safety net.
//!
//! The example pins the loop's three contracts:
//!
//! * same fingerprint for a 1-worker and a 4-worker pool (host
//!   scheduling never leaks into the virtual timeline);
//! * re-audit sweeps of unchanged candidates pay zero forward passes;
//! * a trigger that cannot fire leaves the store exactly as the
//!   bootstrap pipeline wrote it — the loop adds nothing when quiet.
//!
//! Run with: `cargo run --release --example fleet_live`

use std::ops::Range;
use std::sync::Arc;

use pelican::platform::ComputeTier;
use pelican::PersonalizationConfig;
use pelican_live::{run_live, DriftConfig, DriftMetric, LiveConfig};
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{SequenceModel, TrainConfig};
use pelican_serve::{RegistryConfig, SchedulerConfig, ShardedRegistry, SimServeConfig};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{AuditConfig, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARDS: usize = 2;
const COHORT: usize = 3;

fn setting() -> (MobilityDataset, SequenceModel, Range<usize>) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 42).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(42);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 12, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    (dataset, general, (n - COHORT)..n)
}

fn registry(general: &SequenceModel) -> ShardedRegistry {
    let store = EnvelopeStore::open(
        Arc::new(MemBackend::new()),
        StoreConfig { shards: SHARDS, ..StoreConfig::default() },
    )
    .expect("open empty store");
    ShardedRegistry::with_store(
        general.clone(),
        RegistryConfig { shards: SHARDS, hot_capacity: 8 },
        Arc::new(store),
    )
}

fn config(workers: usize, metric: DriftMetric) -> LiveConfig {
    LiveConfig {
        pipeline: PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
            ..PipelineConfig::default()
        },
        serve: SimServeConfig {
            scheduler: SchedulerConfig { max_batch: 4, max_delay_us: 900 },
            tier: ComputeTier::Cloud,
            network: None,
        },
        drift: DriftConfig { metric, min_new_samples: 4, window: 6 },
        us_per_minute: 1_000,
        bootstrap_minutes: 7 * 24 * 60,
        horizon_minutes: 14 * 24 * 60,
        train_fraction: 0.8,
        round_interval_us: 200_000,
        rollback_tolerance: 0.5,
    }
}

fn main() {
    let (dataset, general, cohort) = setting();
    // An always-stale trigger: worst-case retrain load for the smoke.
    let eager = DriftMetric::TopKAgreement { k: 1, min_agreement: 1.01 };

    let narrow_registry = registry(&general);
    let narrow = run_live(&dataset, cohort.clone(), &narrow_registry, &general, &config(1, eager))
        .expect("1-worker run");
    let wide_registry = registry(&general);
    let wide = run_live(&dataset, cohort.clone(), &wide_registry, &general, &config(4, eager))
        .expect("4-worker run");

    print!("{}", narrow.render());
    assert!(!narrow.retrains.is_empty(), "the eager trigger must re-train");
    assert_eq!(
        narrow.fingerprint(),
        wide.fingerprint(),
        "publication schedule must not depend on pool width"
    );
    println!("\nwidth         : 1-worker and 4-worker loops agree bit-for-bit ✓");
    assert_eq!(narrow.reaudit.misses, 0, "a re-audit sweep ran a forward pass");
    assert!(narrow.reaudit.hits > 0);
    println!(
        "re-audits     : {} sweeps replayed warm caches, zero forward passes ✓",
        narrow.reaudit.audits
    );

    // A trigger that can never fire (finite loss never exceeds +inf)
    // leaves the store exactly as the bootstrap wrote it.
    let quiescent = DriftMetric::Loss { max_loss: f64::INFINITY };
    let quiet_registry = registry(&general);
    let quiet =
        run_live(&dataset, cohort.clone(), &quiet_registry, &general, &config(1, quiescent))
            .expect("quiescent run");
    assert!(quiet.retrains.is_empty() && quiet.drift_marks == 0);
    let store = quiet_registry.store().expect("store-backed");
    for u in cohort {
        assert!(store.versions(u as u64).len() <= 1, "the quiet loop wrote beyond bootstrap");
    }
    assert!(!quiet.serve.served.is_empty());
    println!(
        "quiescent     : {} queries served, one bootstrap version per user, no extra writes ✓",
        quiet.serve.served.len()
    );
}

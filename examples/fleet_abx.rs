//! A/B experimentation smoke: two defense rungs tried on live cohorts.
//!
//! The campus population splits into A / B / holdout cohorts by seeded
//! hash, every user trains once and publishes shadow-then-active
//! envelopes, and a front-door red team attacks each treatment arm
//! strictly through the serving interface while background queries keep
//! flowing. At the checkpoint the verdict engine compares per-arm attack
//! advantage, promotes the winning rung fleet-wide, and flips the losing
//! cohort back to its retained shadow version — a store rollback, not a
//! retrain.
//!
//! The example pins the loop's contracts:
//!
//! * the same fingerprint for a 1-worker and a 4-worker trainer pool;
//! * the undefended arm loses to the hard temperature rung, and the
//!   rollout moves exactly the losing cohort plus the holdout;
//! * zero responses served from the losing rung after its flip lands;
//! * an A/A control (identical rungs) decides null and moves nobody.
//!
//! Run with: `cargo run --release --example fleet_abx`

use std::ops::Range;
use std::sync::Arc;

use pelican::platform::ComputeTier;
use pelican::{DefenseKind, PersonalizationConfig};
use pelican_abx::{run_abx, AbxConfig, Arm};
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{SequenceModel, TrainConfig};
use pelican_serve::{RegistryConfig, SchedulerConfig, ShardedRegistry, SimServeConfig};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{AuditConfig, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARDS: usize = 2;

fn setting() -> (MobilityDataset, SequenceModel, Range<usize>) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 42).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(42);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 12, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    (dataset, general, 0..n)
}

fn registry(general: &SequenceModel) -> ShardedRegistry {
    let store = EnvelopeStore::open(
        Arc::new(MemBackend::new()),
        StoreConfig { shards: SHARDS, ..StoreConfig::default() },
    )
    .expect("open empty store");
    ShardedRegistry::with_store(
        general.clone(),
        RegistryConfig { shards: SHARDS, ..RegistryConfig::default() },
        Arc::new(store),
    )
}

fn config(workers: usize, arms: [DefenseKind; 2]) -> AbxConfig {
    AbxConfig {
        pipeline: PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 1, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 8, probe_count: 8, ..AuditConfig::default() },
            ..PipelineConfig::default()
        },
        serve: SimServeConfig {
            scheduler: SchedulerConfig { max_batch: 4, max_delay_us: 900 },
            tier: ComputeTier::Cloud,
            network: None,
        },
        arms,
        fractions: (0.34, 0.33),
        attacked_per_arm: 4,
        us_per_minute: 1_000,
        horizon_minutes: 9 * 24 * 60,
        checkpoint_interval_us: 50_000_000,
        null_margin: 0.10,
        ..AbxConfig::default()
    }
}

fn main() {
    let (dataset, general, cohort) = setting();
    let treatment = [DefenseKind::None, DefenseKind::Temperature { temperature: 1e-5 }];

    let narrow_registry = registry(&general);
    let narrow =
        run_abx(&dataset, cohort.clone(), &narrow_registry, &general, &config(1, treatment))
            .expect("1-worker run");
    let wide_registry = registry(&general);
    let wide = run_abx(&dataset, cohort.clone(), &wide_registry, &general, &config(4, treatment))
        .expect("4-worker run");

    print!("{}", narrow.render());
    narrow.split.assert_partitions(narrow.publications.iter().map(|p| p.user_id));
    assert_eq!(
        narrow.fingerprint(),
        wide.fingerprint(),
        "the verdict must not depend on pool width"
    );
    println!("\nwidth         : 1-worker and 4-worker experiments agree bit-for-bit ✓");

    assert_eq!(narrow.verdict.winner(), Some(Arm::B), "the hard rung must win this seed");
    assert_eq!(narrow.flip_backs(), narrow.split.a.len(), "every losing user flips back");
    assert_eq!(narrow.promotions(), narrow.split.holdout.len(), "the holdout adopts the winner");
    assert_eq!(narrow.degraded_after_swap, 0, "no losing-rung answer after a landed flip");
    println!(
        "rollout       : {} flip-backs + {} promotions, zero degraded after swap ✓",
        narrow.flip_backs(),
        narrow.promotions()
    );

    // A/A control: identical rungs are indistinguishable and move nobody.
    let control = DefenseKind::Temperature { temperature: 1e-3 };
    let aa_registry = registry(&general);
    let aa = run_abx(&dataset, cohort, &aa_registry, &general, &config(1, [control; 2]))
        .expect("A/A run");
    assert!(aa.verdict.is_null(), "identical rungs must read null: {}", aa.verdict);
    assert!(aa.swaps.is_empty() && aa.exposed_responses == 0);
    println!("A/A control   : null verdict (Δ {:+.3}), nobody moved ✓", aa.verdict.delta());
}

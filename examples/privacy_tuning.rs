//! The user-centric privacy tuner (§V-B): sweep the privacy temperature
//! and watch attack efficacy collapse while service accuracy holds.
//!
//! Run with: `cargo run --release --example privacy_tuning`

use pelican::workbench::Scenario;
use pelican::{reduction_in_leakage, PrivacyLayer};
use pelican_attacks::{Adversary, AttackMethod, PriorKind, TimeBased};
use pelican_mobility::{Scale, SpatialLevel};

fn main() {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(21).personal_users(2).build();
    let method = AttackMethod::TimeBased(TimeBased::default());

    let baseline = scenario.attack_all(Adversary::A1, &method, PriorKind::True, &[3], 8, None);
    println!(
        "no defense:   attack top-3 {:>5.1}%   (the leak Pelican exists to stop)\n",
        baseline.accuracy(3) * 100.0
    );
    println!("temperature   attack top-3   leakage reduction   service top-3");
    println!("-----------   ------------   -----------------   --------------");

    for layer in PrivacyLayer::paper_sweep() {
        let t = layer.temperature();
        let attacked =
            scenario.attack_all(Adversary::A1, &method, PriorKind::True, &[3], 8, Some(t));
        // Service accuracy with the defense installed. The temperature
        // layer preserves the logit ordering exactly, so the deployed
        // runtime ranks from logits ("appropriate precision", §V-B).
        let mut service_acc = 0.0;
        for user in &scenario.personal {
            let mut defended = user.model.clone();
            layer.apply(&mut defended);
            let hits = user
                .test
                .iter()
                .filter(|s| defended.predict_top_k(&s.xs, 3).contains(&s.target))
                .count();
            service_acc += hits as f64 / user.test.len().max(1) as f64;
        }
        service_acc /= scenario.personal.len() as f64;
        println!(
            "{:>8.0e}      {:>5.1}%          {:>5.1}%              {:>5.1}%",
            t,
            attacked.accuracy(3) * 100.0,
            reduction_in_leakage(baseline.accuracy(3), attacked.accuracy(3)),
            service_acc * 100.0,
        );
    }
    println!("\nThe temperature is the user's knob; the provider never sees it.");
}

//! A location-aware mobile service built on Pelican: a "commute
//! recommender" that prefetches content for the places a student is
//! predicted to visit next — the motivating scenario of the paper's
//! introduction (mapping services predicting commute times, restaurant
//! recommenders prefetching nearby content).
//!
//! Demonstrates: model updates as new personal data arrives (§V-A4) and
//! the accuracy/latency trade-off between on-device and cloud deployment.
//!
//! Run with: `cargo run --release --example commute_recommender`

use pelican::workbench::Scenario;
use pelican::{
    Deployment, DevicePersonalizer, NetworkLink, PelicanService, PersonalizationConfig,
    PrivacyLayer,
};
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::TrainConfig;

fn main() {
    let scenario = Scenario::builder(Scale::Tiny, SpatialLevel::Building)
        .seed(7)
        .personal_users(1)
        .personal_weeks(1) // enroll with just one week of history…
        .build();
    let user = &scenario.personal[0];

    let mut service = PelicanService::new(scenario.general.clone(), NetworkLink::wan());
    service.enroll(
        user.user_id,
        user.model.clone(),
        Deployment::Cloud,
        Some(PrivacyLayer::default()),
    );

    let acc_week1 = user.test_accuracy(3);
    println!("week 1 model: top-3 accuracy {:.1}%", acc_week1 * 100.0);

    // A week later the device has more history: re-invoke transfer
    // learning from the current parameters (step 4 of Fig. 4).
    let full =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(7).personal_users(1).build();
    let fresh_samples = &full.personal[0].train;
    let personalizer = DevicePersonalizer::new(
        PersonalizationConfig {
            train: TrainConfig { epochs: 4, batch_size: 16, ..TrainConfig::default() },
            hidden_dim: 24,
            dropout: 0.1,
            seed: 99,
        },
        NetworkLink::wan(),
    );
    let mut updated = user.model.clone();
    let (report, usage) = personalizer.update(&mut updated, fresh_samples);
    println!(
        "update: {} steps, {:.3} billion simulated device cycles",
        report.steps,
        usage.cycles_billions()
    );
    service
        .redeploy(user.user_id, updated.clone(), Some(PrivacyLayer::default()))
        .expect("user enrolled above");

    let acc_updated =
        pelican_nn::metrics::evaluate_top_k(&updated, &full.personal[0].test, &[3]).accuracy(3);
    println!("updated model: top-3 accuracy {:.1}%", acc_updated * 100.0);

    // Serve a recommendation and show the deployment latency difference.
    let query = &full.personal[0].test[0].xs;
    let (probs, cloud_rtt) = service.query(user.user_id, query).expect("enrolled");
    let top = pelican_tensor::top_k(&probs, 3);
    println!("prefetching content for buildings {top:?} (cloud RTT {cloud_rtt:.1?})");

    let mut local = PelicanService::new(scenario.general.clone(), NetworkLink::wan());
    local.enroll(user.user_id, updated, Deployment::OnDevice, Some(PrivacyLayer::default()));
    let (_, device_rtt) = local.query(user.user_id, query).expect("enrolled");
    println!("same query on-device: RTT {device_rtt:.1?} (no network traversal)");
}

//! Fleet training: personalize, audit, publish and query a small cohort.
//!
//! Drives the full `pelican-train` pipeline end to end: a trainer pool
//! personalizes every cohort user in parallel (bit-identical to
//! sequential), the privacy-audit gate attacks each candidate and
//! escalates its defense until the leakage budget holds, audited
//! envelopes hot-swap into the serving registry, and a second warm-start
//! round re-trains the fleet from its published models while queries keep
//! flowing — Fig. 4 steps 2–4 at fleet scale.
//!
//! Run with: `cargo run --release --example fleet_train`

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, TrainConfig};
use pelican_serve::{Lookup, RegistryConfig, ShardedRegistry};
use pelican_train::{cohort_jobs, AuditConfig, FleetTrainer, PipelineConfig, TrainJob};

fn main() {
    // Cloud side: dataset + general model only — the pipeline, not the
    // scenario builder, does every per-user training run.
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(0).build();
    let cohort_start = scenario.first_personal_user;
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_start + 4, 0.8);
    println!("campus        : {} users, {} locations", scenario.dataset.users.len(), {
        scenario.dataset.n_locations()
    });
    println!("general model : {}", scenario.general.describe());
    println!("cohort        : {} personalization jobs\n", jobs.len());

    let sizing = ScenarioSizing::for_scale(Scale::Tiny);
    let pipeline = |workers: usize| PipelineConfig {
        workers,
        base_seed: 42,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: sizing.personal_epochs, ..TrainConfig::default() },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig { max_instances: 4, ..AuditConfig::default() },
        ..PipelineConfig::default()
    };

    // Guard the core contract where CI can see it: the 4-worker pool
    // publishes bit-identical weights to the sequential reference.
    let published = |workers: usize, jobs: &[TrainJob], registry: &ShardedRegistry| {
        let report = FleetTrainer::new(pipeline(workers)).run(
            &scenario.general,
            &scenario.dataset.space,
            jobs,
            registry,
        );
        let envelopes: Vec<Vec<u8>> = jobs
            .iter()
            .map(|job| {
                let (model, _) = registry.get(job.user_id).expect("published model decodes");
                ModelEnvelope::encode(&model).as_bytes().to_vec()
            })
            .collect();
        (report, envelopes)
    };
    let sequential = ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
    let (_, reference) = published(1, &jobs, &sequential);

    let registry = ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
    let (report, parallel) = published(4, &jobs, &registry);
    assert_eq!(reference, parallel, "4-worker weights must be bit-identical to sequential");
    println!("determinism   : {} envelopes bit-identical at 1 and 4 workers ✓\n", parallel.len());
    println!("{}", report.render());

    // The audit gate really gates: every enrolled model either passed or
    // carries the escalated defense the gate deployed.
    assert_eq!(report.passed() + report.escalated() + report.exhausted(), jobs.len());
    for outcome in &report.outcomes {
        println!(
            "user {:>3}  v{}  {:<9}  leakage {:.2} -> {:.2}  defense {}",
            outcome.user_id,
            outcome.version,
            outcome.gate.verdict.to_string(),
            outcome.gate.initial_leakage,
            outcome.gate.final_leakage,
            outcome.gate.defense,
        );
    }

    // Serving: every cohort member answers from their personalized model.
    let query = &jobs[0].train[0].xs;
    for job in &jobs {
        let (model, lookup) = registry.get(job.user_id).expect("published model decodes");
        assert_ne!(lookup, Lookup::Fallback, "cohort users must not fall back");
        let probs = model.predict_proba(query);
        assert_eq!(probs.len(), scenario.dataset.n_locations());
    }
    println!("\nserving       : {} cohort queries answered from published models ✓", jobs.len());

    // Step 4: warm-start the whole fleet from its published envelopes and
    // hot-swap the updates in — versions bump, cold count stays flat.
    let warm_jobs: Vec<TrainJob> = jobs
        .iter()
        .map(|j| {
            let (model, _) = registry.get(j.user_id).expect("published model decodes");
            j.clone().into_warm(ModelEnvelope::encode(&model))
        })
        .collect();
    let warm_report = FleetTrainer::new(pipeline(4)).run(
        &scenario.general,
        &scenario.dataset.space,
        &warm_jobs,
        &registry,
    );
    assert_eq!(warm_report.warm_starts(), warm_jobs.len());
    for (fresh, warm) in report.outcomes.iter().zip(&warm_report.outcomes) {
        assert!(warm.version > fresh.version, "hot-swap bumps the publication version");
    }
    let stats = registry.stats();
    assert_eq!(stats.cold_models, jobs.len(), "updates replace models, never duplicate them");
    println!(
        "warm updates  : {} models re-trained and hot-swapped (registry at {} publishes) ✓",
        warm_report.warm_starts(),
        stats.publishes,
    );
}

//! A privacy audit from the adversary's chair: run the paper's time-based
//! model-inversion attack against your own personalized model and see what
//! a curious service provider could learn (§III-B / §IV).
//!
//! Run with: `cargo run --release --example adversary_audit`

use pelican::workbench::Scenario;
use pelican_attacks::{Adversary, AttackMethod, PriorKind, TimeBased};
use pelican_mobility::{Scale, SpatialLevel};

fn main() {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(13).personal_users(2).build();

    let method = AttackMethod::TimeBased(TimeBased::default());
    println!("auditing {} personalized models\n", scenario.personal.len());

    for user in &scenario.personal {
        // The adversary (honest-but-curious provider) sees: the black-box
        // model, the prior, the previous session and the observed output.
        let eval =
            scenario.attack_user(user, Adversary::A1, &method, PriorKind::True, &[1, 3], 8, None);
        println!(
            "user {:>2}: model top-3 accuracy {:>5.1}%  |  attack recovers {:>5.1}% of hidden \
             locations (top-3), {:.0} queries/instance",
            user.user_id,
            user.test_accuracy(3) * 100.0,
            eval.accuracy(3) * 100.0,
            eval.queries_per_instance(),
        );

        // One concrete reconstruction, spelled out.
        let instances = scenario.attack_instances(user, Adversary::A1, 1);
        if let Some(inst) = instances.first() {
            let prior = scenario.prior(user, PriorKind::True);
            let probes = pelican_attacks::prior::random_probes(&scenario.dataset.space, 24, 5);
            let interest = pelican_attacks::interest_locations(&user.model, &probes, 0.01);
            let mut model = user.model.clone();
            let (ranking, _) =
                method.run(&mut model, &scenario.dataset.space, &prior, &interest, inst);
            let guesses = ranking.top_k(3);
            println!(
                "          example: user was actually in building {}; adversary's top-3 guess: \
                 {:?} {}",
                inst.truth.building,
                guesses,
                if guesses.contains(&inst.truth.building) { "← leaked" } else { "(missed)" }
            );
        }
    }
    println!("\nRun the privacy_tuning example to see how Pelican shuts this down.");
}

//! Quickstart: the Pelican pipeline end to end in ~60 lines.
//!
//! Builds a synthetic campus, trains the general model "in the cloud",
//! personalizes it for one user "on device", deploys it with the privacy
//! layer, and queries the next-location service.
//!
//! Run with: `cargo run --release --example quickstart`

use pelican::workbench::Scenario;
use pelican::{Deployment, NetworkLink, PelicanService, PrivacyLayer};
use pelican_mobility::{Scale, SpatialLevel};

fn main() {
    // 1 + 2: cloud training and device personalization, bundled by the
    // workbench. `Scale::Tiny` keeps this example fast; try `Small`.
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(1).build();
    let user = &scenario.personal[0];

    println!("general model : {}", scenario.general.describe());
    println!(
        "cloud training: {:.3} billion simulated cycles",
        scenario.general_usage.cycles_billions()
    );
    println!("personalized  : {}", user.model.describe());
    println!(
        "device fit    : {:.3} billion simulated cycles over {} samples",
        user.usage.cycles_billions(),
        user.train.len()
    );
    println!(
        "accuracy      : top-1 {:.1}%  top-3 {:.1}%",
        user.test_accuracy(1) * 100.0,
        user.test_accuracy(3) * 100.0
    );

    // 3: deployment. The user installs their privacy layer before the
    // model becomes visible to the service provider.
    let mut service = PelicanService::new(scenario.general.clone(), NetworkLink::wifi());
    service.enroll(
        user.user_id,
        user.model.clone(),
        Deployment::OnDevice,
        Some(PrivacyLayer::default()),
    );

    // Query: "given my last two sessions, where am I headed?"
    let query = &user.test[0].xs;
    let top3 = service.top_k(user.user_id, query, 3).expect("user is enrolled");
    println!("prediction    : next locations (building ids) {top3:?}");
    println!(
        "ground truth  : building {} {}",
        user.test[0].target,
        if top3.contains(&user.test[0].target) { "(hit)" } else { "(miss)" }
    );
}

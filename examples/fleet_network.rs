//! Fleet networking: train a cohort, then replay it through the
//! discrete-event device↔cloud simulator.
//!
//! Drives the full `pelican-sim` integration end to end: the trainer
//! pool personalizes and audits a small cohort (per-job simulated device
//! costs measured exactly per thread), the simulator replays the fleet —
//! general-model downloads over heterogeneous seeded links overlapping
//! other devices' training, publication uploads queued on one shared
//! cloud uplink, stragglers injected — and cloud-deployed serving pays
//! the same contended network per query round trip. Determinism is
//! asserted throughout: traces are bit-identical across runs and across
//! trainer-pool widths.
//!
//! Run with: `cargo run --release --example fleet_network`

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, TrainConfig};
use pelican_serve::{run_fleet, CloudNetwork, FleetConfig, RegistryConfig, ShardedRegistry};
use pelican_sim::{Discipline, LinkMix, LinkProfile, StragglerConfig};
use pelican_train::{
    cohort_jobs, simulate_fleet_network, AuditConfig, FleetTrainer, NetComponent, NetworkConfig,
    PipelineConfig, UplinkMode,
};

fn main() {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(0).build();
    let cohort_start = scenario.first_personal_user;
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_start + 4, 0.8);
    let general_bytes = ModelEnvelope::encode(&scenario.general).len() as u64;
    println!("cohort        : {} devices, general envelope {} kB", jobs.len(), {
        general_bytes / 1024
    });

    let sizing = ScenarioSizing::for_scale(Scale::Tiny);
    let train_at = |workers: usize| {
        let registry = ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
        FleetTrainer::new(PipelineConfig {
            workers,
            base_seed: 42,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: sizing.personal_epochs, ..TrainConfig::default() },
                hidden_dim: sizing.hidden_dim,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 4, ..AuditConfig::default() },
            ..PipelineConfig::default()
        })
        .run(&scenario.general, &scenario.dataset.space, &jobs, &registry)
    };

    // Determinism across trainer-pool widths: the simulated network
    // timeline must not know how many host threads trained the fleet.
    let report = train_at(1);
    let wide = train_at(4);
    let net = NetworkConfig {
        mix: LinkMix::campus().with_stragglers(StragglerConfig { fraction: 0.5, slowdown: 8.0 }),
        seed: 0xF1EE7,
        ..NetworkConfig::default()
    };
    let narrow_sim = simulate_fleet_network(&report, general_bytes, &net);
    let wide_sim = simulate_fleet_network(&wide, general_bytes, &net);
    assert_eq!(narrow_sim.sim.trace, wide_sim.sim.trace, "trace must ignore pool width");
    assert_eq!(narrow_sim.enrolls, wide_sim.enrolls, "breakdowns must ignore pool width");
    assert_eq!(
        narrow_sim.fingerprint(),
        simulate_fleet_network(&report, general_bytes, &net).fingerprint(),
        "same inputs must replay bit-identically"
    );
    println!(
        "determinism   : trace {:016x} identical at 1 and 4 workers ✓\n",
        narrow_sim.fingerprint()
    );
    println!("campus mix, shared WAN uplink, 50% stragglers at 8x:");
    println!("{}", narrow_sim.render());

    // Contention: the same all-wifi fleet, per-device vs. one shared
    // FIFO uplink — queueing alone must raise the p95.
    let wifi =
        |uplink| NetworkConfig { mix: LinkMix::all_wifi(), uplink, ..NetworkConfig::default() };
    let baseline = simulate_fleet_network(&report, general_bytes, &wifi(UplinkMode::PerDevice));
    let contended = simulate_fleet_network(
        &report,
        general_bytes,
        &wifi(UplinkMode::Shared { profile: LinkProfile::wifi(), discipline: Discipline::Fifo }),
    );
    assert!(
        contended.enroll_percentile_us(0.95) > baseline.enroll_percentile_us(0.95),
        "shared uplink must strictly raise p95 enroll latency"
    );
    assert!(contended.component_percentile_us(NetComponent::Queue, 0.95) > 0);
    println!(
        "contention    : p95 {:.1} ms per-device -> {:.1} ms shared uplink ✓",
        baseline.enroll_percentile_us(0.95) as f64 / 1e3,
        contended.enroll_percentile_us(0.95) as f64 / 1e3,
    );

    // Stragglers straggle: every straggler trails every normal device.
    if narrow_sim.stragglers() > 0 {
        let worst_normal = narrow_sim
            .enrolls
            .iter()
            .filter(|e| !e.straggler)
            .map(|e| e.enroll_us)
            .max()
            .unwrap_or(0);
        for e in narrow_sim.enrolls.iter().filter(|e| e.straggler) {
            assert!(e.enroll_us > worst_normal, "8x stragglers must finish last");
        }
        println!(
            "stragglers    : {} of {} devices, p95 {:.1} ms ✓",
            narrow_sim.stragglers(),
            narrow_sim.enrolls.len(),
            narrow_sim.straggler_p95_us() as f64 / 1e3,
        );
    }

    // Cloud-deployed serving: queries pay the same contended network.
    let serving_scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(3).build();
    let fleet = |cloud| FleetConfig {
        traffic: pelican_serve::TrafficConfig {
            requests: 2_000,
            seed: 42,
            ..pelican_serve::TrafficConfig::default()
        },
        cloud,
        ..FleetConfig::default()
    };
    let on_device = run_fleet(&serving_scenario, &fleet(None)).expect("envelopes decode");
    let cloud = run_fleet(&serving_scenario, &fleet(Some(CloudNetwork::default())))
        .expect("envelopes decode");
    let rtt = cloud.network.expect("cloud deployment reports round trips");
    assert!(rtt.rtt_p95_us > on_device.report.p95_us, "round trips pay the network");
    assert_eq!(rtt.dropped, 0);
    println!(
        "\ncloud serving : p95 {:.2} ms on-device -> {:.2} ms round trip ({:.2} ms egress wait) ✓",
        on_device.report.p95_us as f64 / 1e3,
        rtt.rtt_p95_us as f64 / 1e3,
        rtt.egress_wait_p95_us as f64 / 1e3,
    );
}

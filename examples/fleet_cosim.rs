//! Closed-loop co-simulation: the whole fleet on one virtual clock.
//!
//! Trains a small cohort for two rounds (fresh, then warm-start), then
//! runs the same rounds through the reactive engine twice — once as an
//! open-loop replay that ignores failures, once as a closed-loop
//! co-simulation where a timed-out download ends the device's
//! participation — and demonstrates all four unified-clock contracts:
//!
//! 1. with zero timeouts the two loops are bit-identical;
//! 2. with injected timeouts they diverge, and the failed device's warm
//!    round is absent from the closed-loop timeline only;
//! 3. the closed-loop trace fingerprint is identical across 1/2/8-worker
//!    trainer pools;
//! 4. the sim-driven batch scheduler reproduces the offline `coalesce`
//!    output with no network and reshapes its batches under uplink
//!    jitter.
//!
//! Run with: `cargo run --release --example fleet_cosim`

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, SequenceModel, TrainConfig};
use pelican_serve::{
    batch_compositions, simulate_serving, BatchScheduler, CloudNetwork, RegistryConfig, Request,
    SchedulerConfig, ShardedRegistry, SimServeConfig,
};
use pelican_sim::{LinkMix, LinkProfile, RetryPolicy, StragglerConfig, TransferPolicy};
use pelican_train::{
    cohort_jobs, cosimulate_fleet, AuditConfig, FleetTrainer, LoopMode, NetworkConfig,
    PipelineConfig, TrainJob, TrainReport, UplinkMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_rounds(
    scenario: &Scenario,
    jobs: &[TrainJob],
    workers: usize,
) -> (TrainReport, TrainReport) {
    let sizing = ScenarioSizing::for_scale(Scale::Tiny);
    let registry = ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
    let trainer = FleetTrainer::new(PipelineConfig {
        workers,
        base_seed: 42,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: sizing.personal_epochs, ..TrainConfig::default() },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig { max_instances: 4, ..AuditConfig::default() },
        ..PipelineConfig::default()
    });
    let fresh = trainer.run(&scenario.general, &scenario.dataset.space, jobs, &registry);
    let warm_jobs: Vec<TrainJob> = jobs
        .iter()
        .map(|j| {
            let model = registry.get(j.user_id).expect("published envelopes decode").0;
            j.clone().into_warm(ModelEnvelope::encode(&model))
        })
        .collect();
    let warm = trainer.run(&scenario.general, &scenario.dataset.space, &warm_jobs, &registry);
    (fresh, warm)
}

fn main() {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(0).build();
    let cohort_start = scenario.first_personal_user;
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_start + 4, 0.8);
    let general_bytes = ModelEnvelope::encode(&scenario.general).len() as u64;
    println!(
        "cohort        : {} devices x 2 rounds, general envelope {} kB",
        jobs.len(),
        general_bytes / 1024
    );

    let (fresh, warm) = train_rounds(&scenario, &jobs, 1);
    let rounds = [&fresh, &warm];

    // 1. Clean network: open and closed loops must be bit-identical.
    let clean = NetworkConfig { seed: 0xC051, ..NetworkConfig::default() };
    let open = cosimulate_fleet(&rounds, general_bytes, &clean, LoopMode::Open);
    let closed = cosimulate_fleet(&rounds, general_bytes, &clean, LoopMode::Closed);
    assert_eq!(open.timed_out(), 0);
    assert_eq!(open.sim.trace, closed.sim.trace, "no failures ⇒ nothing to feed back");
    println!("agreement     : clean seed, open == closed, trace {:016x} ✓", open.fingerprint());

    // 2. Failure injection: a straggler's download cannot meet a timeout
    // set at twice the healthy wifi transfer, so the loops diverge.
    let mix =
        LinkMix::all_wifi().with_stragglers(StragglerConfig { fraction: 0.5, slowdown: 50.0 });
    let seed = (0u64..)
        .map(|k| 0xFA11 ^ (k << 8))
        .find(|&s| {
            let dealt: Vec<bool> =
                jobs.iter().map(|j| mix.assign(s, j.user_id as u64).straggler).collect();
            dealt.iter().any(|&x| x) && dealt.iter().any(|&x| !x)
        })
        .expect("some seed deals a mixed fleet");
    let failing = NetworkConfig {
        mix,
        uplink: UplinkMode::PerDevice,
        download: TransferPolicy {
            timeout_us: Some(LinkProfile::wifi().transfer_us(general_bytes) * 2),
            retry: RetryPolicy::none(),
        },
        seed,
        ..NetworkConfig::default()
    };
    let open = cosimulate_fleet(&rounds, general_bytes, &failing, LoopMode::Open);
    let closed = cosimulate_fleet(&rounds, general_bytes, &failing, LoopMode::Closed);
    assert!(closed.timed_out() > 0);
    assert_ne!(open.fingerprint(), closed.fingerprint(), "failures must diverge the loops");
    assert!(closed.skipped() > 0 && open.skipped() == 0);
    println!(
        "divergence    : {} download timeout(s), closed loop skips {} round(s) the open loop priced ✓",
        closed.timed_out(),
        closed.skipped(),
    );
    println!("\nclosed-loop co-simulation under the failing network:");
    println!("{}", closed.render());

    // 3. Width invariance: the closed-loop fingerprint must not know how
    // many host threads trained the rounds.
    for workers in [2usize, 8] {
        let (f, w) = train_rounds(&scenario, &jobs, workers);
        let wide = cosimulate_fleet(&[&f, &w], general_bytes, &failing, LoopMode::Closed);
        assert_eq!(wide.fingerprint(), closed.fingerprint(), "width {workers} must match");
    }
    println!("determinism   : closed-loop trace identical at 1, 2 and 8 workers ✓");

    // 4. Sim-driven scheduler: offline-identical without a network,
    // reshaped under jitter.
    let mut rng = StdRng::seed_from_u64(0x5E12);
    let general = SequenceModel::single_lstm(6, 8, 4, 0.0, &mut rng);
    let registry = ShardedRegistry::new(general, RegistryConfig { shards: 4, hot_capacity: 8 });
    for uid in 0..12 {
        let personalized = SequenceModel::single_lstm(6, 8, 4, 0.0, &mut rng);
        registry.enroll(uid, &personalized);
    }
    let requests: Vec<Request> = (0..600)
        .map(|i| Request {
            id: i,
            user_id: i % 12,
            arrival_us: (i as u64) * 217,
            xs: vec![vec![0.1; 6]; 3],
        })
        .collect();
    let scheduler = SchedulerConfig { max_batch: 8, max_delay_us: 1_733 };
    let sim_config = |network| SimServeConfig {
        scheduler,
        tier: pelican::platform::ComputeTier::Cloud,
        network,
    };
    let quiet =
        simulate_serving(&registry, &requests, &sim_config(None)).expect("envelopes decode");
    let legacy = BatchScheduler::new(scheduler, registry.shard_count()).coalesce(requests.clone());
    assert_eq!(
        quiet.compositions(),
        batch_compositions(&legacy),
        "no network ⇒ sim-driven batching matches the offline scheduler"
    );
    let jitter = CloudNetwork {
        mix: LinkMix::cellular_heavy()
            .with_stragglers(StragglerConfig { fraction: 0.3, slowdown: 6.0 }),
        seed: 0x1177,
        ..CloudNetwork::default()
    };
    let shaken = simulate_serving(&registry, &requests, &sim_config(Some(jitter)))
        .expect("envelopes decode");
    assert_ne!(quiet.compositions(), shaken.compositions(), "jitter must reshape batches");
    println!(
        "scheduler     : {} offline-identical batches -> {} batches under jitter ({} dropped) ✓",
        quiet.batches.len(),
        shaken.batches.len(),
        shaken.dropped,
    );
}

//! Integration tests of the paper's two headline claims: personalized
//! models leak historical locations (§IV), and the Pelican privacy layer
//! substantially reduces that leakage without hurting accuracy (§V).

use pelican::reduction_in_leakage;
use pelican::workbench::Scenario;
use pelican_attacks::{Adversary, AttackMethod, PriorKind, TimeBased};
use pelican_mobility::{Scale, SpatialLevel};

fn scenario(seed: u64) -> Scenario {
    Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(seed).personal_users(3).build()
}

#[test]
fn attack_beats_the_prior_baseline() {
    // The attack must extract *more* than the marginal distribution knows:
    // compare against guessing the prior's top-3 for every instance.
    let s = scenario(31);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut attack_hits = 0usize;
    let mut prior_hits = 0usize;
    let mut total = 0usize;
    for user in &s.personal {
        let eval = s.attack_user(user, Adversary::A1, &method, PriorKind::True, &[3], 10, None);
        let prior = s.prior(user, PriorKind::True);
        let mut ranked: Vec<usize> = (0..prior.len()).collect();
        ranked.sort_by(|&a, &b| prior.prob(b).partial_cmp(&prior.prob(a)).unwrap());
        let top3: Vec<usize> = ranked.into_iter().take(3).collect();
        for inst in s.attack_instances(user, Adversary::A1, 10) {
            if top3.contains(&inst.truth.building) {
                prior_hits += 1;
            }
            total += 1;
        }
        attack_hits += (eval.accuracy(3) * eval.total as f64).round() as usize;
    }
    assert!(
        attack_hits >= prior_hits,
        "attack ({attack_hits}/{total}) should exploit the model beyond the prior \
         ({prior_hits}/{total})"
    );
    assert!(attack_hits > 0, "attack should recover something");
}

#[test]
fn adversaries_perform_comparably() {
    // Fig. 2b: A3's lack of side knowledge barely degrades the attack.
    let s = scenario(32);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let a1 = s.attack_all(Adversary::A1, &method, PriorKind::True, &[3], 6, None);
    let a3 = s.attack_all(Adversary::A3, &method, PriorKind::True, &[3], 6, None);
    assert!(
        a3.accuracy(3) >= a1.accuracy(3) * 0.5,
        "A3 ({:.3}) should stay in the same league as A1 ({:.3})",
        a3.accuracy(3),
        a1.accuracy(3)
    );
}

#[test]
fn defense_reduces_leakage_and_preserves_accuracy() {
    let s = scenario(33);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let before = s.attack_all(Adversary::A1, &method, PriorKind::True, &[1, 3], 10, None);
    let after = s.attack_all(Adversary::A1, &method, PriorKind::True, &[1, 3], 10, Some(1e-3));
    assert!(
        after.accuracy(3) <= before.accuracy(3),
        "defense must not increase leakage: {:.3} -> {:.3}",
        before.accuracy(3),
        after.accuracy(3)
    );
    let reduction = reduction_in_leakage(before.accuracy(3), after.accuracy(3));
    assert!(
        reduction > 10.0,
        "defense should cut top-3 leakage substantially, got {reduction:.1}%"
    );

    // Service accuracy unchanged (ranking preserved).
    for user in &s.personal {
        let mut defended = user.model.clone();
        defended.set_temperature(1e-3);
        let plain = pelican_nn::metrics::evaluate_top_k(&user.model, &user.test, &[1]).accuracy(1);
        let def = pelican_nn::metrics::evaluate_top_k(&defended, &user.test, &[1]).accuracy(1);
        assert!((plain - def).abs() < 1e-9, "top-1 accuracy must survive the defense");
    }
}

#[test]
fn no_prior_weakens_the_attack() {
    // Fig. 2c: removing the prior hurts.
    let s = scenario(34);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let with = s.attack_all(Adversary::A1, &method, PriorKind::True, &[1], 8, None);
    let without = s.attack_all(Adversary::A1, &method, PriorKind::None, &[1], 8, None);
    assert!(
        with.accuracy(1) >= without.accuracy(1),
        "true prior ({:.3}) should not underperform no prior ({:.3})",
        with.accuracy(1),
        without.accuracy(1)
    );
}

#[test]
fn time_based_attack_is_orders_cheaper_than_brute_force() {
    use pelican_attacks::BruteForce;
    let s = scenario(35);
    let user = &s.personal[0];
    let tb = s.attack_user(
        user,
        Adversary::A1,
        &AttackMethod::TimeBased(TimeBased::default()),
        PriorKind::True,
        &[1],
        2,
        None,
    );
    let bf = s.attack_user(
        user,
        Adversary::A1,
        &AttackMethod::BruteForce(BruteForce::default()),
        PriorKind::True,
        &[1],
        2,
        None,
    );
    assert!(
        tb.queries_per_instance() * 20.0 < bf.queries_per_instance(),
        "time-based {} vs brute {} queries/instance",
        tb.queries_per_instance(),
        bf.queries_per_instance()
    );
}

//! Integration tests spanning the whole workspace: trace generation →
//! cloud training → device personalization → deployment → queries.

use pelican::workbench::Scenario;
use pelican::{
    personalize, Deployment, NetworkLink, PelicanService, PersonalizationConfig,
    PersonalizationMethod, PrivacyLayer, ServiceError,
};
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::metrics::evaluate_top_k;
use pelican_nn::{ModelEnvelope, TrainConfig};

fn tiny(seed: u64) -> Scenario {
    Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(seed).personal_users(3).build()
}

#[test]
fn personalization_beats_reuse_on_average() {
    // The paper's core efficacy claim (Table III): transfer-learning
    // personalization outperforms reusing the general model.
    let scenario = tiny(3);
    let config = PersonalizationConfig {
        train: TrainConfig { epochs: 6, batch_size: 16, ..TrainConfig::default() },
        hidden_dim: 24,
        dropout: 0.1,
        seed: 1,
    };
    let (mut reuse_acc, mut tl_acc) = (0.0, 0.0);
    for user in &scenario.personal {
        let (reuse, _) =
            personalize(&scenario.general, &user.train, PersonalizationMethod::Reuse, &config);
        let (tl, _) = personalize(
            &scenario.general,
            &user.train,
            PersonalizationMethod::TlFeatureExtract,
            &config,
        );
        reuse_acc += evaluate_top_k(&reuse, &user.test, &[3]).accuracy(3);
        tl_acc += evaluate_top_k(&tl, &user.test, &[3]).accuracy(3);
    }
    assert!(
        tl_acc >= reuse_acc,
        "TL FE ({tl_acc:.3}) should beat or match Reuse ({reuse_acc:.3}) in aggregate"
    );
}

#[test]
fn general_model_learns_something() {
    let scenario = tiny(4);
    // The general model should beat uniform guessing on a *contributor's*
    // held-out tail by a wide margin (personalization users' idiosyncratic
    // chains are exactly what it cannot know — that is Table III's point).
    let contributor_samples = scenario.dataset.user_samples(0);
    let tail = &contributor_samples[contributor_samples.len() * 4 / 5..];
    let acc = evaluate_top_k(&scenario.general, tail, &[3]).accuracy(3);
    let uniform = 3.0 / scenario.dataset.n_locations() as f64;
    assert!(acc > uniform * 2.0, "general top-3 {acc:.3} vs uniform {uniform:.3}");
}

#[test]
fn model_envelope_survives_device_cloud_round_trip() {
    let scenario = tiny(5);
    let user = &scenario.personal[0];
    let wire = ModelEnvelope::encode(&user.model);
    let restored = wire.decode().expect("round trip");
    for sample in user.test.iter().take(4) {
        assert_eq!(user.model.logits(&sample.xs), restored.logits(&sample.xs));
    }
}

#[test]
fn service_end_to_end_with_privacy() {
    let scenario = tiny(6);
    let user = &scenario.personal[0];
    let mut service = PelicanService::new(scenario.general.clone(), NetworkLink::wifi());
    service.enroll(
        user.user_id,
        user.model.clone(),
        Deployment::OnDevice,
        Some(PrivacyLayer::default()),
    );

    // Defended service accuracy equals undefended accuracy: the privacy
    // layer preserves ranking.
    let mut hits_defended = 0;
    let mut hits_plain = 0;
    for sample in &user.test {
        let top = service.top_k(user.user_id, &sample.xs, 3).expect("enrolled");
        if top.contains(&sample.target) {
            hits_defended += 1;
        }
        if user.model.predict_top_k(&sample.xs, 3).contains(&sample.target) {
            hits_plain += 1;
        }
    }
    assert_eq!(hits_defended, hits_plain, "privacy layer must not change top-3 hits");

    // Errors surface cleanly.
    assert!(matches!(service.query(9999, &user.test[0].xs), Err(ServiceError::UnknownUser(9999))));
}

#[test]
fn scenarios_reproduce_bit_for_bit() {
    let a = tiny(7);
    let b = tiny(7);
    assert_eq!(a.personal.len(), b.personal.len());
    for (ua, ub) in a.personal.iter().zip(&b.personal) {
        assert_eq!(ua.train.len(), ub.train.len());
        let xs = &ua.test[0].xs;
        assert_eq!(ua.model.logits(xs), ub.model.logits(xs));
    }
}

#[test]
fn ap_level_pipeline_works() {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Ap).seed(8).personal_users(1).build();
    let user = &scenario.personal[0];
    assert_eq!(scenario.dataset.n_locations(), 36, "tiny campus: 12 buildings x 3 APs");
    let acc = user.test_accuracy(3);
    assert!((0.0..=1.0).contains(&acc));
}

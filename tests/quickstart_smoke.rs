//! Smoke test mirroring `examples/quickstart.rs`: the paper's Fig. 4
//! pipeline — cloud training → device personalization → privacy-layer
//! deployment → next-location query — end to end on a tiny scenario, so
//! CI exercises the full system on every push. (CI additionally runs
//! the example binary itself; this test keeps the pipeline covered by
//! plain `cargo test` too.)

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::{Deployment, NetworkLink, PelicanService, PrivacyLayer};
use pelican_mobility::{Scale, SpatialLevel};

#[test]
fn quickstart_pipeline_produces_a_prediction() {
    // Few users, few epochs: the point is that every stage runs, not
    // that the model is good.
    let scenario = Scenario::builder(Scale::Tiny, SpatialLevel::Building)
        .seed(42)
        .personal_users(1)
        .sizing(ScenarioSizing { hidden_dim: 16, general_epochs: 4, personal_epochs: 4 })
        .build();
    let user = &scenario.personal[0];
    let n_locations = scenario.dataset.n_locations();

    // Stage 3 of Fig. 4: deploy on device behind the privacy layer.
    let mut service = PelicanService::new(scenario.general.clone(), NetworkLink::wifi());
    service.enroll(
        user.user_id,
        user.model.clone(),
        Deployment::OnDevice,
        Some(PrivacyLayer::default()),
    );

    // Stage 4: query the service for the next location.
    let query = &user.test[0].xs;
    let top3 = service.top_k(user.user_id, query, 3).expect("user is enrolled");
    assert_eq!(top3.len(), 3, "service must return a full top-3 prediction");
    assert!(
        top3.iter().all(|&loc| loc < n_locations),
        "predictions must be valid location ids (got {top3:?} of {n_locations})"
    );

    // The privacy layer must not have changed the ranking the user sees.
    assert_eq!(
        top3,
        user.model.predict_top_k(query, 3),
        "deployed prediction must match the on-device model's ranking"
    );
}

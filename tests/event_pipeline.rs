//! Integration test: the raw-event data path feeds the learning task with
//! the same fidelity as ground truth.

use pelican_mobility::{
    compare, extract_sessions, sessions_to_events, CampusConfig, EventNoise, ExtractConfig,
    FeatureSpace, Scale, SpatialLevel, TraceGenerator,
};

#[test]
fn extraction_recovers_training_signal_under_noise() {
    let mut generator = TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 123);
    let campus = generator.campus().clone();
    let mut total_recall = 0.0;
    let users = 5;
    for user_id in 0..users {
        let trace = generator.user_trace(user_id);
        let events = sessions_to_events(&trace.sessions, EventNoise::default());
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        let report = compare(&trace.sessions, &extracted);
        total_recall += report.recall();

        // Extracted sessions must be valid inputs to the feature encoder.
        let space = FeatureSpace::new(SpatialLevel::Ap, campus.total_aps());
        for s in &extracted {
            let x = space.encode_session(s);
            assert_eq!(x.iter().filter(|&&v| v != 0.0).count(), 4);
        }
    }
    assert!(
        total_recall / users as f64 > 0.9,
        "mean extraction recall too low: {:.3}",
        total_recall / users as f64
    );
}

#[test]
fn noise_free_extraction_is_lossless_at_scale() {
    let mut generator = TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 5);
    let campus = generator.campus().clone();
    for user_id in [0, 7, 13] {
        let trace = generator.user_trace(user_id);
        let events = sessions_to_events(&trace.sessions, EventNoise::none());
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        assert_eq!(extracted.len(), trace.sessions.len(), "user {user_id}");
        for (t, e) in trace.sessions.iter().zip(&extracted) {
            assert_eq!((t.ap, t.day, t.entry_minutes), (e.ap, e.day, e.entry_minutes));
        }
    }
}

#[test]
fn event_streams_are_deterministic() {
    let mk = || {
        let mut generator = TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 9);
        let trace = generator.user_trace(2);
        sessions_to_events(&trace.sessions, EventNoise::default())
    };
    assert_eq!(mk(), mk());
}

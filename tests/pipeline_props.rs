//! Property-based tests over the cross-crate pipeline invariants.

use proptest::prelude::*;

use pelican::reduction_in_leakage;
use pelican::stats::{linear_fit, pearson, pearson_p_value};
use pelican_mobility::{
    duration_bin, entry_slot, FeatureSpace, Session, SpatialLevel, DURATION_BINS, ENTRY_SLOTS,
};
use pelican_nn::{softmax_cross_entropy, ModelEnvelope, SequenceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn encode_decode_round_trips(
        n_loc in 1usize..40,
        loc_seed in 0usize..1000,
        entry in 0usize..ENTRY_SLOTS,
        dur in 0usize..DURATION_BINS,
        dow in 0usize..7,
    ) {
        let space = FeatureSpace::new(SpatialLevel::Building, n_loc);
        let loc = loc_seed % n_loc;
        let x = space.encode(loc, entry, dur, dow);
        prop_assert_eq!(space.decode(&x), (loc, entry, dur, dow));
    }

    #[test]
    fn discretization_is_total_and_ordered(minutes in 0u32..1440, duration in 0u32..100_000) {
        let slot = entry_slot(minutes);
        prop_assert!(slot < ENTRY_SLOTS);
        let bin = duration_bin(duration);
        prop_assert!(bin < DURATION_BINS);
        // Monotone: longer durations never land in an earlier bin.
        prop_assert!(duration_bin(duration.saturating_add(10)) >= bin);
    }

    #[test]
    fn session_encoding_has_exactly_four_hot_bits(
        building in 0usize..20,
        entry in 0u32..1440,
        duration in 1u32..5000,
        day in 0u32..70,
    ) {
        let space = FeatureSpace::new(SpatialLevel::Building, 20);
        let s = Session { user: 0, building, ap: building, day, entry_minutes: entry, duration_minutes: duration };
        let x = space.encode_session(&s);
        prop_assert_eq!(x.iter().filter(|&&v| v == 1.0).count(), 4);
        prop_assert_eq!(x.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn softmax_ce_loss_is_positive_and_grad_sums_to_zero(
        logits in prop::collection::vec(-10.0f32..10.0, 2..20),
        target_seed in 0usize..1000,
    ) {
        let target = target_seed % logits.len();
        let (loss, grad) = softmax_cross_entropy(&logits, target);
        prop_assert!(loss >= 0.0);
        let sum: f32 = grad.iter().sum();
        prop_assert!(sum.abs() < 1e-4);
        prop_assert!(grad[target] <= 0.0, "target logit is pushed up");
    }

    #[test]
    fn model_envelope_round_trips_any_architecture(
        input in 1usize..12,
        hidden in 1usize..12,
        classes in 2usize..8,
        temperature in 1e-4f32..1.0,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SequenceModel::general_lstm(input, hidden, classes, 0.1, &mut rng);
        model.set_temperature(temperature);
        let restored = ModelEnvelope::encode(&model).decode().unwrap();
        let xs = vec![vec![0.25; input]; 2];
        prop_assert_eq!(model.logits(&xs), restored.logits(&xs));
        prop_assert_eq!(model.temperature(), restored.temperature());
    }

    #[test]
    fn temperature_never_changes_the_argmax(
        input in 2usize..10,
        classes in 2usize..10,
        t in 1e-3f32..1.0,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = SequenceModel::general_lstm(input, 8, classes, 0.0, &mut rng);
        let xs = vec![vec![0.5; input]; 2];
        let before = pelican_tensor::argmax(&model.predict_proba(&xs));
        model.set_temperature(t);
        let after = pelican_tensor::argmax(&model.predict_proba(&xs));
        prop_assert_eq!(before, after);
    }

    #[test]
    fn leakage_reduction_is_bounded(before in 0.0f64..1.0, after in 0.0f64..1.0) {
        let r = reduction_in_leakage(before, after);
        prop_assert!((0.0..=100.0).contains(&r));
        if after >= before {
            prop_assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        xs in prop::collection::vec(-100.0f64..100.0, 3..40),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|v| v * scale + shift).collect();
        let r = pearson(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        // Positive affine transforms preserve perfect correlation (unless
        // x is constant, where r is defined as 0).
        let x_const = xs.iter().all(|&v| (v - xs[0]).abs() < 1e-9);
        if !x_const {
            // Floating-point cancellation on nearly-constant samples can
            // nudge r below 1; a loose tolerance still catches sign or
            // magnitude bugs.
            prop_assert!(r > 1.0 - 1e-3, "affine transform should give r ≈ 1, got {r}");
        }
        let p = pearson_p_value(r, xs.len());
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn linear_fit_residuals_are_centered(
        pts in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 2..30),
    ) {
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        let (slope, intercept) = linear_fit(&xs, &ys);
        let mean_residual: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| y - (slope * x + intercept))
            .sum::<f64>()
            / xs.len() as f64;
        prop_assert!(mean_residual.abs() < 1e-6, "OLS residuals sum to zero, got {mean_residual}");
    }
}

//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/).
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements the subset of proptest the Pelican test-suite uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute;
//! * range strategies over the numeric primitives, tuple strategies,
//!   [`prop::collection::vec`], and the [`Strategy::prop_map`] /
//!   [`Strategy::prop_flat_map`] combinators;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate are deliberate and small: inputs are
//! drawn from a fixed-seed deterministic RNG (identical values every
//! run, so CI is reproducible), and failing cases panic immediately
//! without shrinking — the printed input values are the minimal report.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt as _;

    /// A recipe for generating test-case values.
    ///
    /// Mirrors proptest's `Strategy`: ranges, tuples and collections
    /// implement it, and [`prop_map`](Strategy::prop_map) /
    /// [`prop_flat_map`](Strategy::prop_flat_map) build derived
    /// strategies.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then draws from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident / $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

    /// The `Just` strategy: always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

/// Strategy constructors grouped as the real crate's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use rand::rngs::StdRng;
        use rand::RngExt as _;

        use crate::strategy::Strategy;

        /// Lengths accepted by [`vec`]: a fixed `usize` or a `Range<usize>`.
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl SizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.random_range(self.clone())
            }
        }

        /// A strategy producing `Vec`s whose elements come from
        /// `element` and whose length comes from `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Runner configuration, mirroring proptest's `test_runner` module.
pub mod test_runner {
    /// How many random cases each property test runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 32 cases: enough to exercise the properties every CI run
        /// while keeping the training-heavy pipeline tests fast (the
        /// real crate defaults to 256).
        fn default() -> Self {
            Self { cases: 32 }
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test seed: FNV-1a over the test's name, so each
/// property explores a distinct but reproducible input stream.
#[doc(hidden)]
pub const fn fnv1a(name: &str) -> u64 {
    let bytes = name.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;

    /// Seeds the runner RNG without importing `SeedableRng` into the
    /// expansion scope (which would shadow the test file's own imports
    /// into unused-import warnings).
    pub fn seed_rng(seed: u64) -> StdRng {
        use rand::SeedableRng as _;
        StdRng::seed_from_u64(seed)
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     #[test]
///     fn holds(x in 0usize..10, y in -1.0f32..1.0) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::__rt::seed_rng(seed);
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuple_and_flat_map_compose(
            pair in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                prop::collection::vec(0.0f64..1.0, r * c).prop_map(move |data| (r, c, data))
            }),
        ) {
            let (r, c, data) = pair;
            prop_assert_eq!(data.len(), r * c);
        }
    }

    #[test]
    fn seeds_differ_between_tests() {
        assert_ne!(crate::fnv1a("a::first"), crate::fnv1a("a::second"));
    }
}

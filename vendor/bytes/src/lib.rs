//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, implementing the subset the Pelican model-envelope codec uses:
//! [`Bytes`], [`BytesMut`], and the little-endian [`Buf`]/[`BufMut`]
//! accessors. `Bytes` here is a plain `Arc<[u8]>` window — cheap clones
//! and zero-copy slicing, without the real crate's vtable machinery.

use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// The buffer's length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let data: Arc<[u8]> = data.into();
        let end = data.len();
        Self { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// The buffer's length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Sequential little-endian readers over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Fills `dst` from the front of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Sequential little-endian writers onto a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_accessor() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"PLCN");
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f32_le(-1.25);
        let mut bytes = buf.freeze();

        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PLCN");
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16_le(), 0xBEEF);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(bytes.get_f32_le(), -1.25);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn clones_are_independent_cursors() {
        let bytes = Bytes::from(vec![1, 2, 3, 4]);
        let mut a = bytes.clone();
        assert_eq!(a.get_u8(), 1);
        assert_eq!(a.remaining(), 3);
        assert_eq!(bytes.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from(vec![1]);
        let _ = bytes.get_u32_le();
    }
}

//! Offline stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! Implements the API surface the Pelican benches use — [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of the real crate's statistical
//! machinery. Each benchmark warms up briefly, then reports the mean,
//! minimum and maximum per-iteration time over `sample_size` samples to
//! stdout. Good enough to compare the paper's ~100× attack-cost gaps;
//! swap in the real criterion (same manifest name) when a registry is
//! reachable.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE_TARGET: Duration = Duration::from_millis(600);

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Finishes the group (prints a trailing separator).
    pub fn finish(self) {
        println!();
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with
/// the routine to measure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warm-up: also discovers how many iterations fit a sample window.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    while warmup_start.elapsed() < WARMUP {
        f(&mut b);
        warmup_iters += b.iters;
        // Grow the batch so fast routines don't spend the warm-up in
        // closure-call overhead.
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
    let sample_budget = MEASURE_TARGET.as_secs_f64() / sample_size as f64;
    let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<40} mean {:>12}  min {:>12}  max {:>12}  ({} samples x {} iters)",
        format_time(mean),
        format_time(min),
        format_time(max),
        sample_size,
        iters_per_sample,
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Bundles benchmark functions into a named runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a
            // wall-clock stub has no filters, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_every_iteration() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 37, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        assert_eq!(calls, 37);
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" us"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}

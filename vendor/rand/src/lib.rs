//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The Pelican build environment has no network access to a crates
//! registry, so this vendored crate supplies exactly the API subset the
//! workspace uses — [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! the [`Rng`] base trait and the [`RngExt`] convenience methods
//! (`random_range`, `random`, `random_bool`) — with the same call-site
//! syntax as rand 0.9.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256\*\* seeded via
//! SplitMix64: small, fast, and statistically strong enough for the
//! campus simulation and weight initialization. Determinism is the only
//! contract that matters here: every experiment seeds its own RNG, and
//! identical seeds must reproduce identical traces, models and attacks
//! run-to-run and machine-to-machine.

/// Base trait for random generators: a source of uniform `u64` words.
///
/// Mirrors the role of rand's `Rng`/`RngCore`; generic code bounds on
/// `R: Rng` and calls the convenience methods from [`RngExt`], which is
/// blanket-implemented for every `Rng`.
pub trait Rng {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors, mirroring rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`Rng`] via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps a `u64` to the unit interval `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Primitives that [`RngExt::random_range`] can sample uniformly.
///
/// Mirrors rand's `SampleUniform`. Keeping [`SampleRange`]'s impls
/// generic over `T: SampleUniform` (rather than one concrete impl per
/// type) matters for inference: it lets an untyped literal range like
/// `0.0..1.0` unify with the surrounding expression's float type
/// exactly as it does with the real crate.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                (lo as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    usize => u128, u64 => u128, u32 => u128, u16 => u128, u8 => u128,
    isize => i128, i64 => i128, i32 => i128, i16 => i128, i8 => i128
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }

            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (hi - lo) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching rand's behaviour.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
///
/// Imported as `use rand::RngExt as _;` at call sites, mirroring the
/// extension-trait idiom of rand 0.9's `Rng`.
pub trait RngExt: Rng {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// Not the same stream as rand's real `StdRng` (ChaCha12), but the
    /// workspace only requires self-consistency of seeds, not
    /// cross-crate stream compatibility.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, the reference seeding
            // procedure recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            Self { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt as _, SeedableRng};

    #[test]
    fn identical_seeds_reproduce_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.random_range(2u32..=5);
            assert!((2..=5).contains(&w));
            let f = rng.random_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&f));
            let g = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..2000).map(|_| rng.random_range(0.0f64..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "uniform mean drifted: {mean}");
        assert!(samples.iter().any(|&v| v < 0.1));
        assert!(samples.iter().any(|&v| v > 0.9));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and
//! model types so they are wire-ready once the real serde is available,
//! but nothing in-tree serializes through serde today (the model
//! envelope codec is hand-rolled). These derive macros therefore accept
//! the full attribute syntax — including `#[serde(...)]` field
//! attributes — and expand to nothing; the stub `serde` crate's blanket
//! impls satisfy any bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! Pelican's types derive `Serialize`/`Deserialize` to declare
//! wire-readiness, but all in-tree persistence goes through the
//! hand-rolled binary model envelope — no serializer ever runs. This
//! stub keeps those derives compiling without network access: the
//! traits are markers blanket-implemented for every type, and the
//! derives (re-exported from the stub `serde_derive`) expand to
//! nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`; blanket-implemented.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Stub of serde's `de` module, for `serde::de::DeserializeOwned` paths.
pub mod de {
    pub use super::DeserializeOwned;
}

//! # pelican-store — durable, crash-safe model registry storage
//!
//! The serving fleet's [`ShardedRegistry`] keeps hot envelopes in
//! per-shard LRU caches; this crate is the tier below it — the one that
//! survives. An [`EnvelopeStore`] is a sharded append-only log of model
//! publications with a write-ahead commit record per entry, a hash
//! index retaining every user's **full version history**, torn-tail
//! crash recovery, per-shard compaction, and optional built-in LZSS
//! compression. History retention is what makes *live rollback*
//! possible: re-publishing a prior version is just fetching it from the
//! log and pushing it back through the registry's versioned hot-swap
//! path.
//!
//! [`ShardedRegistry`]: https://docs.rs/pelican-serve
//!
//! ## Layering
//!
//! * [`backend`] — the storage medium behind one small trait:
//!   [`MemBackend`] for deterministic crash/restart tests,
//!   [`DirBackend`] for real files with `sync_all` barriers.
//! * [`record`] — the on-disk format: segment headers, CRC-sealed
//!   records ending in a commit byte, and the committed-prefix scanner.
//! * [`compress`] — the self-contained LZSS coder (the build vendors no
//!   compression crate).
//! * [`store`] — [`EnvelopeStore`] itself: sharding, the index,
//!   recovery replay, compaction, stats.
//!
//! ## Durability contract
//!
//! `append` returns only after the record — CRC and commit byte
//! included — has passed the backend's durability barrier. Recovery
//! replays committed records and physically truncates anything after
//! the last committed byte, so for *any* crash point the reopened store
//! serves exactly the publications that were acknowledged. The
//! crash-point tests in `tests/recovery.rs` check this by truncating
//! the log at every byte boundary of the final record.
//!
//! ```
//! use std::sync::Arc;
//! use pelican_nn::ModelEnvelope;
//! use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
//!
//! let disk = MemBackend::new();
//! let store = EnvelopeStore::open(Arc::new(disk.clone()), StoreConfig::default()).unwrap();
//! store.append(7, 1, &ModelEnvelope::from_bytes(vec![0xAB; 64])).unwrap();
//! store.append(7, 2, &ModelEnvelope::from_bytes(vec![0xCD; 64])).unwrap();
//! drop(store);
//!
//! // "Restart": reopen the same disk, full history intact.
//! let store = EnvelopeStore::open(Arc::new(disk), StoreConfig::default()).unwrap();
//! assert_eq!(store.versions(7), vec![1, 2]);
//! assert_eq!(store.fetch(7, 1).unwrap().as_bytes(), &vec![0xAB; 64][..]);
//! ```

pub mod backend;
pub mod compress;
pub mod record;
pub mod store;

pub use backend::{DirBackend, MemBackend, StorageBackend};
pub use compress::{compress, decompress, DecompressError};
pub use record::{Record, ScanEnd, COMMIT_BYTE, FORMAT_VERSION};
pub use store::{
    CompactionPolicy, EnvelopeStore, RecoveryReport, StoreConfig, StoreError, StoreStats,
    VersionEntry,
};

//! Storage backends the envelope log appends to.
//!
//! The log itself ([`crate::EnvelopeStore`]) only ever performs a handful
//! of whole-file operations — append, ranged read, truncate, list — so the
//! backing medium hides behind one small object-safe trait. Two
//! implementations ship:
//!
//! * [`MemBackend`] — files are byte vectors behind one mutex. Cloning a
//!   `MemBackend` shares the map, which is exactly what a *kill-free
//!   restart* test wants: drop every store handle, keep the backend, and
//!   [`crate::EnvelopeStore::open`] it again as if the process had come
//!   back up. [`MemBackend::snapshot`] deep-copies the map instead,
//!   modelling the moment of a crash: truncating a segment inside a
//!   snapshot simulates a torn tail without touching the "live" copy.
//! * [`DirBackend`] — real files under one directory, with
//!   [`StorageBackend::sync`] mapped to `File::sync_all` so the commit
//!   barrier actually reaches the platter (or at least the page cache
//!   flush the OS promises).
//!
//! Determinism note: [`StorageBackend::list`] returns names in sorted
//! order on every backend, so recovery replays segments in the same order
//! regardless of medium.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// The medium an envelope log writes to.
///
/// All methods take `&self`: backends are internally synchronized so the
/// per-shard store locks above them remain the only ordering that matters.
pub trait StorageBackend: std::fmt::Debug + Send + Sync {
    /// Reads a whole file. Missing files yield [`io::ErrorKind::NotFound`].
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Reads `len` bytes starting at `offset`. Reading past the end is an
    /// error — record offsets come from the index, so a short read means
    /// the file was mutilated behind the store's back.
    fn read_range(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>>;

    /// Appends bytes to a file, creating it when missing.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Durability barrier: blocks until every byte previously appended to
    /// the file is as durable as the medium can make it.
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Truncates a file to `len` bytes (recovery chops torn tails here).
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Removes a file (compaction drops superseded segments here).
    fn remove(&self, name: &str) -> io::Result<()>;

    /// All file names, sorted ascending.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Current size of a file in bytes.
    fn size(&self, name: &str) -> io::Result<u64>;
}

/// In-memory backend: a shared map of named byte vectors.
///
/// Clones share the underlying map (a restart keeps the "disk");
/// [`MemBackend::snapshot`] deep-copies it (a crash freezes the disk at
/// one instant).
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemBackend {
    /// Creates an empty in-memory "disk".
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep-copies the current file map into an independent backend —
    /// the state a crash at this exact instant would leave behind.
    /// Mutating the snapshot (e.g. truncating a segment to simulate a
    /// torn tail) leaves the original untouched.
    pub fn snapshot(&self) -> Self {
        let files = self.files.lock().expect("mem backend poisoned").clone();
        Self { files: Arc::new(Mutex::new(files)) }
    }

    /// Total bytes across all files (what the "disk" holds).
    pub fn total_bytes(&self) -> u64 {
        self.files.lock().expect("mem backend poisoned").values().map(|f| f.len() as u64).sum()
    }

    fn with<T>(&self, f: impl FnOnce(&mut BTreeMap<String, Vec<u8>>) -> T) -> T {
        f(&mut self.files.lock().expect("mem backend poisoned"))
    }
}

fn not_found(name: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
}

impl StorageBackend for MemBackend {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.with(|m| m.get(name).cloned().ok_or_else(|| not_found(name)))
    }

    fn read_range(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.with(|m| {
            let file = m.get(name).ok_or_else(|| not_found(name))?;
            let start = offset as usize;
            let end = start.checked_add(len).filter(|&e| e <= file.len()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("range {offset}+{len} past end of {name} ({} bytes)", file.len()),
                )
            })?;
            Ok(file[start..end].to_vec())
        })
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.with(|m| m.entry(name.to_string()).or_default().extend_from_slice(bytes));
        Ok(())
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(()) // memory is as durable as it gets
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.with(|m| {
            let file = m.get_mut(name).ok_or_else(|| not_found(name))?;
            file.truncate(len as usize);
            Ok(())
        })
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.with(|m| m.remove(name).map(|_| ()).ok_or_else(|| not_found(name)))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.with(|m| m.keys().cloned().collect())) // BTreeMap: already sorted
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        self.with(|m| m.get(name).map(|f| f.len() as u64).ok_or_else(|| not_found(name)))
    }
}

/// Filesystem backend: every log file lives directly under one directory.
#[derive(Debug, Clone)]
pub struct DirBackend {
    root: PathBuf,
}

impl DirBackend {
    /// Opens (creating if needed) a directory as the log's home.
    pub fn create(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The backing directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl StorageBackend for DirBackend {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn read_range(&self, name: &str, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut file = File::open(self.path(name))?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(self.path(name))?;
        file.write_all(bytes)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        OpenOptions::new().write(true).open(self.path(name))?.sync_all()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(self.path(name))?.set_len(len)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Ok(name) = entry.file_name().into_string() {
                    names.push(name);
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StorageBackend) {
        backend.append("b.log", &[9]).unwrap();
        backend.append("a.log", &[1, 2, 3]).unwrap();
        backend.append("a.log", &[4, 5]).unwrap();
        backend.sync("a.log").unwrap();
        assert_eq!(backend.read("a.log").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(backend.read_range("a.log", 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(backend.size("a.log").unwrap(), 5);
        assert_eq!(backend.list().unwrap(), vec!["a.log".to_string(), "b.log".to_string()]);
        assert!(backend.read_range("a.log", 3, 99).is_err(), "short range reads are errors");
        backend.truncate("a.log", 2).unwrap();
        assert_eq!(backend.read("a.log").unwrap(), vec![1, 2]);
        backend.remove("b.log").unwrap();
        assert_eq!(backend.list().unwrap(), vec!["a.log".to_string()]);
        assert!(backend.read("b.log").is_err());
    }

    #[test]
    fn mem_backend_contract() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn dir_backend_contract() {
        // Scratch dir under the workspace target directory (`cargo clean`
        // removes it; nothing outside the workspace is touched).
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/tmp/dir_backend_contract");
        let _ = std::fs::remove_dir_all(&root);
        exercise(&DirBackend::create(&root).unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn clones_share_but_snapshots_fork() {
        let disk = MemBackend::new();
        disk.append("seg", &[1, 2, 3, 4]).unwrap();
        let restart = disk.clone();
        let crash = disk.snapshot();
        crash.truncate("seg", 1).unwrap();
        disk.append("seg", &[5]).unwrap();
        assert_eq!(restart.read("seg").unwrap(), vec![1, 2, 3, 4, 5], "clone sees live writes");
        assert_eq!(crash.read("seg").unwrap(), vec![1], "snapshot froze, then tore");
    }
}

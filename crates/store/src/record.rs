//! On-disk layout of segments and publication records.
//!
//! A segment file is a fixed header followed by back-to-back publication
//! records, append-only:
//!
//! ```text
//! segment  := header record*
//! header   := "PSEG" fmt:u16 shard:u32 seq:u64                  (18 bytes)
//! record   := "PLOG" user:u64 version:u64 flags:u8
//!             raw_len:u32 len:u32 payload[len]
//!             crc32:u32 commit:u8 (= 0xC7)
//! ```
//!
//! All integers are little-endian. `flags` bit 0 marks an
//! LZSS-compressed payload (`len` stored bytes inflate to `raw_len`).
//! The CRC covers every byte between the record magic and the CRC field
//! itself (user through payload).
//!
//! **The trailing commit byte is the write-ahead commit record.** A
//! publication is durable if and only if its commit byte (preceded by a
//! matching CRC) reached storage: the store appends the whole record in
//! one write and syncs before the publication becomes visible, so after
//! a crash the tail of a segment is either a complete committed record
//! or torn garbage. Recovery ([`scan_segment`]) walks records from the
//! front and stops at the first byte that cannot be part of a committed
//! record — everything before that point is the committed prefix,
//! everything after is truncated. There is no rollback journal to undo:
//! an append-only log's "undo" is dropping the torn tail.

/// Segment file magic.
pub const SEGMENT_MAGIC: &[u8; 4] = b"PSEG";
/// Record magic.
pub const RECORD_MAGIC: &[u8; 4] = b"PLOG";
/// On-disk format version.
pub const FORMAT_VERSION: u16 = 1;
/// The commit marker sealing every durable record.
pub const COMMIT_BYTE: u8 = 0xC7;
/// Segment header size in bytes.
pub const HEADER_LEN: usize = 4 + 2 + 4 + 8;
/// Fixed record overhead: magic + user + version + flags + raw_len + len
/// up front, crc + commit behind the payload.
pub const RECORD_OVERHEAD: usize = 4 + 8 + 8 + 1 + 4 + 4 + 4 + 1;

/// `flags` bit 0: payload is LZSS-compressed.
pub const FLAG_COMPRESSED: u8 = 0b0000_0001;

/// One decoded publication record (payload still raw/compressed bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The publishing user.
    pub user: u64,
    /// Registry-assigned monotone publication version.
    pub version: u64,
    /// Flag bits ([`FLAG_COMPRESSED`]).
    pub flags: u8,
    /// Uncompressed payload length.
    pub raw_len: u32,
    /// Payload exactly as stored (compressed when flagged).
    pub payload: Vec<u8>,
}

impl Record {
    /// Whether the payload must be inflated before use.
    pub fn is_compressed(&self) -> bool {
        self.flags & FLAG_COMPRESSED != 0
    }

    /// Total encoded size of this record on disk.
    pub fn encoded_len(&self) -> usize {
        RECORD_OVERHEAD + self.payload.len()
    }
}

/// Why a segment scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// The segment ended exactly on a record boundary.
    Clean,
    /// A torn or corrupt tail begins at the reported offset: bytes from
    /// there on are not part of any committed record and must be
    /// truncated.
    Torn,
}

/// CRC-32 (IEEE 802.3), table-driven; the table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encodes a segment header.
pub fn encode_header(shard: u32, seq: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    buf.extend_from_slice(SEGMENT_MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&shard.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf
}

/// Decodes and validates a segment header, returning `(shard, seq)`.
pub fn decode_header(bytes: &[u8]) -> Result<(u32, u64), HeaderError> {
    if bytes.len() < HEADER_LEN {
        return Err(HeaderError::Truncated);
    }
    if &bytes[..4] != SEGMENT_MAGIC {
        return Err(HeaderError::BadMagic);
    }
    let fmt = u16::from_le_bytes([bytes[4], bytes[5]]);
    if fmt != FORMAT_VERSION {
        return Err(HeaderError::UnsupportedVersion(fmt));
    }
    let shard = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
    let seq = u64::from_le_bytes(bytes[10..18].try_into().expect("8 header bytes"));
    Ok((shard, seq))
}

/// Segment-header decode failures (always fatal: headers are written in
/// the same synced append as the segment's first record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Shorter than a header.
    Truncated,
    /// Wrong magic bytes.
    BadMagic,
    /// Format version this library does not understand.
    UnsupportedVersion(u16),
}

/// Appends one record's encoding to `out`.
pub fn encode_record(out: &mut Vec<u8>, record: &Record) {
    debug_assert!(record.payload.len() <= u32::MAX as usize);
    out.extend_from_slice(RECORD_MAGIC);
    let body_start = out.len();
    out.extend_from_slice(&record.user.to_le_bytes());
    out.extend_from_slice(&record.version.to_le_bytes());
    out.push(record.flags);
    out.extend_from_slice(&record.raw_len.to_le_bytes());
    out.extend_from_slice(&(record.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record.payload);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.push(COMMIT_BYTE);
}

/// Attempts to decode one committed record starting at `offset`.
///
/// Returns `Some((record, next_offset))` only when every byte of the
/// record — including a matching CRC and the commit marker — is present
/// and valid; `None` means the bytes at `offset` are a torn tail (or
/// corruption, which recovery treats identically: the committed prefix
/// ends here).
pub fn decode_record(bytes: &[u8], offset: usize) -> Option<(Record, usize)> {
    let fixed_front = 4 + 8 + 8 + 1 + 4 + 4;
    if bytes.len() < offset + fixed_front {
        return None;
    }
    let at = &bytes[offset..];
    if &at[..4] != RECORD_MAGIC {
        return None;
    }
    let user = u64::from_le_bytes(at[4..12].try_into().expect("8 bytes"));
    let version = u64::from_le_bytes(at[12..20].try_into().expect("8 bytes"));
    let flags = at[20];
    let raw_len = u32::from_le_bytes(at[21..25].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(at[25..29].try_into().expect("4 bytes")) as usize;
    let total = RECORD_OVERHEAD + len;
    if bytes.len() < offset + total {
        return None;
    }
    let payload = &at[fixed_front..fixed_front + len];
    let stored_crc =
        u32::from_le_bytes(at[fixed_front + len..fixed_front + len + 4].try_into().expect("crc"));
    if crc32(&at[4..fixed_front + len]) != stored_crc {
        return None;
    }
    if at[total - 1] != COMMIT_BYTE {
        return None;
    }
    Some((Record { user, version, flags, raw_len, payload: payload.to_vec() }, offset + total))
}

/// Walks a segment's records from just past the header, yielding each
/// committed record's `(start_offset, record)` and where the committed
/// prefix ends.
///
/// The returned offset is the truncation point when the end is
/// [`ScanEnd::Torn`]: every byte before it belongs to a committed
/// record (or the header), every byte after it is unreachable garbage.
pub fn scan_segment(bytes: &[u8]) -> (Vec<(u64, Record)>, usize, ScanEnd) {
    let mut records = Vec::new();
    let mut offset = HEADER_LEN.min(bytes.len());
    loop {
        if offset == bytes.len() {
            return (records, offset, ScanEnd::Clean);
        }
        match decode_record(bytes, offset) {
            Some((record, next)) => {
                records.push((offset as u64, record));
                offset = next;
            }
            None => return (records, offset, ScanEnd::Torn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(user: u64, version: u64, payload: &[u8]) -> Record {
        Record { user, version, flags: 0, raw_len: payload.len() as u32, payload: payload.to_vec() }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_round_trips_and_rejects_junk() {
        let h = encode_header(3, 17);
        assert_eq!(h.len(), HEADER_LEN);
        assert_eq!(decode_header(&h), Ok((3, 17)));
        assert_eq!(decode_header(&h[..HEADER_LEN - 1]), Err(HeaderError::Truncated));
        let mut bad = h.clone();
        bad[0] = b'X';
        assert_eq!(decode_header(&bad), Err(HeaderError::BadMagic));
        let mut future = h;
        future[4] = 9;
        assert_eq!(decode_header(&future), Err(HeaderError::UnsupportedVersion(9)));
    }

    #[test]
    fn record_round_trips() {
        let r = record(42, 7, b"hello envelope");
        let mut buf = encode_header(0, 0);
        encode_record(&mut buf, &r);
        let (decoded, next) = decode_record(&buf, HEADER_LEN).expect("committed record decodes");
        assert_eq!(decoded, r);
        assert_eq!(next, buf.len());
        assert_eq!(r.encoded_len(), buf.len() - HEADER_LEN);
    }

    #[test]
    fn any_truncation_of_the_record_is_torn() {
        let r = record(1, 2, b"payload bytes here");
        let mut buf = encode_header(0, 0);
        encode_record(&mut buf, &r);
        for cut in HEADER_LEN..buf.len() {
            assert!(
                decode_record(&buf[..cut], HEADER_LEN).is_none(),
                "{} of {} bytes must not decode",
                cut,
                buf.len()
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let r = record(1, 2, b"payload");
        let mut clean = encode_header(0, 0);
        encode_record(&mut clean, &r);
        // Flip one bit at every position after the record magic: either
        // the CRC catches it or (for the commit byte) the marker check.
        for pos in HEADER_LEN + 4..clean.len() {
            let mut dirty = clean.clone();
            dirty[pos] ^= 0x10;
            assert!(
                decode_record(&dirty, HEADER_LEN).is_none(),
                "bit flip at {pos} must not decode as committed"
            );
        }
    }

    #[test]
    fn scan_yields_the_committed_prefix() {
        let mut buf = encode_header(1, 5);
        for v in 1..=3u64 {
            encode_record(&mut buf, &record(9, v, &vec![v as u8; 10 * v as usize]));
        }
        let (records, end, kind) = scan_segment(&buf);
        assert_eq!(kind, ScanEnd::Clean);
        assert_eq!(end, buf.len());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, HEADER_LEN as u64);
        assert_eq!(records.iter().map(|(_, r)| r.version).collect::<Vec<_>>(), vec![1, 2, 3]);

        // Tear the last record: the first two survive, the scan reports
        // the exact truncation point.
        let torn = &buf[..buf.len() - 3];
        let (records, end, kind) = scan_segment(torn);
        assert_eq!(kind, ScanEnd::Torn);
        assert_eq!(records.len(), 2);
        let committed = (records[1].0 as usize) + records[1].1.encoded_len();
        assert_eq!(end, committed);
    }
}

//! Self-contained LZSS compression for envelope payloads.
//!
//! The build environment vendors no compression crate, so the store
//! carries its own small dictionary coder. Envelope payloads are mostly
//! little-endian `f32` weights — high-entropy mantissas — so the win
//! comes from structure, not statistics: repeated byte patterns (zero
//! bias runs, frozen layers shared between versions of the same record,
//! header scaffolding) become back-references. Incompressible input
//! costs one flag bit per literal byte (~12.5% overhead), which is why
//! [`crate::EnvelopeStore`] stores a record compressed only when the
//! encoding actually came out smaller.
//!
//! Format: groups of eight items, each group led by a flag byte whose
//! bit *i* (LSB first) describes item *i*: `0` = one literal byte, `1` =
//! a match — two bytes holding a 12-bit backward distance (1-based, up
//! to [`WINDOW`]) and a 4-bit length encoding [`MIN_MATCH`]`..=`
//! [`MAX_MATCH`]. Matches may overlap their own output (the classic RLE
//! trick: distance 1, length 18 repeats one byte).
//!
//! The coder is greedy with a bounded hash chain, so compression is
//! deterministic — the same input always yields the same output, which
//! keeps store fingerprints and byte-level tests stable.

/// Sliding-window size (12-bit distances).
pub const WINDOW: usize = 4096;
/// Shortest encodable match: below this a literal is cheaper.
pub const MIN_MATCH: usize = 3;
/// Longest encodable match (4-bit length field).
pub const MAX_MATCH: usize = MIN_MATCH + 15;
/// Hash-chain candidates examined per position; bounds worst-case work.
const MAX_CHAIN: usize = 32;

/// Compresses `input`. The output is self-delimiting only together with
/// the original length, which the caller stores alongside (the record's
/// `raw_len` field).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Head of the hash chain per 3-byte-prefix bucket, then per-position
    // previous links; `usize::MAX` terminates a chain.
    const BUCKETS: usize = 1 << 13;
    let mut head = vec![usize::MAX; BUCKETS];
    let mut prev = vec![usize::MAX; input.len()];

    let hash = |i: usize| -> usize {
        let h = (input[i] as u32)
            .wrapping_mul(0x9E37)
            .wrapping_add((input[i + 1] as u32).wrapping_mul(0x79B9))
            .wrapping_add(input[i + 2] as u32);
        (h as usize) & (BUCKETS - 1)
    };

    let mut i = 0;
    let mut flags_at = usize::MAX;
    let mut flag_bit = 8;
    while i < input.len() {
        if flag_bit == 8 {
            flags_at = out.len();
            out.push(0);
            flag_bit = 0;
        }
        // Longest match at i within the window, newest candidates first.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let mut candidate = head[hash(i)];
            let mut steps = 0;
            while candidate != usize::MAX && steps < MAX_CHAIN {
                let dist = i - candidate;
                if dist > WINDOW {
                    break; // chain only gets older from here
                }
                let limit = (input.len() - i).min(MAX_MATCH);
                let mut len = 0;
                while len < limit && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = dist;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[candidate];
                steps += 1;
            }
        }
        if best_len >= MIN_MATCH {
            out[flags_at] |= 1 << flag_bit;
            let token = (((best_dist - 1) as u16) << 4) | ((best_len - MIN_MATCH) as u16);
            out.extend_from_slice(&token.to_le_bytes());
            // Index every covered position so later matches can start
            // inside this one.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            // `p` drives hash(p) *and* the chain writes; an enumerate
            // rewrite would obscure that the index is the datum here.
            #[allow(clippy::needless_range_loop)]
            for p in i..end {
                let h = hash(p);
                prev[p] = head[h];
                head[h] = p;
            }
            i += best_len;
        } else {
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash(i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        flag_bit += 1;
    }
    out
}

/// Errors inflating a compressed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// The stream ended inside a token.
    Truncated,
    /// A match reached before the start of the output.
    BadDistance,
    /// The stream decoded to a different length than promised.
    LengthMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream ended inside a token"),
            DecompressError::BadDistance => write!(f, "match distance reaches before output start"),
            DecompressError::LengthMismatch { expected, got } => {
                write!(f, "decompressed to {got} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for DecompressError {}

/// Inflates a [`compress`]ed stream back to exactly `raw_len` bytes.
pub fn decompress(input: &[u8], raw_len: usize) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 0;
    while out.len() < raw_len {
        if i >= input.len() {
            return Err(DecompressError::Truncated);
        }
        let flags = input[i];
        i += 1;
        for bit in 0..8 {
            if out.len() == raw_len {
                break;
            }
            if i >= input.len() {
                return Err(DecompressError::Truncated);
            }
            if flags & (1 << bit) == 0 {
                out.push(input[i]);
                i += 1;
            } else {
                if i + 2 > input.len() {
                    return Err(DecompressError::Truncated);
                }
                let token = u16::from_le_bytes([input[i], input[i + 1]]);
                i += 2;
                let dist = (token >> 4) as usize + 1;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if dist > out.len() {
                    return Err(DecompressError::BadDistance);
                }
                // Byte-at-a-time so overlapping matches self-extend.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    // A valid stream lands exactly on `raw_len` with nothing left over;
    // overshooting matches and trailing bytes both mean corruption.
    if out.len() != raw_len || i != input.len() {
        return Err(DecompressError::LengthMismatch { expected: raw_len, got: out.len() });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> usize {
        let packed = compress(input);
        let unpacked = decompress(&packed, input.len()).expect("round trip");
        assert_eq!(unpacked, input, "round trip must be lossless");
        packed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(round_trip(b""), 0);
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
    }

    #[test]
    fn runs_collapse() {
        let zeros = vec![0u8; 10_000];
        let packed_len = round_trip(&zeros);
        assert!(packed_len < 1_500, "10kB of zeros should collapse, got {packed_len}");
    }

    #[test]
    fn repeated_structure_compresses() {
        let mut input = Vec::new();
        for i in 0..200u32 {
            input.extend_from_slice(b"segment-header-");
            input.extend_from_slice(&(i % 7).to_le_bytes());
        }
        let packed_len = round_trip(&input);
        assert!(packed_len < input.len() / 2, "periodic input halves at least: {packed_len}");
    }

    #[test]
    fn incompressible_input_survives() {
        // A cheap deterministic byte scrambler (splitmix-ish).
        let mut x = 0x9E3779B97F4A7C15u64;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                (x >> 56) as u8
            })
            .collect();
        let packed_len = round_trip(&noise);
        assert!(packed_len <= noise.len() + noise.len() / 8 + 8, "bounded expansion");
    }

    #[test]
    fn determinism() {
        let input: Vec<u8> = (0..2048u32).flat_map(|i| (i % 97).to_le_bytes()).collect();
        assert_eq!(compress(&input), compress(&input));
    }

    #[test]
    fn malformed_streams_error() {
        let packed = compress(b"hello hello hello hello");
        assert!(decompress(&packed[..packed.len() - 1], 23).is_err());
        assert!(matches!(decompress(&[], 5), Err(DecompressError::Truncated)));
        // A token pointing before the start of output.
        let bogus = [0b0000_0001, 0xFF, 0xFF];
        assert!(matches!(decompress(&bogus, 18), Err(DecompressError::BadDistance)));
    }
}

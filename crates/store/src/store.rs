//! The durable envelope store: per-shard append-only segment logs, a
//! version-history hash index, torn-tail recovery and compaction.
//!
//! One [`EnvelopeStore`] owns `N` storage shards. Each shard is a chain
//! of segment files (`shard0003-seg00000007.plog`) whose records are the
//! write-ahead log *and* the data — there is no second copy to keep in
//! sync. A publication appends one committed record ([`crate::record`])
//! to the shard's active segment, syncs the backend (the durability
//! barrier), and only then updates the in-memory hash index
//! `user → [(version, segment, offset)]`. A crash between those steps
//! loses nothing that was acknowledged: acknowledged means synced.
//!
//! **Recovery** ([`EnvelopeStore::open`]) lists the backend, replays
//! every shard's segments in sequence order, rebuilds the index from
//! committed records only, and physically truncates the first torn or
//! corrupt byte onward — after which the log is exactly its committed
//! prefix and appending may resume. The recovery argument is an
//! induction over records: the scanner advances only across records
//! whose CRC and commit marker verify, so the rebuilt index equals the
//! index at the moment of the last acknowledged publication, for *any*
//! crash point.
//!
//! **Compaction** rewrites each shard's retained versions (the newest
//! [`CompactionPolicy::retain_versions`] per user) into fresh segments
//! and deletes the old chain, reclaiming superseded versions while
//! version *numbers* are preserved — a rollback target stays addressable
//! as long as the policy retains it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use pelican_nn::ModelEnvelope;

use crate::backend::StorageBackend;
use crate::compress::{compress, decompress};
use crate::record::{
    decode_header, encode_header, encode_record, scan_segment, Record, ScanEnd, FLAG_COMPRESSED,
    HEADER_LEN,
};

/// Sizing and behaviour knobs for [`EnvelopeStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Number of storage shards (independent segment chains + locks).
    pub shards: usize,
    /// Roll to a fresh segment once the active one exceeds this many
    /// bytes (checked before each append, so records never split).
    pub segment_bytes: u64,
    /// Compress payloads with the built-in LZSS coder, keeping the
    /// compressed form only when it is actually smaller.
    pub compress: bool,
    /// What compaction keeps.
    pub compaction: CompactionPolicy,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            segment_bytes: 4 << 20,
            compress: false,
            compaction: CompactionPolicy::default(),
        }
    }
}

/// Retention policy applied by [`EnvelopeStore::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Newest versions kept per user; older ones are dropped when the
    /// shard is compacted (never on the append path).
    pub retain_versions: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self { retain_versions: 8 }
    }
}

/// Where one committed publication lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionEntry {
    /// Registry-assigned monotone publication version.
    pub version: u64,
    /// Segment sequence number within the shard.
    pub segment: u64,
    /// Byte offset of the record inside the segment file.
    pub offset: u64,
    /// Total record length on disk (header through commit byte).
    pub stored_len: u32,
    /// Uncompressed payload size.
    pub raw_len: u32,
    /// Whether the payload is LZSS-compressed on disk.
    pub compressed: bool,
}

/// Failures talking to the store.
#[derive(Debug)]
pub enum StoreError {
    /// The backend failed.
    Io(std::io::Error),
    /// A segment file is not a log segment (foreign file in the
    /// directory, or unsupported format version).
    BadSegment { name: String, reason: String },
    /// A record that the index points at no longer verifies — the file
    /// was mutilated after recovery.
    Corrupt { segment: u64, offset: u64 },
    /// The user has no committed version with this number (never
    /// published, or compacted away).
    UnknownVersion { user: u64, version: u64 },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage backend error: {e}"),
            StoreError::BadSegment { name, reason } => {
                write!(f, "segment '{name}' is unusable: {reason}")
            }
            StoreError::Corrupt { segment, offset } => {
                write!(f, "indexed record at segment {segment} offset {offset} fails to verify")
            }
            StoreError::UnknownVersion { user, version } => {
                write!(f, "user {user} has no committed version {version}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// What [`EnvelopeStore::open`] found while replaying the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segment files replayed.
    pub segments: usize,
    /// Committed records indexed.
    pub committed_records: u64,
    /// Segments whose tail was torn or corrupt.
    pub torn_segments: usize,
    /// Bytes truncated off torn tails.
    pub torn_bytes: u64,
}

/// Aggregate counters across all shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Storage shards.
    pub shards: usize,
    /// Live segment files.
    pub segments: usize,
    /// Users with at least one committed version.
    pub users: usize,
    /// Committed versions currently addressable (the history depth
    /// summed over users).
    pub retained_versions: u64,
    /// Per-shard retained version counts (parallel history depth view).
    pub retained_by_shard: Vec<u64>,
    /// Records appended since open (excludes replayed history).
    pub appended_records: u64,
    /// Bytes appended since open.
    pub appended_bytes: u64,
    /// Uncompressed payload bytes behind the current index.
    pub live_raw_bytes: u64,
    /// On-disk payload bytes behind the current index (smaller than
    /// `live_raw_bytes` when compression is winning).
    pub live_stored_bytes: u64,
    /// Compactions performed since open.
    pub compactions: u64,
    /// Bytes reclaimed by compaction since open.
    pub reclaimed_bytes: u64,
    /// What recovery found when the store was opened.
    pub recovery: RecoveryReport,
}

impl StoreStats {
    /// On-disk payload bytes per uncompressed byte (1.0 = no win).
    pub fn compression_ratio(&self) -> f64 {
        if self.live_raw_bytes == 0 {
            1.0
        } else {
            self.live_stored_bytes as f64 / self.live_raw_bytes as f64
        }
    }
}

#[derive(Debug, Default)]
struct StoreShard {
    /// Segment seq → current byte length. Active segment is the max seq.
    segments: HashMap<u64, u64>,
    /// Version history per user, ascending by version.
    index: HashMap<u64, Vec<VersionEntry>>,
    /// Sequence number of the segment new records append to.
    active: u64,
}

impl StoreShard {
    fn active_len(&self) -> u64 {
        *self.segments.get(&self.active).unwrap_or(&0)
    }
}

/// The durable, crash-safe envelope store.
///
/// All operations take `&self`; each shard's bookkeeping sits behind its
/// own mutex, so publications on different shards proceed in parallel
/// and a reader never blocks a writer on another shard. See the module
/// docs for the durability and recovery arguments.
#[derive(Debug)]
pub struct EnvelopeStore {
    backend: Arc<dyn StorageBackend>,
    config: StoreConfig,
    shards: Vec<Mutex<StoreShard>>,
    /// Highest version seen anywhere (replayed or appended); a restarted
    /// registry seeds its monotone version counter from this.
    max_version: AtomicU64,
    appended_records: AtomicU64,
    appended_bytes: AtomicU64,
    compactions: AtomicU64,
    reclaimed_bytes: AtomicU64,
    recovery: RecoveryReport,
}

fn segment_name(shard: u32, seq: u64) -> String {
    format!("shard{shard:04}-seg{seq:08}.plog")
}

/// Parses a `shardNNNN-segNNNNNNNN.plog` name back to `(shard, seq)`.
fn parse_segment_name(name: &str) -> Option<(u32, u64)> {
    let rest = name.strip_prefix("shard")?.strip_suffix(".plog")?;
    let (shard, seq) = rest.split_once("-seg")?;
    Some((shard.parse().ok()?, seq.parse().ok()?))
}

impl EnvelopeStore {
    /// Opens a store over a backend, replaying whatever log the backend
    /// already holds: segments are scanned in sequence order, committed
    /// records rebuild the index, and torn tails are physically
    /// truncated so the log ends on its last committed publication.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the backend fails, a file in the
    /// backend is not a log segment, or a segment header names a shard
    /// outside `config.shards` (the store was created with a different
    /// layout — refusing is safer than silently dropping history).
    pub fn open(backend: Arc<dyn StorageBackend>, config: StoreConfig) -> Result<Self, StoreError> {
        assert!(config.shards > 0, "store needs at least one shard");
        assert!(
            config.segment_bytes as usize > HEADER_LEN,
            "segments must hold more than a header"
        );
        assert!(config.compaction.retain_versions > 0, "retaining zero versions loses everything");

        let mut shards: Vec<StoreShard> =
            (0..config.shards).map(|_| StoreShard::default()).collect();
        let mut recovery = RecoveryReport::default();
        let mut max_version = 0u64;

        // Backend listing is sorted and names embed zero-padded shard and
        // sequence numbers, so this replays each shard's chain in order.
        for name in backend.list()? {
            let (shard_no, seq) = parse_segment_name(&name).ok_or_else(|| {
                StoreError::BadSegment { name: name.clone(), reason: "unrecognized name".into() }
            })?;
            if shard_no as usize >= config.shards {
                return Err(StoreError::BadSegment {
                    name,
                    reason: format!(
                        "names shard {shard_no} but the store has {} shards",
                        config.shards
                    ),
                });
            }
            let bytes = backend.read(&name)?;
            // Zero bytes is a valid (already-repaired or never-written)
            // empty segment; 1..HEADER_LEN-1 bytes means the segment's
            // very first append (header + first record travel in one
            // write) tore before the header completed — nothing in this
            // file was ever committed, so wipe it and keep the seq slot
            // so appends restart cleanly.
            let (header_shard, header_seq) = match decode_header(&bytes) {
                Ok(pair) => pair,
                Err(crate::record::HeaderError::Truncated) => {
                    recovery.segments += 1;
                    if !bytes.is_empty() {
                        recovery.torn_segments += 1;
                        recovery.torn_bytes += bytes.len() as u64;
                        backend.truncate(&name, 0)?;
                    }
                    let shard = &mut shards[shard_no as usize];
                    shard.segments.insert(seq, 0);
                    shard.active = shard.active.max(seq);
                    continue;
                }
                Err(e) => {
                    return Err(StoreError::BadSegment {
                        name: name.clone(),
                        reason: format!("{e:?}"),
                    })
                }
            };
            if (header_shard, header_seq) != (shard_no, seq) {
                return Err(StoreError::BadSegment {
                    name,
                    reason: format!(
                        "header says shard {header_shard} seq {header_seq}, name disagrees"
                    ),
                });
            }
            let (records, committed_end, end) = scan_segment(&bytes);
            if end == ScanEnd::Torn {
                recovery.torn_segments += 1;
                recovery.torn_bytes += (bytes.len() - committed_end) as u64;
                backend.truncate(&name, committed_end as u64)?;
            }
            recovery.segments += 1;
            let shard = &mut shards[shard_no as usize];
            shard.segments.insert(seq, committed_end as u64);
            shard.active = shard.active.max(seq);
            for (offset, record) in records {
                recovery.committed_records += 1;
                max_version = max_version.max(record.version);
                push_entry(&mut shard.index, &record, seq, offset);
            }
        }

        Ok(Self {
            backend,
            config,
            shards: shards.into_iter().map(Mutex::new).collect(),
            max_version: AtomicU64::new(max_version),
            appended_records: AtomicU64::new(0),
            appended_bytes: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            reclaimed_bytes: AtomicU64::new(0),
            recovery,
        })
    }

    /// The store's configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// What recovery found when this store was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The backend this store appends to (a restart reopens it).
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Number of storage shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The storage shard a user's history lives on.
    pub fn shard_of(&self, user: u64) -> usize {
        (user % self.shards.len() as u64) as usize
    }

    /// Highest committed version anywhere in the log (0 when empty); a
    /// registry reopening the store seeds its version counter above this.
    pub fn max_version(&self) -> u64 {
        self.max_version.load(Ordering::Relaxed)
    }

    fn lock(&self, shard: usize) -> MutexGuard<'_, StoreShard> {
        self.shards[shard].lock().expect("store shard mutex poisoned")
    }

    /// Durably appends one publication: encodes the record (compressing
    /// the payload when configured and profitable), appends it to the
    /// shard's active segment, **syncs the backend**, and only then
    /// indexes the new version. When `append` returns, the publication
    /// survives any crash.
    ///
    /// Versions are assigned by the caller (the registry's monotone
    /// counter) and must be strictly increasing per user; the index
    /// keeps each user's history version-sorted on that contract.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] when the backend fails; the index is
    /// not updated in that case.
    pub fn append(
        &self,
        user: u64,
        version: u64,
        envelope: &ModelEnvelope,
    ) -> Result<VersionEntry, StoreError> {
        let shard_no = self.shard_of(user);
        let mut shard = self.lock(shard_no);

        let raw = envelope.as_bytes();
        let mut flags = 0u8;
        let payload: std::borrow::Cow<'_, [u8]> = if self.config.compress {
            let packed = compress(raw);
            if packed.len() < raw.len() {
                flags |= FLAG_COMPRESSED;
                packed.into()
            } else {
                raw.into()
            }
        } else {
            raw.into()
        };
        let record = Record {
            user,
            version,
            flags,
            raw_len: raw.len() as u32,
            payload: payload.into_owned(),
        };

        // Roll the active segment before appending so a record never
        // splits across files. A fresh segment's header travels in the
        // same synced append as its first record.
        let mut buf = Vec::with_capacity(record.encoded_len() + HEADER_LEN);
        if shard.active_len() == 0 {
            buf.extend_from_slice(&encode_header(shard_no as u32, shard.active));
        } else if shard.active_len() + record.encoded_len() as u64 > self.config.segment_bytes {
            shard.active += 1;
            buf.extend_from_slice(&encode_header(shard_no as u32, shard.active));
        }
        let offset = shard.active_len() + buf.len() as u64;
        encode_record(&mut buf, &record);

        let name = segment_name(shard_no as u32, shard.active);
        self.backend.append(&name, &buf)?;
        self.backend.sync(&name)?; // the durability barrier
        let active = shard.active;
        let new_len = shard.active_len() + buf.len() as u64;
        shard.segments.insert(active, new_len);

        let entry = push_entry(&mut shard.index, &record, active, offset);
        self.max_version.fetch_max(version, Ordering::Relaxed);
        self.appended_records.fetch_add(1, Ordering::Relaxed);
        self.appended_bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(entry)
    }

    /// The newest committed version number for a user.
    pub fn latest_version(&self, user: u64) -> Option<u64> {
        let shard = self.lock(self.shard_of(user));
        shard.index.get(&user).and_then(|h| h.last()).map(|e| e.version)
    }

    /// Every committed version number for a user, ascending.
    pub fn versions(&self, user: u64) -> Vec<u64> {
        let shard = self.lock(self.shard_of(user));
        shard.index.get(&user).map_or_else(Vec::new, |h| h.iter().map(|e| e.version).collect())
    }

    /// Whether a user has any committed version.
    pub fn contains(&self, user: u64) -> bool {
        self.lock(self.shard_of(user)).index.contains_key(&user)
    }

    /// Fetches the newest committed envelope for a user, or `None` when
    /// the user never published.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the backend fails or the record was
    /// mutilated on disk after recovery.
    pub fn fetch_latest(&self, user: u64) -> Result<Option<ModelEnvelope>, StoreError> {
        let entry = {
            let shard = self.lock(self.shard_of(user));
            shard.index.get(&user).and_then(|h| h.last()).copied()
        };
        match entry {
            Some(e) => Ok(Some(self.read_entry(self.shard_of(user), &e)?)),
            None => Ok(None),
        }
    }

    /// Fetches the newest committed envelope for a user together with
    /// the version it was committed as — the warm-start read the live
    /// personalization loop makes before an incremental re-train, where
    /// the version doubles as the rollback target if the re-train
    /// regresses.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the backend fails or the record was
    /// mutilated on disk after recovery.
    pub fn fetch_latest_with_version(
        &self,
        user: u64,
    ) -> Result<Option<(u64, ModelEnvelope)>, StoreError> {
        let entry = {
            let shard = self.lock(self.shard_of(user));
            shard.index.get(&user).and_then(|h| h.last()).copied()
        };
        match entry {
            Some(e) => Ok(Some((e.version, self.read_entry(self.shard_of(user), &e)?))),
            None => Ok(None),
        }
    }

    /// Fetches one historical version of a user's envelope.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownVersion`] when the user never committed that
    /// version (or compaction dropped it); backend/corruption errors as
    /// for [`EnvelopeStore::fetch_latest`].
    pub fn fetch(&self, user: u64, version: u64) -> Result<ModelEnvelope, StoreError> {
        let shard_no = self.shard_of(user);
        let entry = {
            let shard = self.lock(shard_no);
            shard
                .index
                .get(&user)
                .and_then(|h| h.iter().find(|e| e.version == version))
                .copied()
                .ok_or(StoreError::UnknownVersion { user, version })?
        };
        self.read_entry(shard_no, &entry)
    }

    /// Reads and verifies one indexed record, inflating when needed.
    fn read_entry(
        &self,
        shard_no: usize,
        entry: &VersionEntry,
    ) -> Result<ModelEnvelope, StoreError> {
        let name = segment_name(shard_no as u32, entry.segment);
        let bytes = self.backend.read_range(&name, entry.offset, entry.stored_len as usize)?;
        let (record, _) = crate::record::decode_record(&bytes, 0)
            .ok_or(StoreError::Corrupt { segment: entry.segment, offset: entry.offset })?;
        let payload = if record.is_compressed() {
            decompress(&record.payload, record.raw_len as usize)
                .map_err(|_| StoreError::Corrupt { segment: entry.segment, offset: entry.offset })?
        } else {
            record.payload
        };
        Ok(ModelEnvelope::from_bytes(payload))
    }

    /// Compacts one shard: rewrites the newest
    /// [`CompactionPolicy::retain_versions`] versions of every user into
    /// fresh segments (users in ascending id order, versions ascending,
    /// so the rewritten log is deterministic), then deletes the old
    /// chain. Version numbers are preserved; only superseded history
    /// beyond the retention depth is dropped. Returns bytes reclaimed.
    ///
    /// The shard's lock is held throughout, so readers and writers of
    /// this shard simply wait; other shards are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] if the backend fails mid-rewrite. The
    /// fresh chain is written and synced *before* old segments are
    /// removed, so a crash mid-compaction leaves a recoverable log
    /// (records may exist twice; replay keeps whichever committed copy
    /// it sees last, which carries identical payloads).
    pub fn compact_shard(&self, shard_no: usize) -> Result<u64, StoreError> {
        let mut shard = self.lock(shard_no);
        let retain = self.config.compaction.retain_versions;
        let old_segments: Vec<u64> = {
            let mut seqs: Vec<u64> = shard.segments.keys().copied().collect();
            seqs.sort_unstable();
            seqs
        };
        let before_bytes: u64 = shard.segments.values().sum();

        // Gather survivors in deterministic (user, version) order.
        let mut users: Vec<u64> = shard.index.keys().copied().collect();
        users.sort_unstable();
        let mut survivors: Vec<(u64, VersionEntry)> = Vec::new();
        for &user in &users {
            let history = &shard.index[&user];
            let keep_from = history.len().saturating_sub(retain);
            for e in &history[keep_from..] {
                survivors.push((user, *e));
            }
        }

        // Rewrite survivors into fresh segments numbered after the old
        // chain, building the replacement index as we go.
        let mut fresh_index: HashMap<u64, Vec<VersionEntry>> = HashMap::new();
        let mut fresh_segments: HashMap<u64, u64> = HashMap::new();
        let mut seq = shard.active + 1;
        let mut buf: Vec<u8> = encode_header(shard_no as u32, seq);
        for (user, entry) in survivors {
            let name = segment_name(shard_no as u32, entry.segment);
            let bytes = self.backend.read_range(&name, entry.offset, entry.stored_len as usize)?;
            let (record, _) = crate::record::decode_record(&bytes, 0)
                .ok_or(StoreError::Corrupt { segment: entry.segment, offset: entry.offset })?;
            if buf.len() as u64 + record.encoded_len() as u64 > self.config.segment_bytes
                && buf.len() > HEADER_LEN
            {
                let name = segment_name(shard_no as u32, seq);
                self.backend.append(&name, &buf)?;
                self.backend.sync(&name)?;
                fresh_segments.insert(seq, buf.len() as u64);
                seq += 1;
                buf = encode_header(shard_no as u32, seq);
            }
            let offset = buf.len() as u64;
            encode_record(&mut buf, &record);
            fresh_index.entry(user).or_default().push(VersionEntry {
                version: record.version,
                segment: seq,
                offset,
                stored_len: record.encoded_len() as u32,
                raw_len: record.raw_len,
                compressed: record.is_compressed(),
            });
        }
        let name = segment_name(shard_no as u32, seq);
        self.backend.append(&name, &buf)?;
        self.backend.sync(&name)?;
        fresh_segments.insert(seq, buf.len() as u64);

        // Point the shard at the fresh chain, then drop the old files.
        shard.index = fresh_index;
        shard.segments = fresh_segments;
        shard.active = seq;
        for old in old_segments {
            self.backend.remove(&segment_name(shard_no as u32, old))?;
        }
        let after_bytes: u64 = shard.segments.values().sum();
        let reclaimed = before_bytes.saturating_sub(after_bytes);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.reclaimed_bytes.fetch_add(reclaimed, Ordering::Relaxed);
        Ok(reclaimed)
    }

    /// Compacts every shard in order. Returns total bytes reclaimed.
    ///
    /// # Errors
    ///
    /// First shard failure aborts the sweep (already-compacted shards
    /// stay compacted).
    pub fn compact(&self) -> Result<u64, StoreError> {
        let mut reclaimed = 0;
        for shard_no in 0..self.shards.len() {
            reclaimed += self.compact_shard(shard_no)?;
        }
        Ok(reclaimed)
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            shards: self.shards.len(),
            appended_records: self.appended_records.load(Ordering::Relaxed),
            appended_bytes: self.appended_bytes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
            recovery: self.recovery,
            ..StoreStats::default()
        };
        for shard_no in 0..self.shards.len() {
            let shard = self.lock(shard_no);
            stats.segments += shard.segments.len();
            stats.users += shard.index.len();
            let mut retained = 0u64;
            for history in shard.index.values() {
                retained += history.len() as u64;
                for e in history {
                    stats.live_raw_bytes += e.raw_len as u64;
                    stats.live_stored_bytes +=
                        e.stored_len as u64 - crate::record::RECORD_OVERHEAD as u64;
                }
            }
            stats.retained_versions += retained;
            stats.retained_by_shard.push(retained);
        }
        stats
    }
}

/// Indexes one committed record, keeping the user's history
/// version-sorted (replay after an out-of-order compaction interleave
/// stays correct).
fn push_entry(
    index: &mut HashMap<u64, Vec<VersionEntry>>,
    record: &Record,
    segment: u64,
    offset: u64,
) -> VersionEntry {
    let entry = VersionEntry {
        version: record.version,
        segment,
        offset,
        stored_len: record.encoded_len() as u32,
        raw_len: record.raw_len,
        compressed: record.is_compressed(),
    };
    let history = index.entry(record.user).or_default();
    match history.last() {
        Some(last) if last.version >= entry.version => {
            // A duplicate or out-of-order copy (post-crash compaction
            // overlap): keep exactly one entry per version, newest
            // location wins.
            match history.binary_search_by_key(&entry.version, |e| e.version) {
                Ok(i) => history[i] = entry,
                Err(i) => history.insert(i, entry),
            }
        }
        _ => history.push(entry),
    }
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn envelope(fill: u8, len: usize) -> ModelEnvelope {
        // Payload bytes are arbitrary from the store's point of view.
        ModelEnvelope::from_bytes(vec![fill; len])
    }

    fn open_mem(config: StoreConfig) -> (EnvelopeStore, MemBackend) {
        let backend = MemBackend::new();
        let store = EnvelopeStore::open(Arc::new(backend.clone()), config).expect("open empty");
        (store, backend)
    }

    #[test]
    fn append_fetch_round_trip() {
        let (store, _) = open_mem(StoreConfig::default());
        store.append(7, 1, &envelope(0xAA, 100)).unwrap();
        store.append(7, 2, &envelope(0xBB, 50)).unwrap();
        store.append(3, 3, &envelope(0xCC, 80)).unwrap();

        assert_eq!(store.latest_version(7), Some(2));
        assert_eq!(store.versions(7), vec![1, 2]);
        assert!(store.contains(3) && !store.contains(99));
        assert_eq!(store.max_version(), 3);
        assert_eq!(store.fetch_latest(7).unwrap().unwrap().as_bytes(), &vec![0xBB; 50][..]);
        assert_eq!(store.fetch(7, 1).unwrap().as_bytes(), &vec![0xAA; 100][..]);
        assert!(matches!(
            store.fetch(7, 9),
            Err(StoreError::UnknownVersion { user: 7, version: 9 })
        ));
        assert_eq!(store.fetch_latest(42).unwrap(), None);
    }

    #[test]
    fn fetch_latest_with_version_pairs_bytes_with_the_rollback_target() {
        let (store, _) = open_mem(StoreConfig::default());
        assert_eq!(store.fetch_latest_with_version(5).unwrap(), None);
        store.append(5, 1, &envelope(0x11, 40)).unwrap();
        store.append(5, 4, &envelope(0x22, 60)).unwrap();
        let (version, latest) = store.fetch_latest_with_version(5).unwrap().unwrap();
        assert_eq!(version, 4);
        assert_eq!(latest.as_bytes(), &vec![0x22; 60][..]);
        assert_eq!(store.fetch(5, version).unwrap().as_bytes(), latest.as_bytes());
    }

    #[test]
    fn restart_replays_the_log() {
        let config = StoreConfig { shards: 2, ..StoreConfig::default() };
        let (store, backend) = open_mem(config);
        for v in 1..=6u64 {
            store.append(v % 3, v, &envelope(v as u8, 64 + v as usize)).unwrap();
        }
        let stats = store.stats();
        drop(store); // kill-free restart: the backend is the disk

        let reopened = EnvelopeStore::open(Arc::new(backend), config).expect("replay");
        assert_eq!(reopened.max_version(), 6);
        assert_eq!(reopened.recovery().committed_records, 6);
        assert_eq!(reopened.recovery().torn_segments, 0);
        for v in 1..=6u64 {
            assert_eq!(reopened.fetch(v % 3, v).unwrap().as_bytes(), {
                &vec![v as u8; 64 + v as usize][..]
            });
        }
        let restats = reopened.stats();
        assert_eq!(restats.retained_versions, stats.retained_versions);
        assert_eq!(restats.users, stats.users);
    }

    #[test]
    fn segments_roll_and_history_spans_them() {
        let config = StoreConfig { shards: 1, segment_bytes: 256, ..StoreConfig::default() };
        let (store, _) = open_mem(config);
        for v in 1..=10u64 {
            store.append(1, v, &envelope(v as u8, 100)).unwrap();
        }
        let stats = store.stats();
        assert!(stats.segments > 1, "small segments must roll: {}", stats.segments);
        assert_eq!(store.versions(1).len(), 10);
        for v in 1..=10u64 {
            assert_eq!(store.fetch(1, v).unwrap().as_bytes(), &vec![v as u8; 100][..]);
        }
    }

    #[test]
    fn compaction_keeps_the_newest_versions_and_reclaims_bytes() {
        let config = StoreConfig {
            shards: 1,
            compaction: CompactionPolicy { retain_versions: 2 },
            ..StoreConfig::default()
        };
        let (store, backend) = open_mem(config);
        for v in 1..=9u64 {
            store.append(5, v, &envelope(v as u8, 200)).unwrap();
        }
        store.append(6, 10, &envelope(0x66, 150)).unwrap();
        let before = backend.total_bytes();
        let reclaimed = store.compact().unwrap();
        assert!(reclaimed > 0);
        assert_eq!(backend.total_bytes(), before - reclaimed);

        assert_eq!(store.versions(5), vec![8, 9], "only the newest two survive");
        assert_eq!(store.versions(6), vec![10]);
        assert_eq!(store.fetch(5, 9).unwrap().as_bytes(), &vec![9u8; 200][..]);
        assert_eq!(store.fetch(5, 8).unwrap().as_bytes(), &vec![8u8; 200][..]);
        assert!(matches!(store.fetch(5, 7), Err(StoreError::UnknownVersion { .. })));

        // The compacted log replays to the same state.
        let reopened = EnvelopeStore::open(Arc::new(backend), config).expect("replay");
        assert_eq!(reopened.versions(5), vec![8, 9]);
        assert_eq!(reopened.fetch(5, 8).unwrap().as_bytes(), &vec![8u8; 200][..]);
        assert_eq!(reopened.max_version(), 10);
    }

    #[test]
    fn compression_shrinks_compressible_payloads_transparently() {
        let plain = StoreConfig { shards: 1, compress: false, ..StoreConfig::default() };
        let packed = StoreConfig { shards: 1, compress: true, ..StoreConfig::default() };
        let (a, backend_a) = open_mem(plain);
        let (b, backend_b) = open_mem(packed);
        let body = envelope(0, 8_192); // all-zero: maximally compressible
        a.append(1, 1, &body).unwrap();
        b.append(1, 1, &body).unwrap();
        assert!(backend_b.total_bytes() < backend_a.total_bytes() / 4);
        assert!(b.stats().compression_ratio() < 0.25);
        assert_eq!(b.fetch(1, 1).unwrap().as_bytes(), body.as_bytes(), "reads inflate");

        // Incompressible payloads are stored raw (flag clear) despite
        // compression being enabled.
        let mut x = 1u64;
        let noise: Vec<u8> = (0..2_048)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        let entry = b.append(2, 2, &ModelEnvelope::from_bytes(noise.clone())).unwrap();
        assert!(!entry.compressed, "worse-than-raw encodings are discarded");
        assert_eq!(b.fetch(2, 2).unwrap().as_bytes(), &noise[..]);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let config = StoreConfig { shards: 1, ..StoreConfig::default() };
        let (store, backend) = open_mem(config);
        store.append(1, 1, &envelope(1, 120)).unwrap();
        store.append(1, 2, &envelope(2, 120)).unwrap();

        // Crash mid-append of version 3: simulate by appending a torn
        // half-record to a snapshot of the disk.
        let crash = backend.snapshot();
        let name = segment_name(0, 0);
        let committed = crash.size(&name).unwrap();
        crash.append(&name, b"PLOG torn half-record junk").unwrap();

        let recovered = EnvelopeStore::open(Arc::new(crash.clone()), config).expect("recover");
        assert_eq!(recovered.recovery().torn_segments, 1);
        assert_eq!(recovered.recovery().torn_bytes, 26);
        assert_eq!(recovered.latest_version(1), Some(2), "committed prefix survives");
        assert_eq!(crash.size(&name).unwrap(), committed, "tail physically truncated");

        // The log is clean again: appending continues where it left off.
        recovered.append(1, 3, &envelope(3, 60)).unwrap();
        let reopened = EnvelopeStore::open(Arc::new(crash), config).expect("reopen");
        assert_eq!(reopened.versions(1), vec![1, 2, 3]);
        assert_eq!(reopened.fetch(1, 3).unwrap().as_bytes(), &vec![3u8; 60][..]);
    }

    #[test]
    fn foreign_files_are_rejected() {
        let backend = MemBackend::new();
        backend.append("notes.txt", b"hello").unwrap();
        let err = EnvelopeStore::open(Arc::new(backend), StoreConfig::default());
        assert!(matches!(err, Err(StoreError::BadSegment { .. })));
    }

    #[test]
    fn shard_mismatch_is_rejected() {
        let wide = StoreConfig { shards: 8, ..StoreConfig::default() };
        let narrow = StoreConfig { shards: 2, ..StoreConfig::default() };
        let (store, backend) = open_mem(wide);
        store.append(7, 1, &envelope(7, 32)).unwrap(); // shard 7
        drop(store);
        let err = EnvelopeStore::open(Arc::new(backend), narrow);
        assert!(matches!(err, Err(StoreError::BadSegment { .. })));
    }

    #[test]
    fn concurrent_appends_on_distinct_users_all_commit() {
        let config = StoreConfig { shards: 4, ..StoreConfig::default() };
        let (store, backend) = open_mem(config);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..25u64 {
                        let version = t * 25 + i + 1; // distinct versions
                        store.append(t, version, &envelope(t as u8, 64)).unwrap();
                    }
                });
            }
        });
        assert_eq!(store.stats().retained_versions, 100);
        let reopened = EnvelopeStore::open(Arc::new(backend), config).expect("replay");
        assert_eq!(reopened.stats().retained_versions, 100);
        for t in 0..4u64 {
            assert_eq!(reopened.versions(t).len(), 25);
        }
    }

    #[test]
    fn stats_report_history_by_shard() {
        let config = StoreConfig { shards: 2, ..StoreConfig::default() };
        let (store, _) = open_mem(config);
        store.append(0, 1, &envelope(1, 10)).unwrap(); // shard 0
        store.append(0, 2, &envelope(2, 10)).unwrap();
        store.append(1, 3, &envelope(3, 10)).unwrap(); // shard 1
        let stats = store.stats();
        assert_eq!(stats.retained_by_shard, vec![2, 1]);
        assert_eq!(stats.retained_versions, 3);
        assert_eq!(stats.users, 2);
        assert_eq!(stats.appended_records, 3);
    }
}

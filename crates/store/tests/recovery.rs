//! Crash-point recovery suite: the store must serve exactly the last
//! committed publication for a crash at **any** byte offset of the log.
//!
//! The strategy: build a real log, then for every possible torn length —
//! from the empty file through every byte of every record to the full
//! log — snapshot the "disk", truncate it to that length (the state an
//! append torn at that byte would leave), reopen, and check that the
//! recovered store serves the newest version whose commit byte made it
//! inside the cut, that the tail is physically truncated, and that
//! appending afterwards works. This is exhaustive over crash points, not
//! sampled: the loop runs once per byte of the log.

use std::sync::Arc;

use pelican_nn::ModelEnvelope;
use pelican_store::record::HEADER_LEN;
use pelican_store::{EnvelopeStore, MemBackend, StorageBackend, StoreConfig};

const SEGMENT: &str = "shard0000-seg00000000.plog";

fn config(compress: bool) -> StoreConfig {
    StoreConfig { shards: 1, compress, ..StoreConfig::default() }
}

fn envelope(version: u64) -> ModelEnvelope {
    // Version-dependent, partly repetitive payload (compressible but not
    // trivial), distinct per version so a wrong serve is detectable.
    let body: Vec<u8> = (0..200u64).map(|i| ((i * version) % 251) as u8).collect();
    ModelEnvelope::from_bytes(body)
}

/// Builds a 3-version log for user 1 and returns the committed end
/// offset of each version: `ends[i]` = first byte past version `i+1`.
fn build_log(disk: &MemBackend, compress: bool) -> Vec<u64> {
    let store = EnvelopeStore::open(Arc::new(disk.clone()), config(compress)).expect("open");
    (1..=3u64)
        .map(|v| {
            let entry = store.append(1, v, &envelope(v)).expect("append");
            entry.offset + entry.stored_len as u64
        })
        .collect()
}

#[test]
fn recovery_serves_the_last_committed_version_for_every_crash_point() {
    for compress in [false, true] {
        let disk = MemBackend::new();
        let ends = build_log(&disk, compress);
        let full = disk.size(SEGMENT).expect("segment exists");
        assert_eq!(full, *ends.last().unwrap(), "log ends on the last commit byte");

        for cut in 0..=full {
            let crash = disk.snapshot();
            crash.truncate(SEGMENT, cut).unwrap();
            let recovered = EnvelopeStore::open(Arc::new(crash.clone()), config(compress))
                .unwrap_or_else(|e| panic!("cut {cut}: recovery must succeed, got {e}"));

            // The newest version whose commit byte is inside the cut.
            let committed = ends.iter().filter(|&&end| end <= cut).count() as u64;
            match committed {
                0 => {
                    assert_eq!(
                        recovered.fetch_latest(1).unwrap(),
                        None,
                        "cut {cut}: nothing committed yet"
                    );
                    assert_eq!(recovered.max_version(), 0);
                }
                v => {
                    assert_eq!(
                        recovered.latest_version(1),
                        Some(v),
                        "cut {cut}: wrong surviving version"
                    );
                    let served = recovered.fetch_latest(1).unwrap().unwrap();
                    assert_eq!(
                        served.as_bytes(),
                        envelope(v).as_bytes(),
                        "cut {cut}: payload must be version {v}'s, bit for bit"
                    );
                    // Earlier history survives too — rollback targets.
                    for earlier in 1..v {
                        assert_eq!(
                            recovered.fetch(1, earlier).unwrap().as_bytes(),
                            envelope(earlier).as_bytes()
                        );
                    }
                }
            }

            // The torn tail is physically gone: the file now ends exactly
            // on the committed prefix (header-only when a record tore
            // before its commit byte; empty when the header itself tore).
            let expected_size = if cut < HEADER_LEN as u64 {
                0
            } else {
                ends.iter().copied().filter(|&end| end <= cut).max().unwrap_or(HEADER_LEN as u64)
            };
            assert_eq!(
                crash.size(SEGMENT).unwrap(),
                expected_size,
                "cut {cut}: torn bytes must be truncated away"
            );

            // A second open of the repaired log finds nothing torn.
            drop(recovered);
            let clean = EnvelopeStore::open(Arc::new(crash), config(compress)).unwrap();
            assert_eq!(clean.recovery().torn_segments, 0, "cut {cut}: repair is stable");
        }
    }
}

#[test]
fn appending_after_recovery_continues_the_log() {
    let disk = MemBackend::new();
    let ends = build_log(&disk, false);

    // Crash mid-record-2 (somewhere strictly inside it).
    let cut = (ends[0] + ends[1]) / 2;
    let crash = disk.snapshot();
    crash.truncate(SEGMENT, cut).unwrap();

    let recovered = EnvelopeStore::open(Arc::new(crash.clone()), config(false)).unwrap();
    assert_eq!(recovered.latest_version(1), Some(1));
    assert!(recovered.recovery().torn_segments == 1 && recovered.recovery().torn_bytes > 0);

    // The retried publication lands and survives another restart.
    recovered.append(1, 2, &envelope(2)).unwrap();
    recovered.append(1, 3, &envelope(3)).unwrap();
    drop(recovered);
    let reopened = EnvelopeStore::open(Arc::new(crash), config(false)).unwrap();
    assert_eq!(reopened.versions(1), vec![1, 2, 3]);
    assert_eq!(reopened.fetch(1, 3).unwrap().as_bytes(), envelope(3).as_bytes());
}

#[test]
fn torn_tail_on_a_rolled_segment_only_loses_the_tail() {
    // Small segments force rolling; tearing the *last* segment must not
    // disturb history in earlier ones.
    let config = StoreConfig { shards: 1, segment_bytes: 512, ..StoreConfig::default() };
    let disk = MemBackend::new();
    let store = EnvelopeStore::open(Arc::new(disk.clone()), config).unwrap();
    for v in 1..=8u64 {
        store.append(1, v, &envelope(v)).unwrap();
    }
    let segments: Vec<String> =
        disk.list().unwrap().into_iter().filter(|n| n.ends_with(".plog")).collect();
    assert!(segments.len() > 1, "log must span segments: {segments:?}");

    let last = segments.last().unwrap();
    let crash = disk.snapshot();
    let torn_len = crash.size(last).unwrap() - 7; // tear into the final record
    crash.truncate(last, torn_len).unwrap();

    let recovered = EnvelopeStore::open(Arc::new(crash), config).unwrap();
    assert_eq!(recovered.latest_version(1), Some(7), "only version 8 tore");
    for v in 1..=7u64 {
        assert_eq!(recovered.fetch(1, v).unwrap().as_bytes(), envelope(v).as_bytes());
    }
}

#[test]
fn recovery_is_per_user_across_shards() {
    // Tearing shard 0's segment must not affect users on shard 1.
    let config = StoreConfig { shards: 2, ..StoreConfig::default() };
    let disk = MemBackend::new();
    let store = EnvelopeStore::open(Arc::new(disk.clone()), config).unwrap();
    store.append(0, 1, &envelope(1)).unwrap(); // shard 0
    store.append(1, 2, &envelope(2)).unwrap(); // shard 1
    store.append(0, 3, &envelope(3)).unwrap(); // shard 0

    let crash = disk.snapshot();
    let shard0 = "shard0000-seg00000000.plog";
    crash.truncate(shard0, crash.size(shard0).unwrap() - 1).unwrap(); // tear v3

    let recovered = EnvelopeStore::open(Arc::new(crash), config).unwrap();
    assert_eq!(recovered.latest_version(0), Some(1), "shard 0 lost only its torn tail");
    assert_eq!(recovered.latest_version(1), Some(2), "shard 1 untouched");
}

//! Property tests: the log round-trips arbitrary envelope bytes.
//!
//! An envelope's payload is opaque to the store — devices upload
//! whatever `ModelEnvelope::encode` produced, and the store must carry
//! *any* byte string through append → (crash) → replay unchanged. The
//! properties below drive randomized publication schedules (arbitrary
//! payloads, users, history depths, compression on or off) and assert
//! the replayed index and every payload are identical, and that the
//! LZSS coder is lossless on its own.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use pelican_nn::ModelEnvelope;
use pelican_store::{compress, decompress, EnvelopeStore, MemBackend, StoreConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn appended_payloads_replay_identically(
        publications in prop::collection::vec(
            (0u64..8, prop::collection::vec(0u8..=255, 0..300)),
            1..24,
        ),
        shards in 1usize..4,
        compress_payloads in 0u8..2,
        segment_bytes in 256u64..4096,
    ) {
        let config = StoreConfig {
            shards,
            segment_bytes,
            compress: compress_payloads == 1,
            ..StoreConfig::default()
        };
        let disk = MemBackend::new();
        let store = EnvelopeStore::open(Arc::new(disk.clone()), config).unwrap();

        // Publish with registry-style strictly monotone versions.
        let mut expected: HashMap<u64, Vec<(u64, Vec<u8>)>> = HashMap::new();
        for (version0, (user, payload)) in publications.iter().enumerate() {
            let version = version0 as u64 + 1;
            store.append(*user, version, &ModelEnvelope::from_bytes(payload.clone())).unwrap();
            expected.entry(*user).or_default().push((version, payload.clone()));
        }

        // Replay from the raw bytes alone: the index must be identical.
        drop(store);
        let replayed = EnvelopeStore::open(Arc::new(disk), config).unwrap();
        prop_assert_eq!(replayed.recovery().torn_segments, 0);
        prop_assert_eq!(replayed.max_version(), publications.len() as u64);
        prop_assert_eq!(replayed.stats().users, expected.len());
        for (user, history) in &expected {
            let versions: Vec<u64> = history.iter().map(|(v, _)| *v).collect();
            prop_assert_eq!(replayed.versions(*user), versions, "index differs for user {}", user);
            for (version, payload) in history {
                prop_assert_eq!(
                    replayed.fetch(*user, *version).unwrap().as_bytes(),
                    &payload[..],
                    "payload differs for user {} version {}", user, version
                );
            }
        }
    }

    #[test]
    fn compaction_preserves_retained_payloads(
        depth in 1usize..12,
        retain in 1usize..5,
        payload_seed in 0u8..=255,
    ) {
        let config = StoreConfig {
            shards: 1,
            compaction: pelican_store::CompactionPolicy { retain_versions: retain },
            ..StoreConfig::default()
        };
        let disk = MemBackend::new();
        let store = EnvelopeStore::open(Arc::new(disk.clone()), config).unwrap();
        let payload = |v: u64| vec![payload_seed.wrapping_add(v as u8); 50 + v as usize];
        for v in 1..=depth as u64 {
            store.append(3, v, &ModelEnvelope::from_bytes(payload(v))).unwrap();
        }
        store.compact().unwrap();

        let first_kept = (depth - retain.min(depth)) as u64 + 1;
        let kept: Vec<u64> = (first_kept..=depth as u64).collect();
        prop_assert_eq!(store.versions(3), kept.clone());
        for v in kept {
            prop_assert_eq!(store.fetch(3, v).unwrap().as_bytes(), &payload(v)[..]);
        }
        // And the compacted log still replays.
        drop(store);
        let replayed = EnvelopeStore::open(Arc::new(disk), config).unwrap();
        prop_assert_eq!(replayed.versions(3).len(), retain.min(depth));
    }

    #[test]
    fn lzss_round_trips_arbitrary_bytes(input in prop::collection::vec(0u8..=255, 0..2000)) {
        let packed = compress(&input);
        let unpacked = decompress(&packed, input.len()).unwrap();
        prop_assert_eq!(unpacked, input);
    }
}

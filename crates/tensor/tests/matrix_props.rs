//! Property-based tests of the matrix kernels: algebraic identities that
//! must hold for any shapes and values.

use proptest::prelude::*;

use pelican_tensor::{argmax, softmax, top_k, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right(m in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| matrix(r, c))) {
        let left = Matrix::identity(m.rows()).matmul(&m);
        let right = m.matmul(&Matrix::identity(m.cols()));
        prop_assert_eq!(&left, &m);
        prop_assert_eq!(&right, &m);
    }

    #[test]
    fn matmul_distributes_over_addition(
        dims in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..100,
    ) {
        let (r, k, c) = dims;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = pelican_tensor::xavier_uniform(r, k, &mut rng);
        let mut b = pelican_tensor::xavier_uniform(k, c, &mut rng);
        let c2 = pelican_tensor::xavier_uniform(k, c, &mut rng);
        // a·(b + c) == a·b + a·c
        let mut ab = a.matmul(&b);
        let ac = a.matmul(&c2);
        ab.axpy(1.0, &ac);
        b.axpy(1.0, &c2);
        let combined = a.matmul(&b);
        for (x, y) in combined.as_slice().iter().zip(ab.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4, "distributivity violated: {x} vs {y}");
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(
        dims in (1usize..5, 1usize..5, 1usize..5),
        seed in 0u64..100,
    ) {
        let (r, k, c) = dims;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = pelican_tensor::xavier_uniform(r, k, &mut rng);
        let b = pelican_tensor::xavier_uniform(k, c, &mut rng);
        // (a·b)ᵀ == bᵀ·aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_agrees_with_matmul(
        dims in (1usize..6, 1usize..6),
        seed in 0u64..100,
    ) {
        let (r, c) = dims;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w = pelican_tensor::xavier_uniform(r, c, &mut rng);
        let x = pelican_tensor::xavier_uniform(c, 1, &mut rng);
        let via_matvec = w.matvec(x.as_slice());
        let via_matmul = w.matmul(&x);
        for (a, b) in via_matvec.iter().zip(via_matmul.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn matvec_transpose_is_adjoint(
        dims in (1usize..6, 1usize..6),
        seed in 0u64..100,
    ) {
        // <W·x, y> == <x, Wᵀ·y> — the adjoint identity backprop relies on.
        let (r, c) = dims;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let w = pelican_tensor::xavier_uniform(r, c, &mut rng);
        let x: Vec<f32> = pelican_tensor::xavier_uniform(c, 1, &mut rng).into_vec();
        let y: Vec<f32> = pelican_tensor::xavier_uniform(r, 1, &mut rng).into_vec();
        let wx = w.matvec(&x);
        let wty = w.matvec_transpose(&y);
        let lhs: f32 = wx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&wty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-3, "adjoint identity violated: {lhs} vs {rhs}");
    }

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-20.0f32..20.0, 1..40)) {
        let p = softmax(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // argmax preserved
        prop_assert_eq!(argmax(&p), argmax(&logits));
    }

    #[test]
    fn top_k_is_sorted_prefix(values in prop::collection::vec(-100.0f32..100.0, 0..30), k in 0usize..35) {
        let idx = top_k(&values, k);
        prop_assert_eq!(idx.len(), k.min(values.len()));
        for pair in idx.windows(2) {
            prop_assert!(values[pair[0]] >= values[pair[1]]);
        }
        // every non-selected value is <= the k-th selected value
        if let Some(&last) = idx.last() {
            for (i, &v) in values.iter().enumerate() {
                if !idx.contains(&i) {
                    prop_assert!(v <= values[last] + 1e-6);
                }
            }
        }
    }

    #[test]
    fn rank_one_update_is_additive(
        dims in (1usize..5, 1usize..5),
        seed in 0u64..100,
    ) {
        let (r, c) = dims;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let row: Vec<f32> = pelican_tensor::xavier_uniform(r, 1, &mut rng).into_vec();
        let col: Vec<f32> = pelican_tensor::xavier_uniform(c, 1, &mut rng).into_vec();
        let mut once = Matrix::zeros(r, c);
        once.rank_one_update(2.0, &row, &col);
        let mut twice = Matrix::zeros(r, c);
        twice.rank_one_update(1.0, &row, &col);
        twice.rank_one_update(1.0, &row, &col);
        for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn frobenius_norm_is_subadditive(
        dims in (1usize..5, 1usize..5),
        seed in 0u64..100,
    ) {
        let (r, c) = dims;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = pelican_tensor::xavier_uniform(r, c, &mut rng);
        let b = pelican_tensor::xavier_uniform(r, c, &mut rng);
        let mut sum = a.clone();
        sum.axpy(1.0, &b);
        prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-4);
    }
}

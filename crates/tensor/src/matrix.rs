//! A dense, row-major, `f32` matrix.
//!
//! [`Matrix`] is deliberately minimal: it provides exactly the kernels the
//! LSTM training and model-inversion code in the higher crates need, with
//! cache-friendly loop orderings and FLOP accounting, and nothing else.

use serde::{Deserialize, Serialize};

use crate::flops::{note_batched_flops, record_flops};

/// A dense row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use pelican_tensor::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m.row(0), &[0.0, 5.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of {} elements cannot back a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// Uses an `i-k-j` loop ordering so the inner loop streams over
    /// contiguous rows of both operands.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue; // one-hot inputs make this branch very profitable
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        record_flops(2 * self.rows as u64 * self.cols as u64 * rhs.cols as u64);
        out
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    ///
    /// Four `rhs` rows are processed per pass over each `self` row, giving
    /// the CPU four *independent* accumulation chains to overlap — the
    /// single serial chain of a plain dot product is what bounds
    /// [`Matrix::matvec`] at ~1 FLOP/cycle, and it is exactly what fused
    /// batched inference escapes. Every accumulator still sums its
    /// products in strict left-to-right `k` order, so each output element
    /// is bit-identical to a scalar [`Matrix::matvec`] of the same row.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transpose dimension mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let cols = self.cols;
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * cols..(i + 1) * cols];
            let out_row = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            let mut j = 0;
            while j + 4 <= rhs.rows {
                let b0 = &rhs.data[j * cols..(j + 1) * cols];
                let b1 = &rhs.data[(j + 1) * cols..(j + 2) * cols];
                let b2 = &rhs.data[(j + 2) * cols..(j + 3) * cols];
                let b3 = &rhs.data[(j + 3) * cols..(j + 4) * cols];
                let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (k, &a) in a_row.iter().enumerate() {
                    acc0 += a * b0[k];
                    acc1 += a * b1[k];
                    acc2 += a * b2[k];
                    acc3 += a * b3[k];
                }
                out_row[j] = acc0;
                out_row[j + 1] = acc1;
                out_row[j + 2] = acc2;
                out_row[j + 3] = acc3;
                j += 4;
            }
            while j < rhs.rows {
                let b_row = &rhs.data[j * cols..(j + 1) * cols];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out_row[j] = acc;
                j += 1;
            }
        }
        record_flops(2 * self.rows as u64 * self.cols as u64 * rhs.rows as u64);
        out
    }

    /// Matrix-vector product `self · x`.
    ///
    /// Skips zero inputs, which makes one-hot encoded feature vectors (the
    /// common case in this workspace) nearly free.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec dimension mismatch: {}x{} · vec[{}]",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            let mut acc = 0.0;
            for (&w, &xv) in row.iter().zip(x) {
                acc += w * xv;
            }
            *o = acc;
        }
        record_flops(2 * self.rows as u64 * self.cols as u64);
        out
    }

    /// Matrix-vector product with the transpose, `selfᵀ · x`.
    ///
    /// Equivalent to `self.transpose().matvec(x)` without materializing the
    /// transpose; this is the backward-pass companion of [`Matrix::matvec`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transpose dimension mismatch: ({}x{})ᵀ · vec[{}]",
            self.rows,
            self.cols,
            x.len()
        );
        let mut out = vec![0.0; self.cols];
        for (i, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += w * xv;
            }
        }
        record_flops(2 * self.rows as u64 * self.cols as u64);
        out
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `self += alpha · other`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        record_flops(2 * self.data.len() as u64);
    }

    /// `self += rowᵀ · col` scaled by `alpha` (a rank-1 update).
    ///
    /// `row` must have `self.rows()` elements and `col` must have
    /// `self.cols()` elements. Used to accumulate weight gradients from a
    /// single sample without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the matrix shape.
    pub fn rank_one_update(&mut self, alpha: f32, row: &[f32], col: &[f32]) {
        assert_eq!(row.len(), self.rows, "rank_one_update row-length mismatch");
        assert_eq!(col.len(), self.cols, "rank_one_update col-length mismatch");
        for (i, &r) in row.iter().enumerate() {
            if r == 0.0 {
                continue;
            }
            let s = alpha * r;
            let out_row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &c) in out_row.iter_mut().zip(col) {
                *o += s * c;
            }
        }
        record_flops(2 * self.data.len() as u64);
    }

    /// Applies a block of rank-1 updates in one fused pass — bit-identical
    /// to calling [`rank_one_update`](Self::rank_one_update) once per
    /// `(row, col)` pair in slice order.
    ///
    /// The fusion walks the output matrix row-major *once*, applying every
    /// contribution to a row while it is hot, instead of streaming the
    /// whole gradient matrix through cache once per contribution. Each
    /// output element still receives its `+= alpha·rowₚ[i]·colₚ[j]` terms
    /// in exactly the order the sequential calls would apply them (pair
    /// `0`, then pair `1`, …), and the same `rowₚ[i] == 0.0` skip applies,
    /// so the accumulated bits are identical. This is the backward-pass
    /// analogue of the `infer_batch` lockstep discipline.
    ///
    /// Records the same FLOP count as the equivalent sequence of
    /// [`rank_one_update`](Self::rank_one_update) calls (`2·len` per pair,
    /// regardless of zero-skips) and tags it as batched-kernel work.
    ///
    /// # Panics
    ///
    /// Panics if any vector length does not match the matrix shape.
    pub fn rank_updates(&mut self, alpha: f32, updates: &[(&[f32], &[f32])]) {
        for &(row, col) in updates {
            assert_eq!(row.len(), self.rows, "rank_updates row-length mismatch");
            assert_eq!(col.len(), self.cols, "rank_updates col-length mismatch");
        }
        for i in 0..self.rows {
            let out_row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            for &(row, col) in updates {
                let r = row[i];
                if r == 0.0 {
                    continue;
                }
                let s = alpha * r;
                for (o, &c) in out_row.iter_mut().zip(col) {
                    *o += s * c;
                }
            }
        }
        let flops = 2 * self.data.len() as u64 * updates.len() as u64;
        record_flops(flops);
        note_batched_flops(flops);
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
        record_flops(self.data.len() as u64);
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(f32) -> f32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm (`sqrt` of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// The largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, -1.0], &[2.0, -2.0, 0.25]]);
        assert_eq!(a.matmul_transpose(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn rank_one_update_matches_outer_product() {
        let mut m = Matrix::zeros(2, 3);
        m.rank_one_update(2.0, &[1.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(m, Matrix::from_rows(&[&[8.0, 10.0, 12.0], &[24.0, 30.0, 36.0]]));
    }

    #[test]
    fn rank_updates_bit_identical_to_sequential_calls() {
        // Irrational-ish values so any reassociation of the f32 sums
        // would change the bits, plus zeros to exercise the skip rule.
        let rows: Vec<Vec<f32>> = (0..5)
            .map(|p| {
                (0..4)
                    .map(|i| {
                        if (p + i) % 3 == 0 {
                            0.0
                        } else {
                            0.1 + p as f32 * 0.37 + i as f32 * 0.113
                        }
                    })
                    .collect()
            })
            .collect();
        let cols: Vec<Vec<f32>> = (0..5)
            .map(|p| (0..3).map(|j| 0.05 + p as f32 * 0.29 + j as f32 * 0.071).collect())
            .collect();
        let updates: Vec<(&[f32], &[f32])> =
            rows.iter().zip(&cols).map(|(r, c)| (r.as_slice(), c.as_slice())).collect();

        let mut seq = Matrix::filled(4, 3, 0.25);
        let seq_guard = crate::flops::ThreadFlopGuard::start();
        for &(r, c) in &updates {
            seq.rank_one_update(0.7, r, c);
        }
        let seq_flops = seq_guard.stop();

        let mut fused = Matrix::filled(4, 3, 0.25);
        let fused_guard = crate::flops::ThreadFlopGuard::start();
        let batched_before = crate::flops::thread_batched_flops_now();
        fused.rank_updates(0.7, &updates);
        let fused_flops = fused_guard.stop();
        let fused_batched = crate::flops::thread_batched_flops_now().wrapping_sub(batched_before);

        assert_eq!(seq.data, fused.data, "fused rank updates diverged bitwise");
        assert_eq!(seq_flops, fused_flops, "FLOP parity broken");
        assert_eq!(fused_batched, fused_flops, "fused work must be tagged batched");
    }

    #[test]
    fn rank_updates_empty_is_noop() {
        let mut m = Matrix::filled(2, 2, 3.0);
        let before = m.clone();
        m.rank_updates(1.0, &[]);
        assert_eq!(m, before);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Matrix::filled(2, 2, 2.5));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius_norm_of_unit_axes() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }
}

//! Dense matrix kernels and numeric utilities for the Pelican reproduction.
//!
//! This crate is the lowest substrate of the Pelican workspace: a small,
//! dependency-light linear-algebra library sufficient to train and invert
//! LSTM-based next-location models. The paper's original implementation used
//! PyTorch; everything the higher layers need from it — dense GEMM,
//! elementwise activations, stable softmax, top-k selection and weight
//! initialization — is implemented here in pure Rust.
//!
//! Two design points matter for the reproduction:
//!
//! * **Determinism.** All randomness flows through caller-provided
//!   [`rand::Rng`] values so experiments are exactly repeatable from a seed.
//! * **Work accounting.** Every kernel reports the floating-point operations
//!   it performs to a process-wide [`flops`] counter. The Pelican platform
//!   simulation converts these counts into simulated CPU cycles to reproduce
//!   the paper's cloud-vs-device overhead comparison (§V-C2) without needing
//!   the authors' Titan-X testbed.
//!
//! # Example
//!
//! ```
//! use pelican_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

pub mod flops;
pub mod init;
pub mod matrix;
pub mod ops;

pub use flops::{
    batched_flops_now, flops_now, note_batched_flops, record_flops, reset_flops,
    thread_batched_flops_now, thread_flops_now, FlopGuard, ThreadFlopGuard,
};
pub use init::{xavier_uniform, Init};
pub use matrix::Matrix;
pub use ops::{
    argmax, log_softmax_in_place, nearest_rank, sigmoid, softmax, softmax_in_place,
    softmax_temperature_in_place, top_k,
};

//! Elementwise activations, stable softmax variants and top-k selection.
//!
//! These free functions operate on slices so they can be applied to matrix
//! rows, hidden-state vectors and raw logit buffers alike.

use crate::flops::record_flops;

/// Numerically-stable logistic sigmoid.
///
/// # Example
///
/// ```
/// assert_eq!(pelican_tensor::sigmoid(0.0), 0.5);
/// ```
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// In-place stable softmax with an optional temperature divisor.
///
/// Computes `softmax(x / temperature)` as in Eq. (1) of the paper. The
/// temperature is the knob both the gradient-descent inversion attack
/// (softening candidates) and the Pelican privacy layer (sharpening
/// confidences) turn.
///
/// # Panics
///
/// Panics if `temperature <= 0` or is not finite.
pub fn softmax_temperature_in_place(x: &mut [f32], temperature: f32) {
    assert!(
        temperature > 0.0 && temperature.is_finite(),
        "temperature must be a positive finite number, got {temperature}"
    );
    if x.is_empty() {
        return;
    }
    let inv_t = 1.0 / temperature;
    let max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v * inv_t));
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v * inv_t - max).exp();
        sum += *v;
    }
    // All-(-inf) rows cannot occur from finite logits, so sum > 0 here.
    let inv_sum = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv_sum;
    }
    record_flops(4 * x.len() as u64);
}

/// In-place stable softmax (temperature 1).
pub fn softmax_in_place(x: &mut [f32]) {
    softmax_temperature_in_place(x, 1.0);
}

/// Returns `softmax(x)` as a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_in_place(&mut out);
    out
}

/// In-place stable log-softmax.
///
/// Used by the cross-entropy loss: `CE = -log_softmax(logits)[target]`.
pub fn log_softmax_in_place(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let log_sum: f32 = x.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    for v in x.iter_mut() {
        *v -= log_sum;
    }
    record_flops(3 * x.len() as u64);
}

/// Index of the largest element, or `None` for an empty slice.
///
/// Ties resolve to the lowest index, matching `argmax` conventions in
/// numerical frameworks.
pub fn argmax(x: &[f32]) -> Option<usize> {
    x.iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f32)>, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

/// Indices of the `k` largest elements in descending value order.
///
/// Returns fewer than `k` indices if the slice is shorter than `k`. Ties
/// resolve to lower indices first, so results are deterministic.
///
/// # Example
///
/// ```
/// let idx = pelican_tensor::top_k(&[0.1, 0.7, 0.2], 2);
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k(x: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// element whose rank is at least `⌈q·n⌉` (clamped to a valid rank), or
/// `None` for an empty slice.
///
/// This is the one percentile definition the workspace shares — serving
/// latency metrics, training enroll reports and the network simulator's
/// stage breakdowns all delegate here, so their numbers are comparable.
///
/// # Example
///
/// ```
/// let sorted: Vec<u64> = (1..=100).collect();
/// assert_eq!(pelican_tensor::nearest_rank(&sorted, 0.95), Some(95));
/// assert_eq!(pelican_tensor::nearest_rank::<u64>(&[], 0.5), None);
/// ```
pub fn nearest_rank<T: Copy + Ord>(sorted: &[T], q: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_symmetric() {
        for x in [-5.0_f32, -1.0, 0.0, 1.0, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_handles_extremes() {
        assert!(sigmoid(100.0) > 0.999_99);
        assert!(sigmoid(-100.0) < 1e-5);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn low_temperature_sharpens() {
        let mut hot = vec![1.0, 2.0, 3.0];
        let mut cold = vec![1.0, 2.0, 3.0];
        softmax_temperature_in_place(&mut hot, 1.0);
        softmax_temperature_in_place(&mut cold, 1e-3);
        assert!(cold[2] > hot[2]);
        assert!(cold[2] > 0.999);
    }

    #[test]
    fn temperature_preserves_order() {
        let logits = [0.3, -1.0, 2.5, 0.31];
        for t in [0.1, 1.0, 10.0] {
            let mut p = logits.to_vec();
            softmax_temperature_in_place(&mut p, t);
            assert_eq!(top_k(&p, 4), top_k(&logits, 4), "temperature {t} changed ranking");
        }
        // At extreme temperatures the tail underflows to zero in f32 — the
        // paper's caveat that accuracy is preserved only "as long as
        // appropriate precision is used". The argmax always survives.
        let mut p = logits.to_vec();
        softmax_temperature_in_place(&mut p, 1e-3);
        assert_eq!(argmax(&p), argmax(&logits));
    }

    #[test]
    #[should_panic(expected = "temperature must be a positive finite number")]
    fn zero_temperature_rejected() {
        softmax_temperature_in_place(&mut [1.0, 2.0], 0.0);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = [0.5, -0.25, 3.0];
        let p = softmax(&x);
        let mut ls = x.to_vec();
        log_softmax_in_place(&mut ls);
        for (l, p) in ls.iter().zip(&p) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[3.0]), Some(0));
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0), "ties resolve low");
    }

    #[test]
    fn top_k_orders_descending() {
        assert_eq!(top_k(&[0.1, 0.9, 0.5, 0.7], 3), vec![1, 3, 2]);
        assert_eq!(top_k(&[0.1], 5), vec![0]);
        assert!(top_k(&[], 3).is_empty());
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        // Regression guard for the serving path: sharpened (privacy-layer)
        // confidences underflow whole tails to exactly 0.0, so tied values
        // are the common case and must order by index for batched,
        // unbatched and re-run results to agree.
        assert_eq!(top_k(&[0.25, 0.25, 0.25, 0.25], 4), vec![0, 1, 2, 3]);
        assert_eq!(top_k(&[0.5, 0.0, 0.0, 0.5, 0.0], 5), vec![0, 3, 1, 2, 4]);
        let sharpened = [0.0f32, 1.0, 0.0, 0.0];
        assert_eq!(top_k(&sharpened, 4), vec![1, 0, 2, 3]);
    }

    #[test]
    fn nearest_rank_matches_the_classic_definition() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&sorted, 0.50), Some(50));
        assert_eq!(nearest_rank(&sorted, 0.95), Some(95));
        assert_eq!(nearest_rank(&sorted, 0.99), Some(99));
        assert_eq!(nearest_rank(&sorted, 1.0), Some(100));
    }

    #[test]
    fn nearest_rank_clamps_and_handles_edges() {
        assert_eq!(nearest_rank::<u64>(&[], 0.5), None, "empty has no percentile");
        assert_eq!(nearest_rank(&[7u64], 0.01), Some(7));
        assert_eq!(nearest_rank(&[7u64], 0.99), Some(7));
        // q = 0 still yields the first element (rank clamps to 1), and
        // q > 1 clamps to the last.
        assert_eq!(nearest_rank(&[1u64, 2, 3], 0.0), Some(1));
        assert_eq!(nearest_rank(&[1u64, 2, 3], 2.0), Some(3));
        // Works for any ordered Copy type, e.g. Duration.
        use std::time::Duration;
        let ds = [Duration::from_millis(1), Duration::from_millis(9)];
        assert_eq!(nearest_rank(&ds, 0.95), Some(Duration::from_millis(9)));
    }
}

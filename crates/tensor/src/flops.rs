//! Process-wide floating-point-operation accounting.
//!
//! The Pelican paper compares the *compute cost* of cloud-side general-model
//! training against device-side transfer-learning personalization
//! (≈43,000 billion CPU cycles vs ≈15 billion, §V-C2). We reproduce that
//! comparison on simulated hardware by counting the FLOPs every kernel in
//! this crate performs and letting the platform layer convert counts into
//! simulated cycles.
//!
//! The counter is a relaxed atomic: exact interleaving across threads does
//! not matter, only the total.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);

/// FLOPs performed by *fused batched* kernels (a subset of [`FLOPS`]).
///
/// Batched kernels record into both counters, so `batched / total` is the
/// fraction of work that went through a fused path — the number the
/// `train-report` experiment uses to show how much of an epoch the
/// lockstep path actually GEMM-ified. Equality of the *total* counter
/// between a batched and a sequential run is the FLOP-parity contract.
static BATCHED_FLOPS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread mirror of the global counter, so one thread's work can
    /// be measured exactly even while other threads record concurrently.
    static THREAD_FLOPS: Cell<u64> = const { Cell::new(0) };

    /// Per-thread mirror of [`BATCHED_FLOPS`].
    static THREAD_BATCHED_FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Adds `n` floating-point operations to the process-wide counter (and
/// this thread's mirror).
///
/// Kernels in this crate call this internally; external code only needs it
/// when implementing custom kernels that should participate in overhead
/// accounting.
#[inline]
pub fn record_flops(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
    THREAD_FLOPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Tags `n` already-recorded FLOPs as having gone through a fused batched
/// kernel.
///
/// Batched kernels call [`record_flops`] with the same count a sequence of
/// their scalar equivalents would have recorded (the FLOP-parity
/// contract), then call this with that count. The tag is therefore always
/// a subset of the total: `batched_flops_now() <= flops_now()`.
#[inline]
pub fn note_batched_flops(n: u64) {
    BATCHED_FLOPS.fetch_add(n, Ordering::Relaxed);
    THREAD_BATCHED_FLOPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Returns the total number of FLOPs recorded since process start (or the
/// last [`reset_flops`]).
#[inline]
pub fn flops_now() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Returns the FLOPs recorded by fused batched kernels since process
/// start (or the last [`reset_flops`]).
#[inline]
pub fn batched_flops_now() -> u64 {
    BATCHED_FLOPS.load(Ordering::Relaxed)
}

/// FLOPs recorded by fused batched kernels on *this thread* since it
/// started.
#[inline]
pub fn thread_batched_flops_now() -> u64 {
    THREAD_BATCHED_FLOPS.with(Cell::get)
}

/// Resets the process-wide FLOP counters (total and batched) to zero.
///
/// Prefer [`FlopGuard`] for scoped measurement; resetting a global counter
/// from concurrent experiments will interleave their counts.
pub fn reset_flops() {
    FLOPS.store(0, Ordering::Relaxed);
    BATCHED_FLOPS.store(0, Ordering::Relaxed);
}

/// Measures the FLOPs performed between construction and [`FlopGuard::stop`].
///
/// # Example
///
/// ```
/// use pelican_tensor::{FlopGuard, Matrix};
///
/// let guard = FlopGuard::start();
/// let a = Matrix::zeros(8, 8);
/// let _ = a.matmul(&a);
/// let spent = guard.stop();
/// assert_eq!(spent, 2 * 8 * 8 * 8); // 2·m·k·n for GEMM
/// ```
#[derive(Debug)]
pub struct FlopGuard {
    start: u64,
}

impl FlopGuard {
    /// Begins a scoped measurement at the current counter value.
    pub fn start() -> Self {
        Self { start: flops_now() }
    }

    /// Ends the measurement and returns the FLOPs recorded in between.
    pub fn stop(self) -> u64 {
        flops_now().saturating_sub(self.start)
    }
}

/// FLOPs recorded by *this thread* since it started.
#[inline]
pub fn thread_flops_now() -> u64 {
    THREAD_FLOPS.with(Cell::get)
}

/// Measures the FLOPs this thread performs between construction and
/// [`ThreadFlopGuard::stop`].
///
/// Unlike [`FlopGuard`], the measurement is exact even while other
/// threads record concurrently — each thread mirrors its own
/// contributions — which is what makes per-job cost accounting
/// deterministic across trainer-pool widths. The measured closure must
/// stay on one thread; work it spawns elsewhere is not attributed.
#[derive(Debug)]
pub struct ThreadFlopGuard {
    start: u64,
}

impl ThreadFlopGuard {
    /// Begins a scoped per-thread measurement.
    pub fn start() -> Self {
        Self { start: thread_flops_now() }
    }

    /// Ends the measurement and returns this thread's FLOPs in between.
    pub fn stop(self) -> u64 {
        thread_flops_now().wrapping_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_measures_delta() {
        let g = FlopGuard::start();
        record_flops(123);
        assert_eq!(g.stop(), 123);
    }

    #[test]
    fn counter_accumulates() {
        let before = flops_now();
        record_flops(7);
        record_flops(3);
        assert_eq!(flops_now() - before, 10);
    }

    #[test]
    fn batched_tag_is_a_subset_of_total() {
        let total = ThreadFlopGuard::start();
        let batched_before = thread_batched_flops_now();
        record_flops(40);
        note_batched_flops(40); // a fused kernel tags what it recorded
        record_flops(10); // a scalar kernel records untagged
        let batched = thread_batched_flops_now().wrapping_sub(batched_before);
        assert_eq!(total.stop(), 50);
        assert_eq!(batched, 40);
    }

    #[test]
    fn thread_guard_ignores_other_threads() {
        let guard = ThreadFlopGuard::start();
        record_flops(11);
        // A concurrent thread records into the global counter (and its
        // own mirror), but must not perturb this thread's measurement.
        std::thread::spawn(|| record_flops(1_000)).join().unwrap();
        record_flops(4);
        assert_eq!(guard.stop(), 15);
    }
}

//! Process-wide floating-point-operation accounting.
//!
//! The Pelican paper compares the *compute cost* of cloud-side general-model
//! training against device-side transfer-learning personalization
//! (≈43,000 billion CPU cycles vs ≈15 billion, §V-C2). We reproduce that
//! comparison on simulated hardware by counting the FLOPs every kernel in
//! this crate performs and letting the platform layer convert counts into
//! simulated cycles.
//!
//! The counter is a relaxed atomic: exact interleaving across threads does
//! not matter, only the total.

use std::sync::atomic::{AtomicU64, Ordering};

static FLOPS: AtomicU64 = AtomicU64::new(0);

/// Adds `n` floating-point operations to the process-wide counter.
///
/// Kernels in this crate call this internally; external code only needs it
/// when implementing custom kernels that should participate in overhead
/// accounting.
#[inline]
pub fn record_flops(n: u64) {
    FLOPS.fetch_add(n, Ordering::Relaxed);
}

/// Returns the total number of FLOPs recorded since process start (or the
/// last [`reset_flops`]).
#[inline]
pub fn flops_now() -> u64 {
    FLOPS.load(Ordering::Relaxed)
}

/// Resets the process-wide FLOP counter to zero.
///
/// Prefer [`FlopGuard`] for scoped measurement; resetting a global counter
/// from concurrent experiments will interleave their counts.
pub fn reset_flops() {
    FLOPS.store(0, Ordering::Relaxed);
}

/// Measures the FLOPs performed between construction and [`FlopGuard::stop`].
///
/// # Example
///
/// ```
/// use pelican_tensor::{FlopGuard, Matrix};
///
/// let guard = FlopGuard::start();
/// let a = Matrix::zeros(8, 8);
/// let _ = a.matmul(&a);
/// let spent = guard.stop();
/// assert_eq!(spent, 2 * 8 * 8 * 8); // 2·m·k·n for GEMM
/// ```
#[derive(Debug)]
pub struct FlopGuard {
    start: u64,
}

impl FlopGuard {
    /// Begins a scoped measurement at the current counter value.
    pub fn start() -> Self {
        Self { start: flops_now() }
    }

    /// Ends the measurement and returns the FLOPs recorded in between.
    pub fn stop(self) -> u64 {
        flops_now().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_measures_delta() {
        let g = FlopGuard::start();
        record_flops(123);
        assert_eq!(g.stop(), 123);
    }

    #[test]
    fn counter_accumulates() {
        let before = flops_now();
        record_flops(7);
        record_flops(3);
        assert_eq!(flops_now() - before, 10);
    }
}

//! Weight initialization schemes.
//!
//! All initializers draw from a caller-supplied RNG so model construction is
//! deterministic given a seed — a requirement for reproducing the paper's
//! experiments exactly across runs.

use rand::{Rng, RngExt as _};

use crate::matrix::Matrix;

/// Initialization scheme for a weight matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (typical for biases).
    Zeros,
    /// Uniform in `[-bound, bound]`.
    Uniform {
        /// Half-width of the sampling interval.
        bound: f32,
    },
    /// Xavier/Glorot uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
}

impl Init {
    /// Samples a `rows × cols` matrix under this scheme.
    ///
    /// For [`Init::XavierUniform`], `rows` is treated as fan-out and `cols`
    /// as fan-in, matching a layer computing `y = W·x`.
    pub fn sample<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::Uniform { bound } => sample_uniform(rows, cols, bound, rng),
            Init::XavierUniform => {
                let bound = (6.0 / (rows + cols) as f32).sqrt();
                sample_uniform(rows, cols, bound, rng)
            }
        }
    }
}

fn sample_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, bound: f32, rng: &mut R) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.random_range(-bound..=bound);
    }
    m
}

/// Convenience wrapper for [`Init::XavierUniform`].
///
/// # Example
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let w = pelican_tensor::xavier_uniform(4, 16, &mut rng);
/// assert_eq!(w.shape(), (4, 16));
/// ```
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    Init::XavierUniform.sample(rows, cols, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let (rows, cols) = (32, 64);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let w = xavier_uniform(rows, cols, &mut rng);
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(w.max_abs() > bound * 0.5, "samples should span the range");
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(42));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn zeros_scheme_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Init::Zeros.sample(3, 5, &mut rng);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }
}

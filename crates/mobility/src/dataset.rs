//! Feature encoding and dataset assembly.
//!
//! Turns session trajectories into the paper's learning task (§IV-A): the
//! model `M : x_{t−2}, x_{t−1} → l_t` consumes two consecutive sessions,
//! each encoded as the one-hot concatenation `[location | entry-slot |
//! duration-bin | day-of-week]`, and predicts the next location.
//!
//! The same [`FeatureSpace`] that encodes training data also *decodes*
//! candidate vectors for the inversion attacks, which must enumerate or
//! reconstruct feature blocks.

use serde::{Deserialize, Serialize};

use pelican_nn::{Sample, Sequence, Step};

use crate::campus::CampusConfig;
use crate::generator::{TraceGenerator, UserTrace};
use crate::session::{Session, DAYS_PER_WEEK, DURATION_BINS, ENTRY_SLOTS};

/// The paper's two spatial resolutions (Fig. 3a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpatialLevel {
    /// Coarse: building-level locations (150 classes at paper scale).
    Building,
    /// Fine: access-point-level locations (~3000 classes at paper scale).
    Ap,
}

impl std::fmt::Display for SpatialLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpatialLevel::Building => write!(f, "bldg"),
            SpatialLevel::Ap => write!(f, "ap"),
        }
    }
}

/// Layout of the one-hot feature vector for one timestep.
///
/// Blocks, in order: location (`n_locations` wide), entry slot (48),
/// duration bin (24), day-of-week (7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpace {
    /// Spatial resolution of the location block.
    pub level: SpatialLevel,
    /// Number of location classes (domain-equalized across users, §III-A3).
    pub n_locations: usize,
}

impl FeatureSpace {
    /// Creates a feature space over `n_locations` location classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_locations == 0`.
    pub fn new(level: SpatialLevel, n_locations: usize) -> Self {
        assert!(n_locations > 0, "need at least one location class");
        Self { level, n_locations }
    }

    /// Total feature dimension per timestep.
    pub fn dim(&self) -> usize {
        self.n_locations + ENTRY_SLOTS + DURATION_BINS + DAYS_PER_WEEK
    }

    /// Offset of the entry-slot block.
    pub fn entry_offset(&self) -> usize {
        self.n_locations
    }

    /// Offset of the duration-bin block.
    pub fn duration_offset(&self) -> usize {
        self.n_locations + ENTRY_SLOTS
    }

    /// Offset of the day-of-week block.
    pub fn dow_offset(&self) -> usize {
        self.n_locations + ENTRY_SLOTS + DURATION_BINS
    }

    /// The location index a session maps to at this spatial level.
    pub fn location_of(&self, s: &Session) -> usize {
        match self.level {
            SpatialLevel::Building => s.building,
            SpatialLevel::Ap => s.ap,
        }
    }

    /// Encodes discrete features into a one-hot step vector.
    ///
    /// # Panics
    ///
    /// Panics if any index exceeds its block width.
    pub fn encode(
        &self,
        location: usize,
        entry_slot: usize,
        duration_bin: usize,
        dow: usize,
    ) -> Step {
        assert!(location < self.n_locations, "location {location} out of range");
        assert!(entry_slot < ENTRY_SLOTS, "entry slot {entry_slot} out of range");
        assert!(duration_bin < DURATION_BINS, "duration bin {duration_bin} out of range");
        assert!(dow < DAYS_PER_WEEK, "day of week {dow} out of range");
        let mut x = vec![0.0; self.dim()];
        x[location] = 1.0;
        x[self.entry_offset() + entry_slot] = 1.0;
        x[self.duration_offset() + duration_bin] = 1.0;
        x[self.dow_offset() + dow] = 1.0;
        x
    }

    /// Encodes a session.
    pub fn encode_session(&self, s: &Session) -> Step {
        self.encode(self.location_of(s), s.entry_slot(), s.duration_bin(), s.day_of_week())
    }

    /// Decodes the hottest index of each block:
    /// `(location, entry_slot, duration_bin, dow)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn decode(&self, x: &[f32]) -> (usize, usize, usize, usize) {
        assert_eq!(x.len(), self.dim(), "feature vector has wrong dimension");
        let loc = pelican_tensor::argmax(&x[..self.n_locations]).expect("nonempty block");
        let entry = pelican_tensor::argmax(&x[self.entry_offset()..self.duration_offset()])
            .expect("nonempty block");
        let dur = pelican_tensor::argmax(&x[self.duration_offset()..self.dow_offset()])
            .expect("nonempty block");
        let dow = pelican_tensor::argmax(&x[self.dow_offset()..]).expect("nonempty block");
        (loc, entry, dur, dow)
    }
}

/// Encodes a session at the given spatial level within `space`.
///
/// Convenience free function mirroring [`FeatureSpace::encode_session`].
pub fn encode_session(space: &FeatureSpace, s: &Session) -> Step {
    space.encode_session(s)
}

/// Per-user data: the raw session triples the learning task is built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserData {
    /// User index.
    pub user_id: usize,
    /// The generating trace (profile + sessions).
    pub trace: UserTrace,
    /// Consecutive same-day session triples `(x_{t−2}, x_{t−1}, x_t)`.
    pub triples: Vec<[Session; 3]>,
}

impl UserData {
    /// Triples restricted to the first `weeks` weeks (Table IV).
    pub fn triples_within_weeks(&self, weeks: usize) -> Vec<[Session; 3]> {
        let cutoff = (weeks * DAYS_PER_WEEK) as u32;
        self.triples.iter().filter(|t| t[2].day < cutoff).copied().collect()
    }
}

/// A complete dataset: traces, triples and the feature space to encode them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MobilityDataset {
    /// Feature layout shared by all samples.
    pub space: FeatureSpace,
    /// Per-user data, indexed by user id.
    pub users: Vec<UserData>,
}

impl MobilityDataset {
    /// Converts a triple into a labelled training sample.
    pub fn sample_of(&self, triple: &[Session; 3]) -> Sample {
        let xs: Sequence =
            vec![self.space.encode_session(&triple[0]), self.space.encode_session(&triple[1])];
        Sample::new(xs, self.space.location_of(&triple[2]))
    }

    /// All samples for one user, time-ordered.
    pub fn user_samples(&self, user_id: usize) -> Vec<Sample> {
        self.users[user_id].triples.iter().map(|t| self.sample_of(t)).collect()
    }

    /// Pools the samples of a range of users (the contributor set `G` that
    /// trains the general model).
    pub fn pooled_samples(&self, users: std::ops::Range<usize>) -> Vec<Sample> {
        users.flat_map(|u| self.users[u].triples.iter().map(|t| self.sample_of(t))).collect()
    }

    /// Number of location classes.
    pub fn n_locations(&self) -> usize {
        self.space.n_locations
    }
}

/// Builds [`MobilityDataset`]s from a campus configuration.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    config: CampusConfig,
    seed: u64,
}

impl DatasetBuilder {
    /// Creates a builder for the given campus and seed.
    pub fn new(config: CampusConfig, seed: u64) -> Self {
        Self { config, seed }
    }

    /// Generates the dataset at a spatial level.
    ///
    /// The location domain is *domain-equalized* (§III-A3): every user's
    /// feature space spans all campus locations, not just those the user
    /// visited — the paper's prerequisite for transfer learning between the
    /// general and personal domains.
    pub fn build(&self, level: SpatialLevel) -> MobilityDataset {
        let mut generator = TraceGenerator::new(self.config.clone(), self.seed);
        let n_locations = match level {
            SpatialLevel::Building => self.config.buildings,
            SpatialLevel::Ap => self.config.total_aps(),
        };
        let space = FeatureSpace::new(level, n_locations);
        let users = generator
            .all_traces()
            .into_iter()
            .enumerate()
            .map(|(user_id, trace)| {
                let triples = extract_triples(&trace.sessions);
                UserData { user_id, trace, triples }
            })
            .collect();
        MobilityDataset { space, users }
    }
}

/// Extracts all same-day consecutive session triples from a trajectory.
fn extract_triples(sessions: &[Session]) -> Vec<[Session; 3]> {
    sessions
        .windows(3)
        .filter(|w| w[0].day == w[1].day && w[1].day == w[2].day)
        .map(|w| [w[0], w[1], w[2]])
        .collect()
}

/// Splits samples into time-ordered train/test partitions.
///
/// The first `train_fraction` of each user's (already chronological)
/// samples become training data; the rest are test data — the paper's
/// 80/20 protocol without temporal leakage.
///
/// # Panics
///
/// Panics unless `0 < train_fraction < 1`.
pub fn train_test_split<T: Clone>(items: &[T], train_fraction: f64) -> (Vec<T>, Vec<T>) {
    assert!(
        train_fraction > 0.0 && train_fraction < 1.0,
        "train fraction must be in (0, 1), got {train_fraction}"
    );
    let cut = ((items.len() as f64) * train_fraction).round() as usize;
    let cut = cut.min(items.len());
    (items[..cut].to_vec(), items[cut..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn dataset(level: SpatialLevel) -> MobilityDataset {
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 7).build(level)
    }

    #[test]
    fn encode_decode_round_trips() {
        let space = FeatureSpace::new(SpatialLevel::Building, 12);
        for (loc, entry, dur, dow) in [(0, 0, 0, 0), (11, 47, 23, 6), (5, 20, 10, 3)] {
            let x = space.encode(loc, entry, dur, dow);
            assert_eq!(space.decode(&x), (loc, entry, dur, dow));
            assert_eq!(x.iter().filter(|&&v| v != 0.0).count(), 4, "exactly four hot bits");
        }
    }

    #[test]
    fn feature_dim_matches_paper_layout() {
        let space = FeatureSpace::new(SpatialLevel::Building, 150);
        assert_eq!(space.dim(), 150 + 48 + 24 + 7);
    }

    #[test]
    fn triples_stay_within_one_day() {
        let ds = dataset(SpatialLevel::Building);
        for u in &ds.users {
            for t in &u.triples {
                assert_eq!(t[0].day, t[2].day);
                assert!(t[0].absolute_entry() <= t[1].absolute_entry());
            }
        }
    }

    #[test]
    fn samples_have_two_steps_and_valid_targets() {
        let ds = dataset(SpatialLevel::Building);
        let samples = ds.user_samples(0);
        assert!(!samples.is_empty());
        for s in &samples {
            assert_eq!(s.xs.len(), 2);
            assert_eq!(s.xs[0].len(), ds.space.dim());
            assert!(s.target < ds.n_locations());
        }
    }

    #[test]
    fn ap_level_has_larger_domain() {
        let b = dataset(SpatialLevel::Building);
        let a = dataset(SpatialLevel::Ap);
        assert!(a.n_locations() > b.n_locations());
        assert_eq!(a.n_locations(), b.n_locations() * 3, "tiny preset has 3 APs per building");
    }

    #[test]
    fn pooled_samples_concatenate_users() {
        let ds = dataset(SpatialLevel::Building);
        let pooled = ds.pooled_samples(0..3);
        let expect: usize = (0..3).map(|u| ds.users[u].triples.len()).sum();
        assert_eq!(pooled.len(), expect);
    }

    #[test]
    fn split_is_time_ordered() {
        let items: Vec<usize> = (0..10).collect();
        let (train, test) = train_test_split(&items, 0.8);
        assert_eq!(train, (0..8).collect::<Vec<_>>());
        assert_eq!(test, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        let _ = train_test_split(&[1, 2, 3], 1.5);
    }

    #[test]
    fn weeks_filter_shrinks_triples() {
        let ds = dataset(SpatialLevel::Building);
        let all = ds.users[0].triples.len();
        let one = ds.users[0].triples_within_weeks(1).len();
        assert!(one < all);
        assert!(one > 0);
    }
}

//! Trajectory extraction from raw WiFi events.
//!
//! Rebuilds per-device sessions from an AP event stream — the paper's
//! "well known methods for extracting device trajectories from WiFi logs"
//! (Trivedi et al., cited in §IV-A). The extractor handles the noise real
//! controller logs exhibit:
//!
//! * keep-alive reassociations while dwelling (merged into the open stay),
//! * missing disassociations (a stay is closed when the device shows up at
//!   a different AP, or after an idle timeout),
//! * short AP flaps (stays below a minimum dwell are discarded, matching
//!   the standard practice of filtering pass-by associations).

use serde::{Deserialize, Serialize};

use crate::campus::Campus;
use crate::events::{ApEvent, EventKind};
use crate::session::{Session, MINUTES_PER_DAY};

/// Extraction thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractConfig {
    /// Close an open stay if no event arrives for this many minutes.
    pub idle_timeout: u32,
    /// Discard stays shorter than this (pass-by associations).
    pub min_dwell: u32,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        Self { idle_timeout: 60, min_dwell: 5 }
    }
}

/// One open stay being assembled.
#[derive(Debug, Clone, Copy)]
struct OpenStay {
    ap: usize,
    start: u64,
    last_seen: u64,
}

/// Reconstructs one device's chronological sessions from its event stream.
///
/// `events` must belong to a single device and be timestamp-sorted (as
/// produced by [`crate::events::sessions_to_events`]). The campus maps APs
/// back to buildings.
///
/// # Panics
///
/// Panics if an event references an AP outside the campus.
pub fn extract_sessions(
    events: &[ApEvent],
    campus: &Campus,
    config: ExtractConfig,
) -> Vec<Session> {
    let mut sessions = Vec::new();
    let mut open: Option<OpenStay> = None;
    for e in events {
        let building = campus
            .building_of_ap(e.ap)
            .unwrap_or_else(|| panic!("event references unknown AP {}", e.ap));
        let _ = building;
        match (&mut open, e.kind) {
            (Some(stay), EventKind::Disassociation) if stay.ap == e.ap => {
                // Explicit end: trust the controller's timestamp.
                let closed = *stay;
                close(&mut sessions, closed, e.timestamp, campus, config, e.device);
                open = None;
            }
            (Some(stay), _) if stay.ap == e.ap => {
                // Same AP, device still alive: extend — unless the silence
                // exceeded the idle timeout, in which case the old stay
                // ended at its last sighting and a new one begins.
                if e.timestamp.saturating_sub(stay.last_seen) > config.idle_timeout as u64 {
                    let closed = *stay;
                    close(&mut sessions, closed, closed.last_seen, campus, config, e.device);
                    open = Some(OpenStay { ap: e.ap, start: e.timestamp, last_seen: e.timestamp });
                } else {
                    stay.last_seen = e.timestamp;
                }
            }
            (Some(stay), kind) => {
                // Device surfaced at a different AP: close the old stay at
                // its last sighting (handles missing disassociations).
                let closed = *stay;
                close(
                    &mut sessions,
                    closed,
                    closed.last_seen.max(closed.start),
                    campus,
                    config,
                    e.device,
                );
                open = match kind {
                    EventKind::Disassociation => None,
                    _ => Some(OpenStay { ap: e.ap, start: e.timestamp, last_seen: e.timestamp }),
                };
            }
            (None, EventKind::Association) | (None, EventKind::Reassociation) => {
                open = Some(OpenStay { ap: e.ap, start: e.timestamp, last_seen: e.timestamp });
            }
            (None, EventKind::Disassociation) => {
                // Orphan disassociation (trace started mid-stay); ignore.
            }
        }
    }
    if let Some(stay) = open {
        let device = events.last().map_or(0, |e| e.device);
        close(&mut sessions, stay, stay.last_seen, campus, config, device);
    }
    sessions
}

fn close(
    sessions: &mut Vec<Session>,
    stay: OpenStay,
    end: u64,
    campus: &Campus,
    config: ExtractConfig,
    device: usize,
) {
    let duration = end.saturating_sub(stay.start) as u32;
    if duration < config.min_dwell {
        return;
    }
    let day = (stay.start / MINUTES_PER_DAY as u64) as u32;
    let entry_minutes = (stay.start % MINUTES_PER_DAY as u64) as u32;
    let building = campus.building_of_ap(stay.ap).expect("validated in extract_sessions");
    sessions.push(Session {
        user: device,
        building,
        ap: stay.ap,
        day,
        entry_minutes,
        duration_minutes: duration,
    });
}

/// Extraction fidelity: how closely reconstructed sessions match ground
/// truth (used to validate the pipeline, and interesting in its own right
/// as the paper's preprocessing step).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractionReport {
    /// Ground-truth session count.
    pub truth: usize,
    /// Reconstructed session count.
    pub extracted: usize,
    /// Sessions whose (ap, day, entry slot) match a ground-truth session.
    pub matched: usize,
}

impl ExtractionReport {
    /// Fraction of ground-truth sessions recovered.
    pub fn recall(&self) -> f64 {
        if self.truth == 0 {
            return 1.0;
        }
        self.matched as f64 / self.truth as f64
    }
}

/// Compares reconstructed sessions against ground truth at the paper's
/// discretization granularity.
pub fn compare(truth: &[Session], extracted: &[Session]) -> ExtractionReport {
    let key = |s: &Session| (s.ap, s.day, s.entry_slot());
    let mut truth_keys: Vec<_> = truth.iter().map(key).collect();
    truth_keys.sort_unstable();
    let matched = extracted.iter().filter(|s| truth_keys.binary_search(&key(s)).is_ok()).count();
    ExtractionReport { truth: truth.len(), extracted: extracted.len(), matched }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{sessions_to_events, EventNoise};
    use crate::{CampusConfig, Scale, TraceGenerator};

    fn setup() -> (Campus, Vec<Session>) {
        let mut generator = TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 9);
        let trace = generator.user_trace(1);
        (generator.campus().clone(), trace.sessions)
    }

    #[test]
    fn clean_events_round_trip_exactly() {
        let (campus, truth) = setup();
        let events = sessions_to_events(&truth, EventNoise::none());
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        assert_eq!(extracted.len(), truth.len());
        for (t, e) in truth.iter().zip(&extracted) {
            assert_eq!(t.ap, e.ap);
            assert_eq!(t.day, e.day);
            assert_eq!(t.entry_minutes, e.entry_minutes);
            assert_eq!(t.duration_minutes, e.duration_minutes);
        }
    }

    #[test]
    fn noisy_events_recover_most_sessions() {
        let (campus, truth) = setup();
        let events = sessions_to_events(&truth, EventNoise::default());
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        let report = compare(&truth, &extracted);
        assert!(
            report.recall() > 0.9,
            "extraction should recover >90% of sessions, got {:.2} ({} of {})",
            report.recall(),
            report.matched,
            report.truth
        );
    }

    #[test]
    fn keepalives_extend_instead_of_splitting() {
        let (campus, _) = setup();
        let truth = vec![Session {
            user: 0,
            building: 0,
            ap: 0,
            day: 0,
            entry_minutes: 100,
            duration_minutes: 200,
        }];
        let noise = EventNoise { reassoc_interval: 30, drop_every_nth_disassoc: usize::MAX };
        let events = sessions_to_events(&truth, noise);
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        assert_eq!(extracted.len(), 1, "keep-alives must not split the stay");
        assert_eq!(extracted[0].duration_minutes, 200);
    }

    #[test]
    fn missing_disassociation_closes_at_next_ap() {
        let (campus, _) = setup();
        let truth = vec![
            Session {
                user: 0,
                building: 0,
                ap: 0,
                day: 0,
                entry_minutes: 60,
                duration_minutes: 50,
            },
            Session {
                user: 0,
                building: 0,
                ap: 1,
                day: 0,
                entry_minutes: 115,
                duration_minutes: 40,
            },
        ];
        let noise = EventNoise { reassoc_interval: 20, drop_every_nth_disassoc: 1 };
        // Every disassociation dropped; keep-alives keep last_seen fresh.
        let events = sessions_to_events(&truth, noise);
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        assert_eq!(extracted.len(), 2);
        assert_eq!(extracted[0].ap, 0);
        assert_eq!(extracted[1].ap, 1);
    }

    #[test]
    fn short_flaps_are_filtered() {
        let (campus, _) = setup();
        let truth = vec![Session {
            user: 0,
            building: 0,
            ap: 0,
            day: 0,
            entry_minutes: 60,
            duration_minutes: 2,
        }];
        let events = sessions_to_events(&truth, EventNoise::none());
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        assert!(extracted.is_empty(), "2-minute flap is below min dwell");
    }

    #[test]
    fn orphan_disassociation_is_ignored() {
        let (campus, _) = setup();
        let events =
            vec![ApEvent { device: 0, ap: 0, kind: EventKind::Disassociation, timestamp: 100 }];
        let extracted = extract_sessions(&events, &campus, ExtractConfig::default());
        assert!(extracted.is_empty());
    }
}

//! The campus trace generator.
//!
//! Produces per-user session trajectories that substitute for the paper's
//! proprietary WiFi syslog data. Sessions within a day are *nearly
//! contiguous* — consecutive sessions are separated only by short walking
//! gaps — which is exactly the cross-correlation the paper's time-based
//! inversion attack exploits ("we can assume that there exists
//! cross-correlation between consequent sequences and continuity", §III-B2).

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::campus::{Campus, CampusConfig};
use crate::session::{Session, DAYS_PER_WEEK, MINUTES_PER_DAY};
use crate::user::UserProfile;

/// Maximum walking gap between consecutive sessions, in minutes.
const MAX_TRAVEL_MINUTES: u32 = 10;

/// End of the generated day: users are back in their dorm by midnight.
const DAY_END_MINUTES: u32 = 23 * 60;

/// A user's complete trajectory plus the profile that generated it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserTrace {
    /// The behavioural profile.
    pub profile: UserProfile,
    /// Sessions in chronological order.
    pub sessions: Vec<Session>,
}

impl UserTrace {
    /// Number of distinct buildings visited — the paper's "degree of
    /// mobility" (Fig. 3b).
    pub fn distinct_buildings(&self) -> usize {
        let mut seen: Vec<usize> = self.sessions.iter().map(|s| s.building).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Sessions from the first `weeks` weeks only (Table IV's training-size
    /// sweep).
    pub fn first_weeks(&self, weeks: usize) -> Vec<Session> {
        let cutoff = (weeks * DAYS_PER_WEEK) as u32;
        self.sessions.iter().copied().filter(|s| s.day < cutoff).collect()
    }
}

/// Deterministic synthetic-trace generator for one campus.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    campus: Campus,
    seed: u64,
}

impl TraceGenerator {
    /// Creates a generator over the campus described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see [`CampusConfig::validate`]).
    pub fn new(config: CampusConfig, seed: u64) -> Self {
        Self { campus: Campus::new(config), seed }
    }

    /// The underlying campus topology.
    pub fn campus(&self) -> &Campus {
        &self.campus
    }

    /// Generates the full trace for one user, deterministic in
    /// `(seed, user_id)`.
    ///
    /// # Panics
    ///
    /// Panics if `user_id` exceeds the configured user count.
    pub fn user_trace(&mut self, user_id: usize) -> UserTrace {
        let config = self.campus.config().clone();
        assert!(user_id < config.users, "user {user_id} out of range for {} users", config.users);
        let profile = UserProfile::sample(user_id, &self.campus, self.seed);
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ 0xC0FF_EE00 ^ (user_id as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let mut sessions = Vec::new();
        let total_days = (config.weeks * DAYS_PER_WEEK) as u32;
        for day in 0..total_days {
            self.generate_day(&profile, day, &mut rng, &mut sessions);
        }
        UserTrace { profile, sessions }
    }

    /// Generates all users' traces.
    pub fn all_traces(&mut self) -> Vec<UserTrace> {
        (0..self.campus.config().users).map(|u| self.user_trace(u)).collect()
    }

    fn generate_day(
        &self,
        profile: &UserProfile,
        day: u32,
        rng: &mut StdRng,
        out: &mut Vec<Session>,
    ) {
        let weekday = (day as usize) % DAYS_PER_WEEK;
        let anchors: Vec<_> = profile.anchors_for(weekday).into_iter().copied().collect();

        let day_start = out.len();
        let wake = 7 * 60 + rng.random_range(0..120);
        // Morning dorm session, stretched later to meet the first anchor.
        let mut current = wake;
        self.push_session(profile, day, profile.home, current, 30, rng, out);

        for anchor in &anchors {
            // Stretch the previous session to fill the gap up to the anchor
            // (students linger where they are), keeping near-contiguity.
            let travel = rng.random_range(2..=MAX_TRAVEL_MINUTES);
            let prev = out.last_mut().expect("day always starts with a dorm session");
            let prev_end = prev.entry_minutes + prev.duration_minutes;
            if anchor.entry_minutes > prev_end + travel {
                prev.duration_minutes = anchor.entry_minutes - travel - prev.entry_minutes;
            }
            current = prev.entry_minutes + prev.duration_minutes + travel;
            if current >= DAY_END_MINUTES {
                break;
            }

            // Fidelity decision: follow the routine or deviate. Deviations
            // preferentially follow the user's errand chain from wherever
            // they are now, so the *previous* location shapes the next one.
            let here = out.last().expect("nonempty day").building;
            let building = if rng.random_range(0.0..1.0) < profile.routine_fidelity {
                anchor.building
            } else if rng.random_range(0.0..1.0) < 0.6 {
                profile.transitions[here]
            } else if !profile.haunts.is_empty() && rng.random_range(0.0..1.0) < 0.7 {
                profile.haunts[rng.random_range(0..profile.haunts.len())]
            } else {
                rng.random_range(0..self.campus.buildings().len())
            };
            let kind = self.campus.buildings()[building].kind;
            let duration = if building == anchor.building {
                let jitter = rng.random_range(0..=20);
                anchor.duration_minutes.saturating_add(jitter).max(15)
            } else {
                let (lo, hi) = kind.duration_range();
                rng.random_range(lo..=hi)
            };
            self.push_session(profile, day, building, current, duration, rng, out);

            // Habitual chained errand: after this visit, continue to the
            // personal successor of the visited building (first-order
            // Markov structure; see `UserProfile::transitions`).
            if rng.random_range(0.0..1.0) < profile.chain_prob {
                let prev_end = {
                    let prev = out.last().expect("just pushed");
                    prev.entry_minutes + prev.duration_minutes
                };
                let travel = rng.random_range(2..=MAX_TRAVEL_MINUTES);
                let entry = prev_end + travel;
                if entry < DAY_END_MINUTES {
                    let next = profile.transitions[building];
                    if next != building {
                        let (lo, hi) = self.campus.buildings()[next].kind.duration_range();
                        let duration = rng.random_range(lo..=hi);
                        self.push_session(profile, day, next, entry, duration, rng, out);
                    }
                }
            }
        }

        // Evening: return home until the day ends.
        let prev = out.last().expect("at least the morning session exists");
        let travel = rng.random_range(2..=MAX_TRAVEL_MINUTES);
        let mut entry = prev.entry_minutes + prev.duration_minutes + travel;
        if entry < DAY_END_MINUTES {
            if out[day_start..].last().map(|s| s.building) == Some(profile.home) {
                // Already home; extend instead of opening a zero-move session.
                let last = out.last_mut().expect("nonempty");
                last.duration_minutes = DAY_END_MINUTES.saturating_sub(last.entry_minutes);
            } else {
                entry = entry.min(MINUTES_PER_DAY - 1);
                let duration = DAY_END_MINUTES.saturating_sub(entry).max(30);
                self.push_session(profile, day, profile.home, entry, duration, rng, out);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_session(
        &self,
        profile: &UserProfile,
        day: u32,
        building: usize,
        entry: u32,
        duration: u32,
        rng: &mut StdRng,
        out: &mut Vec<Session>,
    ) {
        let entry = entry.min(MINUTES_PER_DAY - 1);
        let b = &self.campus.buildings()[building];
        // Mostly the preferred AP; sometimes a random one in the building.
        let ap = if rng.random_range(0.0..1.0) < 0.75 {
            b.ap_range.start + profile.ap_affinity[building] % b.ap_range.len()
        } else {
            b.ap_range.start + rng.random_range(0..b.ap_range.len())
        };
        out.push(Session {
            user: profile.id,
            building,
            ap,
            day,
            entry_minutes: entry,
            duration_minutes: duration.max(5),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn generator() -> TraceGenerator {
        TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 1234)
    }

    #[test]
    fn traces_are_deterministic() {
        let a = generator().user_trace(0);
        let b = generator().user_trace(0);
        assert_eq!(a, b);
    }

    #[test]
    fn sessions_are_chronological_and_within_day() {
        let trace = generator().user_trace(1);
        for pair in trace.sessions.windows(2) {
            assert!(pair[0].absolute_entry() <= pair[1].absolute_entry());
        }
        for s in &trace.sessions {
            assert!(s.entry_minutes < MINUTES_PER_DAY);
            assert!(s.duration_minutes >= 5);
        }
    }

    #[test]
    fn same_day_sessions_are_nearly_contiguous() {
        let trace = generator().user_trace(2);
        for pair in trace.sessions.windows(2) {
            if pair[0].day == pair[1].day {
                let end = pair[0].entry_minutes + pair[0].duration_minutes;
                let gap = pair[1].entry_minutes as i64 - end as i64;
                assert!(
                    (0..=MAX_TRAVEL_MINUTES as i64).contains(&gap),
                    "gap of {gap} minutes between contiguous sessions"
                );
            }
        }
    }

    #[test]
    fn day_starts_and_ends_at_home() {
        let trace = generator().user_trace(3);
        let home = trace.profile.home;
        let total_days = trace.sessions.iter().map(|s| s.day).max().unwrap() + 1;
        for day in 0..total_days {
            let day_sessions: Vec<_> = trace.sessions.iter().filter(|s| s.day == day).collect();
            assert!(!day_sessions.is_empty(), "every day has sessions");
            assert_eq!(day_sessions[0].building, home, "day {day} starts at home");
            assert_eq!(
                day_sessions.last().unwrap().building,
                home,
                "day {day} ends at home (the paper's dorm filter)"
            );
        }
    }

    #[test]
    fn most_time_is_spent_at_few_buildings() {
        // The paper: "users tend to spend a majority of their time at a
        // single location". Check the generator reproduces that skew.
        let trace = generator().user_trace(4);
        let mut per_building = std::collections::HashMap::new();
        let mut total = 0u64;
        for s in &trace.sessions {
            *per_building.entry(s.building).or_insert(0u64) += s.duration_minutes as u64;
            total += s.duration_minutes as u64;
        }
        let max = per_building.values().max().copied().unwrap_or(0);
        assert!(max as f64 / total as f64 > 0.35, "top building should dominate ({max}/{total})");
    }

    #[test]
    fn aps_belong_to_their_building() {
        let mut generator = generator();
        let campus_total = generator.campus().total_aps();
        let trace = generator.user_trace(5);
        for s in &trace.sessions {
            assert!(s.ap < campus_total);
            assert_eq!(generator.campus().building_of_ap(s.ap), Some(s.building));
        }
    }

    #[test]
    fn higher_fidelity_users_repeat_themselves_more() {
        // Correlation sanity for Fig. 3c: across users, routine fidelity
        // should track trajectory regularity. Compare extreme users.
        let mut generator = TraceGenerator::new(CampusConfig::for_scale(Scale::Small), 5);
        let traces = generator.all_traces();
        let mut lo_f: Option<&UserTrace> = None;
        let mut hi_f: Option<&UserTrace> = None;
        for t in &traces {
            if lo_f.is_none_or(|l| t.profile.routine_fidelity < l.profile.routine_fidelity) {
                lo_f = Some(t);
            }
            if hi_f.is_none_or(|h| t.profile.routine_fidelity > h.profile.routine_fidelity) {
                hi_f = Some(t);
            }
        }
        let regularity = |t: &UserTrace| {
            // Fraction of weekday sessions at the user's modal building for
            // that (weekday, entry-slot) cell.
            use std::collections::HashMap;
            let mut cells: HashMap<(usize, usize), HashMap<usize, usize>> = HashMap::new();
            for s in &t.sessions {
                *cells
                    .entry((s.day_of_week(), s.entry_slot()))
                    .or_default()
                    .entry(s.building)
                    .or_insert(0) += 1;
            }
            let (mut hits, mut total) = (0usize, 0usize);
            for counts in cells.values() {
                let max = counts.values().max().copied().unwrap_or(0);
                let sum: usize = counts.values().sum();
                hits += max;
                total += sum;
            }
            hits as f64 / total.max(1) as f64
        };
        assert!(
            regularity(hi_f.unwrap()) > regularity(lo_f.unwrap()),
            "clockwork user should be more regular"
        );
    }

    #[test]
    fn first_weeks_filters_by_day() {
        let trace = generator().user_trace(0);
        let one_week = trace.first_weeks(1);
        assert!(one_week.iter().all(|s| s.day < 7));
        assert!(one_week.len() < trace.sessions.len());
    }
}

//! Trajectory statistics used by the paper's analyses.
//!
//! Quantifies the properties the paper leans on: skewed stay-time
//! distributions ("users tend to spend a majority of their time at a
//! single location"), degree of mobility (Fig. 3b) and trajectory
//! regularity (the mechanism behind Fig. 3c's predictability axis).

use std::collections::HashMap;

use crate::session::Session;

/// Summary statistics of one user's trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total sessions.
    pub sessions: usize,
    /// Distinct buildings visited (the paper's degree of mobility).
    pub distinct_buildings: usize,
    /// Distinct APs visited.
    pub distinct_aps: usize,
    /// Fraction of total dwell time spent in the single most-visited
    /// building.
    pub top_building_share: f64,
    /// Shannon entropy (bits) of the building dwell-time distribution.
    pub location_entropy: f64,
    /// Fraction of sessions at the modal building for their
    /// `(weekday, entry slot)` cell — a regularity score in `[0, 1]`.
    pub regularity: f64,
    /// Mean session duration in minutes.
    pub mean_duration: f64,
}

/// Computes [`TraceStats`] for a session list.
///
/// Returns a zeroed summary for an empty trajectory.
pub fn trace_stats(sessions: &[Session]) -> TraceStats {
    if sessions.is_empty() {
        return TraceStats {
            sessions: 0,
            distinct_buildings: 0,
            distinct_aps: 0,
            top_building_share: 0.0,
            location_entropy: 0.0,
            regularity: 0.0,
            mean_duration: 0.0,
        };
    }
    let mut dwell: HashMap<usize, u64> = HashMap::new();
    let mut aps: Vec<usize> = Vec::new();
    let mut total_dwell = 0u64;
    let mut total_duration = 0u64;
    for s in sessions {
        *dwell.entry(s.building).or_insert(0) += s.duration_minutes as u64;
        total_dwell += s.duration_minutes as u64;
        total_duration += s.duration_minutes as u64;
        aps.push(s.ap);
    }
    aps.sort_unstable();
    aps.dedup();

    let top = dwell.values().max().copied().unwrap_or(0);
    let entropy = dwell
        .values()
        .map(|&d| {
            let p = d as f64 / total_dwell as f64;
            if p > 0.0 {
                -p * p.log2()
            } else {
                0.0
            }
        })
        .sum();

    let mut cells: HashMap<(usize, usize), HashMap<usize, usize>> = HashMap::new();
    for s in sessions {
        *cells
            .entry((s.day_of_week(), s.entry_slot()))
            .or_default()
            .entry(s.building)
            .or_insert(0) += 1;
    }
    let (mut modal_hits, mut cell_total) = (0usize, 0usize);
    for counts in cells.values() {
        modal_hits += counts.values().max().copied().unwrap_or(0);
        cell_total += counts.values().sum::<usize>();
    }

    TraceStats {
        sessions: sessions.len(),
        distinct_buildings: dwell.len(),
        distinct_aps: aps.len(),
        top_building_share: top as f64 / total_dwell as f64,
        location_entropy: entropy,
        regularity: modal_hits as f64 / cell_total.max(1) as f64,
        mean_duration: total_duration as f64 / sessions.len() as f64,
    }
}

/// Histogram of dwell time per building, descending — the "skew" view the
/// paper summarizes as "majority of time at a single location".
pub fn dwell_histogram(sessions: &[Session]) -> Vec<(usize, u64)> {
    let mut dwell: HashMap<usize, u64> = HashMap::new();
    for s in sessions {
        *dwell.entry(s.building).or_insert(0) += s.duration_minutes as u64;
    }
    let mut out: Vec<(usize, u64)> = dwell.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampusConfig, Scale, TraceGenerator};

    fn sessions() -> Vec<Session> {
        TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 77).user_trace(2).sessions
    }

    #[test]
    fn stats_are_internally_consistent() {
        let s = sessions();
        let stats = trace_stats(&s);
        assert_eq!(stats.sessions, s.len());
        assert!(stats.distinct_buildings >= 1);
        assert!(stats.distinct_aps >= stats.distinct_buildings / 2);
        assert!((0.0..=1.0).contains(&stats.top_building_share));
        assert!((0.0..=1.0).contains(&stats.regularity));
        assert!(stats.location_entropy >= 0.0);
        assert!(stats.mean_duration > 0.0);
    }

    #[test]
    fn generated_traces_are_skewed_like_the_paper() {
        let stats = trace_stats(&sessions());
        assert!(
            stats.top_building_share > 0.3,
            "dominant building should hold a big dwell share, got {}",
            stats.top_building_share
        );
    }

    #[test]
    fn entropy_bounds() {
        let s = sessions();
        let stats = trace_stats(&s);
        let max_entropy = (stats.distinct_buildings as f64).log2();
        assert!(stats.location_entropy <= max_entropy + 1e-9);
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let stats = trace_stats(&[]);
        assert_eq!(stats.sessions, 0);
        assert_eq!(stats.top_building_share, 0.0);
    }

    #[test]
    fn histogram_is_descending_and_complete() {
        let s = sessions();
        let hist = dwell_histogram(&s);
        for pair in hist.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        let total: u64 = hist.iter().map(|(_, d)| d).sum();
        let expect: u64 = s.iter().map(|x| x.duration_minutes as u64).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn single_session_has_zero_entropy() {
        let one = vec![Session {
            user: 0,
            building: 3,
            ap: 9,
            day: 0,
            entry_minutes: 60,
            duration_minutes: 45,
        }];
        let stats = trace_stats(&one);
        assert_eq!(stats.location_entropy, 0.0);
        assert_eq!(stats.top_building_share, 1.0);
        assert_eq!(stats.regularity, 1.0);
    }
}

//! Raw WiFi association events — the paper's actual data source.
//!
//! The paper's dataset is not sessions but **AP syslog events**: "each AP
//! event includes a timestamp, event type, MAC address of the device and
//! the AP" (§IV-A), from which trajectories are extracted "using well known
//! methods" (Trivedi et al.). This module models that raw layer: the
//! generator's ground-truth sessions are lowered into association /
//! disassociation event streams (with the noise real controllers exhibit —
//! repeated associations while dwelling, occasional missing
//! disassociations), and [`crate::extract`] rebuilds sessions from events
//! alone. Running the pipeline through this layer exercises the same
//! extraction path the paper relied on.

use serde::{Deserialize, Serialize};

use crate::session::{Session, MINUTES_PER_DAY};

/// Type of a WiFi controller event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Device associated with (connected to) an AP.
    Association,
    /// Device cleanly disassociated from an AP.
    Disassociation,
    /// Periodic keep-alive/re-association while dwelling at the same AP.
    Reassociation,
}

/// One WiFi syslog event.
///
/// The device identifier plays the role of the paper's (hashed) MAC
/// address; timestamps are minutes since the trace began.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApEvent {
    /// Hashed device/user identifier.
    pub device: usize,
    /// Global AP index.
    pub ap: usize,
    /// Event type.
    pub kind: EventKind,
    /// Absolute timestamp in minutes since trace start.
    pub timestamp: u64,
}

/// Options controlling how sessions are lowered into event streams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventNoise {
    /// Emit a keep-alive reassociation every this many minutes of dwell.
    pub reassoc_interval: u32,
    /// Every n-th session ends without a disassociation event (device
    /// sleeps, walks out of range); the extractor must infer the end.
    pub drop_every_nth_disassoc: usize,
}

impl Default for EventNoise {
    fn default() -> Self {
        Self { reassoc_interval: 45, drop_every_nth_disassoc: 7 }
    }
}

impl EventNoise {
    /// Noise-free lowering (every session gets a clean assoc/disassoc pair).
    pub fn none() -> Self {
        Self { reassoc_interval: u32::MAX, drop_every_nth_disassoc: usize::MAX }
    }
}

/// Lowers ground-truth sessions into a chronological AP event stream.
///
/// Sessions must belong to a single device/user trace (as produced by the
/// generator). The stream is sorted by timestamp and is deterministic.
pub fn sessions_to_events(sessions: &[Session], noise: EventNoise) -> Vec<ApEvent> {
    let mut events = Vec::with_capacity(sessions.len() * 2);
    for (i, s) in sessions.iter().enumerate() {
        let start = s.day as u64 * MINUTES_PER_DAY as u64 + s.entry_minutes as u64;
        let end = start + s.duration_minutes as u64;
        events.push(ApEvent {
            device: s.user,
            ap: s.ap,
            kind: EventKind::Association,
            timestamp: start,
        });
        // Keep-alives while dwelling.
        if noise.reassoc_interval != u32::MAX {
            let mut t = start + noise.reassoc_interval as u64;
            while t < end {
                events.push(ApEvent {
                    device: s.user,
                    ap: s.ap,
                    kind: EventKind::Reassociation,
                    timestamp: t,
                });
                t += noise.reassoc_interval as u64;
            }
        }
        let drop_disassoc = noise.drop_every_nth_disassoc != usize::MAX
            && (i + 1) % noise.drop_every_nth_disassoc == 0;
        if !drop_disassoc {
            events.push(ApEvent {
                device: s.user,
                ap: s.ap,
                kind: EventKind::Disassociation,
                timestamp: end,
            });
        }
    }
    events.sort_by_key(|e| (e.timestamp, e.ap, e.kind_order()));
    events
}

impl ApEvent {
    fn kind_order(&self) -> u8 {
        match self.kind {
            EventKind::Disassociation => 0,
            EventKind::Association => 1,
            EventKind::Reassociation => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(ap: usize, day: u32, entry: u32, dur: u32) -> Session {
        Session { user: 3, building: ap / 2, ap, day, entry_minutes: entry, duration_minutes: dur }
    }

    #[test]
    fn clean_lowering_pairs_assoc_disassoc() {
        let sessions = vec![session(0, 0, 60, 30), session(1, 0, 95, 40)];
        let events = sessions_to_events(&sessions, EventNoise::none());
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Association);
        assert_eq!(events[0].timestamp, 60);
        assert_eq!(events[1].kind, EventKind::Disassociation);
        assert_eq!(events[1].timestamp, 90);
    }

    #[test]
    fn keepalives_are_emitted_while_dwelling() {
        let sessions = vec![session(0, 0, 0, 100)];
        let noise = EventNoise { reassoc_interval: 30, drop_every_nth_disassoc: usize::MAX };
        let events = sessions_to_events(&sessions, noise);
        let keepalives = events.iter().filter(|e| e.kind == EventKind::Reassociation).count();
        assert_eq!(keepalives, 3, "at 30, 60, 90 minutes");
    }

    #[test]
    fn disassociations_can_be_dropped() {
        let sessions: Vec<Session> = (0..6).map(|i| session(0, 0, i * 100, 50)).collect();
        let noise = EventNoise { reassoc_interval: u32::MAX, drop_every_nth_disassoc: 3 };
        let events = sessions_to_events(&sessions, noise);
        let disassocs = events.iter().filter(|e| e.kind == EventKind::Disassociation).count();
        assert_eq!(disassocs, 4, "sessions 3 and 6 lose their disassociation");
    }

    #[test]
    fn stream_is_chronological() {
        let sessions = vec![session(2, 1, 30, 60), session(0, 0, 60, 30), session(1, 0, 95, 40)];
        let events = sessions_to_events(&sessions, EventNoise::default());
        for pair in events.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }
}

//! Per-user behavioural profiles.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::campus::{BuildingKind, Campus};

/// A weekly visit anchor: on `weekday`, aim to be at `building` around
/// `entry_minutes` for roughly `duration_minutes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Anchor {
    /// Day of week, 0 = Monday.
    pub weekday: usize,
    /// Target building.
    pub building: usize,
    /// Target entry time, minutes since midnight.
    pub entry_minutes: u32,
    /// Typical stay length in minutes.
    pub duration_minutes: u32,
}

/// A synthetic student's behavioural profile.
///
/// The two knobs the paper's Fig. 3 sweeps are explicit here:
///
/// * [`UserProfile::mobility_degree`] — how many distinct buildings the
///   user frequents (Fig. 3b's x-axis);
/// * [`UserProfile::routine_fidelity`] — the probability of following the
///   weekly routine instead of wandering, which directly controls how
///   predictable (and hence how accurately modellable) the user is
///   (Fig. 3c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User index.
    pub id: usize,
    /// Home dorm building.
    pub home: usize,
    /// Number of distinct non-home buildings the user frequents.
    pub mobility_degree: usize,
    /// Probability of following the routine at each decision point.
    pub routine_fidelity: f64,
    /// The user's frequented buildings (excluding home).
    pub haunts: Vec<usize>,
    /// Weekly class/meal/evening schedule.
    pub anchors: Vec<Anchor>,
    /// Preferred AP offsets (within a building's AP block); one user sticks
    /// to 1–2 physical spots per building.
    pub ap_affinity: Vec<usize>,
    /// First-order location habits: `transitions[b]` is where this user
    /// typically heads *after* building `b` (their personal errand chain).
    /// This is the sequential structure that makes `l_t` depend on
    /// `l_{t−1}` beyond what time-of-day explains — the dependence the
    /// paper's inversion attack exploits.
    pub transitions: Vec<usize>,
    /// Probability of appending a chained errand visit after an anchor.
    pub chain_prob: f64,
}

impl UserProfile {
    /// Samples a profile for user `id` on `campus`, deterministic in
    /// `(seed, id)`.
    pub fn sample(id: usize, campus: &Campus, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let dorms = campus.of_kind(BuildingKind::Dorm);
        let home = dorms[rng.random_range(0..dorms.len())];

        // Degree of mobility: most users visit a handful of buildings, a
        // tail visits many (Fig. 3b's 10–40 range at paper scale).
        let max_degree = (campus.buildings().len() - 1).clamp(3, 30);
        let mobility_degree = 3 + rng.random_range(0..=(max_degree - 3));

        // Predictability knob spans sloppy (0.70) to clockwork (0.97);
        // real campus mobility is dominated by routine (the paper's users
        // "tend to follow particular routines and habits").
        let routine_fidelity = 0.70 + rng.random_range(0.0..0.27);

        let academics = campus.of_kind(BuildingKind::Academic);
        let dinings = campus.of_kind(BuildingKind::Dining);
        let libraries = campus.of_kind(BuildingKind::Library);
        let gyms = campus.of_kind(BuildingKind::Gym);

        let mut haunts: Vec<usize> = Vec::new();
        let mut pools: Vec<&[usize]> = vec![&academics, &dinings, &libraries, &gyms];
        pools.retain(|p| !p.is_empty());
        while haunts.len() < mobility_degree {
            let pool = pools[rng.random_range(0..pools.len())];
            let pick = pool[rng.random_range(0..pool.len())];
            if pick != home && !haunts.contains(&pick) {
                haunts.push(pick);
            }
            // Small campuses can exhaust distinct buildings.
            let distinct_available: usize = pools.iter().map(|p| p.len()).sum();
            if haunts.len() >= distinct_available {
                break;
            }
        }

        // Weekly schedule: 2–4 class anchors per weekday from the user's
        // academic haunts, lunch at a fixed dining hall, and an evening
        // anchor (library or gym) on some days.
        // Class anchors draw from at most three academic buildings: even a
        // highly mobile student's *schedule* concentrates on a few rooms,
        // which keeps the hidden-location marginal skewed (the paper:
        // "users tend to spend a majority of their time at a single
        // location"). The remaining haunts appear through deviations and
        // errand chains.
        let my_academics: Vec<usize> =
            haunts.iter().copied().filter(|b| academics.contains(b)).take(4).collect();
        let my_dinings: Vec<usize> =
            haunts.iter().copied().filter(|b| dinings.contains(b)).take(2).collect();
        let my_evening: Vec<usize> =
            haunts.iter().copied().filter(|b| libraries.contains(b) || gyms.contains(b)).collect();

        let mut anchors = Vec::new();
        for weekday in 0..5 {
            let classes = if my_academics.is_empty() { 0 } else { 2 + rng.random_range(0..=2) };
            for slot in 0..classes {
                let building = my_academics[rng.random_range(0..my_academics.len())];
                let entry = 9 * 60 + slot as u32 * 2 * 60 + rng.random_range(0..30);
                anchors.push(Anchor {
                    weekday,
                    building,
                    entry_minutes: entry.min(23 * 60),
                    duration_minutes: 50 + rng.random_range(0..60),
                });
            }
            // Lunch alternates between the user's dining halls by weekday.
            if !my_dinings.is_empty() {
                let d = my_dinings[weekday % my_dinings.len()];
                anchors.push(Anchor {
                    weekday,
                    building: d,
                    entry_minutes: 12 * 60 + rng.random_range(0..45),
                    duration_minutes: 25 + rng.random_range(0..30),
                });
            }
            // Afternoon discretionary stop on some weekdays (gym, library).
            if !my_evening.is_empty() && rng.random_range(0.0..1.0) < 0.5 {
                let building = my_evening[rng.random_range(0..my_evening.len())];
                anchors.push(Anchor {
                    weekday,
                    building,
                    entry_minutes: 15 * 60 + rng.random_range(0..60),
                    duration_minutes: 40 + rng.random_range(0..50),
                });
            }
            if !my_evening.is_empty() && rng.random_range(0.0..1.0) < 0.6 {
                let building = my_evening[rng.random_range(0..my_evening.len())];
                anchors.push(Anchor {
                    weekday,
                    building,
                    entry_minutes: 18 * 60 + rng.random_range(0..90),
                    duration_minutes: 60 + rng.random_range(0..90),
                });
            }
        }
        // Weekend: dining plus an occasional haunt visit per day.
        for weekday in 5..7 {
            if !my_dinings.is_empty() {
                let d = my_dinings[weekday % my_dinings.len()];
                anchors.push(Anchor {
                    weekday,
                    building: d,
                    entry_minutes: 11 * 60 + rng.random_range(0..120),
                    duration_minutes: 30 + rng.random_range(0..40),
                });
            }
            if !haunts.is_empty() && rng.random_range(0.0..1.0) < 0.7 {
                let building = haunts[rng.random_range(0..haunts.len())];
                anchors.push(Anchor {
                    weekday,
                    building,
                    entry_minutes: 14 * 60 + rng.random_range(0..120),
                    duration_minutes: 45 + rng.random_range(0..60),
                });
            }
        }
        anchors.sort_by_key(|a| (a.weekday, a.entry_minutes));

        // AP affinity: a preferred offset within every building's AP block.
        let aps_per_building = campus.config().aps_per_building;
        let ap_affinity =
            (0..campus.buildings().len()).map(|_| rng.random_range(0..aps_per_building)).collect();

        // Personal errand chains: after building b this user habitually
        // continues to transitions[b] (a haunt or home). Distinct per user,
        // so the successor location identifies the predecessor — the
        // correlation the inversion attack reconstructs.
        let n_buildings = campus.buildings().len();
        let chain_pool: Vec<usize> = if haunts.is_empty() { vec![home] } else { haunts.clone() };
        let transitions = (0..n_buildings)
            .map(|b| {
                // Mostly chain into a haunt; occasionally back home.
                if rng.random_range(0.0..1.0) < 0.8 {
                    let mut pick = chain_pool[rng.random_range(0..chain_pool.len())];
                    if pick == b && chain_pool.len() > 1 {
                        pick = chain_pool[(chain_pool.iter().position(|&h| h == b).unwrap_or(0)
                            + 1)
                            % chain_pool.len()];
                    }
                    pick
                } else {
                    home
                }
            })
            .collect();
        let chain_prob = 0.35 + rng.random_range(0.0..0.35);

        Self {
            id,
            home,
            mobility_degree,
            routine_fidelity,
            haunts,
            anchors,
            ap_affinity,
            transitions,
            chain_prob,
        }
    }

    /// Anchors scheduled for a given weekday, in entry-time order.
    pub fn anchors_for(&self, weekday: usize) -> Vec<&Anchor> {
        self.anchors.iter().filter(|a| a.weekday == weekday).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampusConfig, Scale};

    fn campus() -> Campus {
        Campus::new(CampusConfig::for_scale(Scale::Small))
    }

    #[test]
    fn profiles_are_deterministic() {
        let c = campus();
        let a = UserProfile::sample(3, &c, 99);
        let b = UserProfile::sample(3, &c, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_users_differ() {
        let c = campus();
        let a = UserProfile::sample(0, &c, 99);
        let b = UserProfile::sample(1, &c, 99);
        assert_ne!(a, b, "distinct users should have distinct profiles");
    }

    #[test]
    fn home_is_a_dorm() {
        let c = campus();
        for id in 0..10 {
            let p = UserProfile::sample(id, &c, 7);
            assert!(c.of_kind(BuildingKind::Dorm).contains(&p.home));
        }
    }

    #[test]
    fn haunts_exclude_home_and_are_distinct() {
        let c = campus();
        for id in 0..10 {
            let p = UserProfile::sample(id, &c, 7);
            assert!(!p.haunts.contains(&p.home));
            let mut sorted = p.haunts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.haunts.len(), "haunts must be distinct");
        }
    }

    #[test]
    fn weekday_anchors_are_time_ordered() {
        let c = campus();
        let p = UserProfile::sample(2, &c, 7);
        for wd in 0..7 {
            let anchors = p.anchors_for(wd);
            for pair in anchors.windows(2) {
                assert!(pair[0].entry_minutes <= pair[1].entry_minutes);
            }
        }
    }

    #[test]
    fn fidelity_spans_a_meaningful_range() {
        let c = campus();
        let fids: Vec<f64> =
            (0..40).map(|id| UserProfile::sample(id, &c, 11).routine_fidelity).collect();
        let min = fids.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fids.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.78, "some less predictable users (min {min})");
        assert!(max > 0.88, "some clockwork users (max {max})");
        assert!(min >= 0.70, "routine dominates for everyone (min {min})");
    }
}

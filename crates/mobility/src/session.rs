//! WiFi sessions and the paper's discretization rules.
//!
//! A [`Session`] is one stay of one user at one location — the unit the
//! paper extracts from WiFi association logs. Discretization follows §IV-A
//! exactly: session-entry in 30-minute slots, session-duration in 10-minute
//! bins capped at 4 hours ("less than 10% of users spend more time in a
//! single building"), plus day-of-week.

use serde::{Deserialize, Serialize};

/// Minutes in a day.
pub const MINUTES_PER_DAY: u32 = 24 * 60;

/// Number of 30-minute session-entry slots per day.
pub const ENTRY_SLOTS: usize = 48;

/// Duration cap in minutes (4 hours, per §IV-A).
pub const DURATION_CAP_MINUTES: u32 = 240;

/// Number of 10-minute duration bins (`240 / 10`).
pub const DURATION_BINS: usize = (DURATION_CAP_MINUTES / 10) as usize;

/// Days per week.
pub const DAYS_PER_WEEK: usize = 7;

/// Discretizes an entry time (minutes since midnight) into a 30-minute slot.
///
/// # Panics
///
/// Panics if `minutes_since_midnight >= 1440`.
pub fn entry_slot(minutes_since_midnight: u32) -> usize {
    assert!(
        minutes_since_midnight < MINUTES_PER_DAY,
        "entry time {minutes_since_midnight} outside a day"
    );
    (minutes_since_midnight / 30) as usize
}

/// Discretizes a duration in minutes into a 10-minute bin, capping at 4 h.
///
/// Durations of zero fall into bin 0; anything ≥ 240 minutes lands in the
/// last bin.
pub fn duration_bin(minutes: u32) -> usize {
    let capped = minutes.min(DURATION_CAP_MINUTES.saturating_sub(1));
    (capped / 10) as usize
}

/// Inverse of [`entry_slot`]: the slot's starting minute.
pub fn slot_to_minutes(slot: usize) -> u32 {
    assert!(slot < ENTRY_SLOTS, "slot {slot} out of range");
    slot as u32 * 30
}

/// Inverse of [`duration_bin`]: the bin's midpoint duration in minutes.
pub fn bin_to_minutes(bin: usize) -> u32 {
    assert!(bin < DURATION_BINS, "duration bin {bin} out of range");
    bin as u32 * 10 + 5
}

/// One contiguous stay of a user at a location.
///
/// Times are kept in raw minutes so downstream code can both reproduce the
/// paper's discretization and exploit the continuity constraint
/// (`entry_next = entry + duration`) that powers the time-based inversion
/// attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Session {
    /// Index of the user this session belongs to.
    pub user: usize,
    /// Building index within the campus.
    pub building: usize,
    /// Access-point index within the campus (global, not per-building).
    pub ap: usize,
    /// Day index since the start of the trace (0-based).
    pub day: u32,
    /// Entry time in minutes since that day's midnight.
    pub entry_minutes: u32,
    /// Stay duration in minutes (uncapped; see [`duration_bin`]).
    pub duration_minutes: u32,
}

impl Session {
    /// The paper's 30-minute session-entry slot.
    pub fn entry_slot(&self) -> usize {
        entry_slot(self.entry_minutes)
    }

    /// The paper's 10-minute duration bin (capped at 4 h).
    pub fn duration_bin(&self) -> usize {
        duration_bin(self.duration_minutes)
    }

    /// Day of week, 0 = Monday (traces start on a Monday).
    pub fn day_of_week(&self) -> usize {
        (self.day as usize) % DAYS_PER_WEEK
    }

    /// Absolute entry time in minutes since the trace began.
    pub fn absolute_entry(&self) -> u64 {
        self.day as u64 * MINUTES_PER_DAY as u64 + self.entry_minutes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_slots_cover_the_day() {
        assert_eq!(entry_slot(0), 0);
        assert_eq!(entry_slot(29), 0);
        assert_eq!(entry_slot(30), 1);
        assert_eq!(entry_slot(MINUTES_PER_DAY - 1), ENTRY_SLOTS - 1);
    }

    #[test]
    #[should_panic(expected = "outside a day")]
    fn entry_slot_rejects_out_of_day() {
        entry_slot(MINUTES_PER_DAY);
    }

    #[test]
    fn duration_bins_cap_at_four_hours() {
        assert_eq!(duration_bin(0), 0);
        assert_eq!(duration_bin(9), 0);
        assert_eq!(duration_bin(10), 1);
        assert_eq!(duration_bin(239), DURATION_BINS - 1);
        assert_eq!(duration_bin(240), DURATION_BINS - 1, "cap applies");
        assert_eq!(duration_bin(10_000), DURATION_BINS - 1);
    }

    #[test]
    fn slot_round_trip_is_consistent() {
        for slot in 0..ENTRY_SLOTS {
            assert_eq!(entry_slot(slot_to_minutes(slot)), slot);
        }
        for bin in 0..DURATION_BINS {
            assert_eq!(duration_bin(bin_to_minutes(bin)), bin);
        }
    }

    #[test]
    fn day_of_week_wraps() {
        let mut s = Session {
            user: 0,
            building: 0,
            ap: 0,
            day: 0,
            entry_minutes: 60,
            duration_minutes: 30,
        };
        assert_eq!(s.day_of_week(), 0);
        s.day = 7;
        assert_eq!(s.day_of_week(), 0);
        s.day = 8;
        assert_eq!(s.day_of_week(), 1);
    }

    #[test]
    fn absolute_entry_orders_sessions() {
        let a = Session {
            user: 0,
            building: 0,
            ap: 0,
            day: 0,
            entry_minutes: 100,
            duration_minutes: 10,
        };
        let b =
            Session { user: 0, building: 1, ap: 1, day: 1, entry_minutes: 0, duration_minutes: 10 };
        assert!(a.absolute_entry() < b.absolute_entry());
    }
}

//! Campus topology: buildings, their roles, and access points.

use serde::{Deserialize, Serialize};

use crate::Scale;

/// Functional role of a building; drives visit patterns and stay durations
/// in the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BuildingKind {
    /// Residence hall — where a user's day starts and ends.
    Dorm,
    /// Lecture and lab buildings — weekday class anchors.
    Academic,
    /// Dining commons — meal-time visits.
    Dining,
    /// Library — long evening stays.
    Library,
    /// Recreation/gym — shorter discretionary visits.
    Gym,
}

impl BuildingKind {
    /// Typical stay duration range in minutes for this kind of building.
    pub fn duration_range(self) -> (u32, u32) {
        match self {
            BuildingKind::Dorm => (45, 240),
            BuildingKind::Academic => (50, 110),
            BuildingKind::Dining => (20, 60),
            BuildingKind::Library => (60, 180),
            BuildingKind::Gym => (30, 90),
        }
    }
}

/// One campus building with its attached access points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Building {
    /// Index within the campus.
    pub id: usize,
    /// Functional role.
    pub kind: BuildingKind,
    /// Global indices of this building's access points (contiguous).
    pub ap_range: std::ops::Range<usize>,
}

/// Parameters describing a campus to synthesize.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampusConfig {
    /// Total number of buildings.
    pub buildings: usize,
    /// Access points per building.
    pub aps_per_building: usize,
    /// Number of simulated users.
    pub users: usize,
    /// Trace length in weeks.
    pub weeks: usize,
}

impl CampusConfig {
    /// The preset topology for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Self { buildings: 12, aps_per_building: 3, users: 20, weeks: 2 },
            Scale::Small => Self { buildings: 40, aps_per_building: 8, users: 60, weeks: 8 },
            Scale::Paper => Self { buildings: 150, aps_per_building: 20, users: 300, weeks: 10 },
        }
    }

    /// Total number of access points.
    pub fn total_aps(&self) -> usize {
        self.buildings * self.aps_per_building
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if any field is implausible (too
    /// few buildings to assign roles, zero users, etc.).
    pub fn validate(&self) -> Result<(), String> {
        if self.buildings < 5 {
            return Err(format!("need at least 5 buildings for all roles, got {}", self.buildings));
        }
        if self.aps_per_building == 0 {
            return Err("each building needs at least one access point".into());
        }
        if self.users == 0 {
            return Err("need at least one user".into());
        }
        if self.weeks == 0 {
            return Err("need at least one week of trace".into());
        }
        Ok(())
    }
}

impl Default for CampusConfig {
    fn default() -> Self {
        Self::for_scale(Scale::Small)
    }
}

/// A fully-specified campus: buildings with roles and AP assignments.
///
/// Role mix loosely follows a residential campus: ~30% dorms, ~45%
/// academic, and the remainder dining, libraries and gyms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campus {
    config: CampusConfig,
    buildings: Vec<Building>,
}

impl Campus {
    /// Builds the campus described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.validate()` fails; call it first for a `Result`.
    pub fn new(config: CampusConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid campus config: {msg}");
        }
        let n = config.buildings;
        let mut buildings = Vec::with_capacity(n);
        for id in 0..n {
            // Deterministic role assignment by position: interleaves roles
            // so any contiguous subset of buildings still has all kinds.
            let kind = match id % 20 {
                0..=5 => BuildingKind::Dorm,
                6..=14 => BuildingKind::Academic,
                15 | 16 => BuildingKind::Dining,
                17 | 18 => BuildingKind::Library,
                _ => BuildingKind::Gym,
            };
            let ap_start = id * config.aps_per_building;
            buildings.push(Building {
                id,
                kind,
                ap_range: ap_start..ap_start + config.aps_per_building,
            });
        }
        Self { config, buildings }
    }

    /// The configuration this campus was built from.
    pub fn config(&self) -> &CampusConfig {
        &self.config
    }

    /// All buildings, indexed by id.
    pub fn buildings(&self) -> &[Building] {
        &self.buildings
    }

    /// Buildings of a given kind.
    pub fn of_kind(&self, kind: BuildingKind) -> Vec<usize> {
        self.buildings.iter().filter(|b| b.kind == kind).map(|b| b.id).collect()
    }

    /// The building that owns a global AP index, if valid.
    pub fn building_of_ap(&self, ap: usize) -> Option<usize> {
        if ap >= self.config.total_aps() {
            return None;
        }
        Some(ap / self.config.aps_per_building)
    }

    /// Total number of access points.
    pub fn total_aps(&self) -> usize {
        self.config.total_aps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_role_is_present_even_when_tiny() {
        let campus = Campus::new(CampusConfig::for_scale(Scale::Tiny));
        for kind in [
            BuildingKind::Dorm,
            BuildingKind::Academic,
            // Tiny (12 buildings) covers ids 0..12 → kinds for id%20 in 0..12:
            // dorms and academic only. Check the larger presets for the rest.
        ] {
            assert!(!campus.of_kind(kind).is_empty(), "missing {kind:?}");
        }
        let small = Campus::new(CampusConfig::for_scale(Scale::Small));
        for kind in [
            BuildingKind::Dorm,
            BuildingKind::Academic,
            BuildingKind::Dining,
            BuildingKind::Library,
            BuildingKind::Gym,
        ] {
            assert!(!small.of_kind(kind).is_empty(), "missing {kind:?}");
        }
    }

    #[test]
    fn ap_ranges_partition_the_ap_space() {
        let campus = Campus::new(CampusConfig::for_scale(Scale::Tiny));
        let mut covered = vec![false; campus.total_aps()];
        for b in campus.buildings() {
            for ap in b.ap_range.clone() {
                assert!(!covered[ap], "AP {ap} assigned twice");
                covered[ap] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn building_of_ap_inverts_assignment() {
        let campus = Campus::new(CampusConfig::for_scale(Scale::Tiny));
        for b in campus.buildings() {
            for ap in b.ap_range.clone() {
                assert_eq!(campus.building_of_ap(ap), Some(b.id));
            }
        }
        assert_eq!(campus.building_of_ap(campus.total_aps()), None);
    }

    #[test]
    fn paper_scale_matches_paper_population() {
        let c = CampusConfig::for_scale(Scale::Paper);
        assert_eq!(c.buildings, 150);
        assert_eq!(c.users, 300);
        assert!((c.total_aps() as i64 - 2956).abs() < 100, "close to the paper's 2956 APs");
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = CampusConfig::for_scale(Scale::Tiny);
        c.users = 0;
        assert!(c.validate().is_err());
        let mut c = CampusConfig::for_scale(Scale::Tiny);
        c.buildings = 2;
        assert!(c.validate().is_err());
        let mut c = CampusConfig::for_scale(Scale::Tiny);
        c.aps_per_building = 0;
        assert!(c.validate().is_err());
        let mut c = CampusConfig::for_scale(Scale::Tiny);
        c.weeks = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn duration_ranges_are_ordered() {
        for kind in [
            BuildingKind::Dorm,
            BuildingKind::Academic,
            BuildingKind::Dining,
            BuildingKind::Library,
            BuildingKind::Gym,
        ] {
            let (lo, hi) = kind.duration_range();
            assert!(lo < hi);
        }
    }
}

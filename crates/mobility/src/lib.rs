//! Synthetic campus mobility traces and the dataset pipeline.
//!
//! The Pelican paper evaluates on a proprietary campus-scale WiFi dataset
//! (156 buildings, 5104 access points, 300 users over Sep–Nov 2019). That
//! dataset cannot be redistributed, so this crate implements the closest
//! synthetic equivalent: a parameterized **campus simulator** that produces
//! per-user session trajectories with the statistical structure the paper's
//! results depend on —
//!
//! * routine-driven temporal correlation (class schedules, meals, dorms),
//! * heavily skewed stay-time distributions (most time in few buildings),
//! * per-user idiosyncrasy (personalized models beat a general model),
//! * controllable **degree of mobility** (how many distinct places a user
//!   visits — Fig. 3b) and **predictability** (how faithfully they follow
//!   their routine — Fig. 3c),
//! * a building→AP hierarchy for the two spatial scales of Fig. 3a.
//!
//! Sessions carry the paper's exact feature tuple: session-entry `e`
//! (discretized to 30-minute slots), session-duration `d` (10-minute bins,
//! capped at 4 hours), location `l` (building or AP) and day-of-week `w`
//! (§IV-A).
//!
//! # Example
//!
//! ```
//! use pelican_mobility::{CampusConfig, TraceGenerator, Scale};
//!
//! let config = CampusConfig::for_scale(Scale::Tiny);
//! let mut generator = TraceGenerator::new(config, 42);
//! let trace = generator.user_trace(0);
//! assert!(!trace.sessions.is_empty());
//! ```

pub mod campus;
pub mod dataset;
pub mod events;
pub mod extract;
pub mod generator;
pub mod session;
pub mod stats;
pub mod stream;
pub mod user;

pub use campus::{Building, BuildingKind, Campus, CampusConfig};
pub use dataset::{
    encode_session, train_test_split, DatasetBuilder, FeatureSpace, MobilityDataset, SpatialLevel,
    UserData,
};
pub use events::{sessions_to_events, ApEvent, EventKind, EventNoise};
pub use extract::{compare, extract_sessions, ExtractConfig, ExtractionReport};
pub use generator::{TraceGenerator, UserTrace};
pub use session::{
    duration_bin, entry_slot, Session, DURATION_BINS, DURATION_CAP_MINUTES, ENTRY_SLOTS,
    MINUTES_PER_DAY,
};
pub use stats::{dwell_histogram, trace_stats, TraceStats};
pub use stream::SessionCursor;
pub use user::UserProfile;

/// Problem-size presets.
///
/// | preset | buildings | APs/bldg | users | weeks |
/// |---|---|---|---|---|
/// | `Tiny` | 12 | 3 | 20 | 2 |
/// | `Small` | 40 | 8 | 60 | 8 |
/// | `Paper` | 150 | 20 | 300 | 10 |
///
/// `Paper` matches the paper's population (150 buildings with trajectories,
/// ~3000 APs vs the paper's 2956, 300 users); `Tiny` keeps unit tests fast;
/// `Small` is the default for examples and local runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal topology for unit tests.
    Tiny,
    /// Laptop-friendly default.
    Small,
    /// The paper's population sizes.
    Paper,
}

impl Scale {
    /// Parses a scale name (`tiny`, `small`, `paper`), case-insensitive.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_round_trips() {
        for s in [Scale::Tiny, Scale::Small, Scale::Paper] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("TINY"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("huge"), None);
    }
}

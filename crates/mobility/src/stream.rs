//! Event-stream resumption: devices keep emitting sessions after
//! enrollment, and a consumer picks the stream up exactly where it left
//! off.
//!
//! The one-shot pipeline reads a user's whole trace at once; the live
//! personalization loop cannot — a device's sessions arrive over
//! (virtual) time, and every consumer (the drift trigger, the warm-start
//! re-trainer, the query builder) wants "everything new since I last
//! looked". [`SessionCursor`] is that resumable read position: a cursor
//! over one user's chronologically ordered sessions that yields each
//! session exactly once, in order, no matter how the polling instants
//! are spaced. Two cursors driven to the same minute — in one jump or a
//! thousand small ones — have consumed exactly the same prefix, which is
//! what makes the downstream drift schedule a pure function of the
//! seeded trace.

use crate::generator::UserTrace;
use crate::session::Session;

/// A resumable read position in one user's session stream.
///
/// Sessions are ordered by [`Session::absolute_entry`] (minutes since
/// the trace epoch); the cursor hands out the sessions that became
/// visible since the previous poll.
#[derive(Debug, Clone)]
pub struct SessionCursor {
    sessions: Vec<Session>,
    pos: usize,
}

impl SessionCursor {
    /// Creates a cursor at the start of a session stream. The sessions
    /// are sorted by entry time (stable for equal times) so resumption
    /// order never depends on the caller's ordering.
    pub fn new(mut sessions: Vec<Session>) -> Self {
        sessions.sort_by_key(|s| s.absolute_entry());
        Self { sessions, pos: 0 }
    }

    /// Creates a cursor over a generated trace.
    pub fn from_trace(trace: &UserTrace) -> Self {
        Self::new(trace.sessions.clone())
    }

    /// Everything that entered the stream since the last poll, up to and
    /// including minute `minute`. Each session is yielded exactly once
    /// across the cursor's lifetime; polling with a non-increasing
    /// minute yields nothing.
    pub fn take_through(&mut self, minute: u64) -> &[Session] {
        let start = self.pos;
        while self.pos < self.sessions.len() && self.sessions[self.pos].absolute_entry() <= minute {
            self.pos += 1;
        }
        &self.sessions[start..self.pos]
    }

    /// Skips (without yielding) everything up to and including minute
    /// `minute` — resuming a device mid-stream, e.g. after its
    /// enrollment window was consumed by the one-shot pipeline.
    pub fn resume_after(&mut self, minute: u64) {
        let _ = self.take_through(minute);
    }

    /// Sessions already consumed (yielded or skipped), oldest first.
    pub fn consumed(&self) -> &[Session] {
        &self.sessions[..self.pos]
    }

    /// Sessions still ahead of the cursor.
    pub fn remaining(&self) -> usize {
        self.sessions.len() - self.pos
    }

    /// Whether the stream is exhausted.
    pub fn is_done(&self) -> bool {
        self.pos == self.sessions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campus::CampusConfig;
    use crate::generator::TraceGenerator;
    use crate::Scale;

    fn trace() -> UserTrace {
        TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 7).user_trace(3)
    }

    #[test]
    fn polling_cadence_does_not_change_what_is_consumed() {
        let trace = trace();
        let mut coarse = SessionCursor::from_trace(&trace);
        let mut fine = SessionCursor::from_trace(&trace);

        let horizon = trace.sessions.last().unwrap().absolute_entry();
        let jump: Vec<Session> = coarse.take_through(horizon).to_vec();
        let mut stepped = Vec::new();
        for minute in (0..=horizon).step_by(97) {
            stepped.extend_from_slice(fine.take_through(minute));
        }
        stepped.extend_from_slice(fine.take_through(horizon));

        assert_eq!(jump, stepped, "one jump and many small polls see the same stream");
        assert_eq!(jump.len(), trace.sessions.len());
        assert!(coarse.is_done() && fine.is_done());
    }

    #[test]
    fn each_session_is_yielded_exactly_once() {
        let trace = trace();
        let mut cursor = SessionCursor::from_trace(&trace);
        let horizon = trace.sessions.last().unwrap().absolute_entry();
        let first = cursor.take_through(horizon / 2).len();
        assert!(cursor.take_through(horizon / 2).is_empty(), "re-polling yields nothing");
        assert!(cursor.take_through(0).is_empty(), "time never runs backwards");
        let second = cursor.take_through(horizon).len();
        assert_eq!(first + second, trace.sessions.len());
        assert_eq!(cursor.consumed().len(), trace.sessions.len());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn resume_after_skips_the_enrollment_window() {
        let trace = trace();
        let cutoff = 7 * crate::session::MINUTES_PER_DAY as u64;
        let mut cursor = SessionCursor::from_trace(&trace);
        cursor.resume_after(cutoff);
        let before = cursor.consumed().len();
        assert_eq!(before, trace.sessions.iter().filter(|s| s.absolute_entry() <= cutoff).count());
        let rest = cursor.take_through(u64::MAX);
        assert!(rest.iter().all(|s| s.absolute_entry() > cutoff));
        assert_eq!(before + rest.len(), trace.sessions.len());
    }

    #[test]
    fn unsorted_input_is_normalized() {
        let trace = trace();
        let mut reversed: Vec<Session> = trace.sessions.clone();
        reversed.reverse();
        let mut a = SessionCursor::new(reversed);
        let mut b = SessionCursor::from_trace(&trace);
        assert_eq!(a.take_through(u64::MAX), b.take_through(u64::MAX));
    }
}

//! End-to-end fleet serving against a real (tiny) scenario: the harness
//! must be deterministic, lossless, and must serve unenrolled users a
//! valid general-model answer instead of an error.

use pelican::platform::ComputeTier;
use pelican::workbench::Scenario;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_serve::{
    run_fleet, CloudNetwork, FleetConfig, RegistryConfig, SchedulerConfig, TrafficConfig,
};

fn scenario() -> Scenario {
    Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(19).personal_users(3).build()
}

fn config(requests: usize) -> FleetConfig {
    FleetConfig {
        registry: RegistryConfig { shards: 4, hot_capacity: 2 },
        scheduler: SchedulerConfig { max_batch: 8, max_delay_us: 1_500 },
        traffic: TrafficConfig { requests, seed: 5, ..TrafficConfig::default() },
        tier: ComputeTier::Cloud,
        unenrolled_clients: 3,
        queries_per_user: 8,
        ..FleetConfig::default()
    }
}

#[test]
fn fleet_run_is_deterministic_and_lossless() {
    let s = scenario();
    let a = run_fleet(&s, &config(600)).expect("fleet runs");
    let b = run_fleet(&s, &config(600)).expect("fleet runs");

    assert_eq!(a.report.requests, 600, "every generated request is served");
    assert_eq!(a.report.requests, b.report.requests);
    assert_eq!(a.report.batches, b.report.batches);
    assert_eq!(a.report.batch_histogram, b.report.batch_histogram);
    assert_eq!(
        (a.report.p50_us, a.report.p95_us, a.report.p99_us),
        (b.report.p50_us, b.report.p95_us, b.report.p99_us),
        "simulated latency must be a pure function of the seeds"
    );
    assert_eq!(a.stats, b.stats);
}

#[test]
fn fleet_exercises_cache_and_fallback_paths() {
    let s = scenario();
    let outcome = run_fleet(&s, &config(800)).expect("fleet runs");
    let stats = outcome.stats;

    assert!(stats.hits > 0, "Zipf-skewed traffic must re-hit hot models");
    assert!(stats.misses > 0, "cold decodes happen on first touch");
    assert!(stats.fallbacks > 0, "unenrolled clients are served by the general model");
    assert!(stats.hit_rate() > 0.5, "hot traffic should mostly hit: {stats:?}");
    assert!(outcome.report.fallback_share > 0.0 && outcome.report.fallback_share < 1.0);
    assert_eq!(stats.cold_models, 3, "all personalization users stay enrolled");
    assert!(outcome.report.throughput_qps > 0.0);
    assert!(outcome.report.p50_us <= outcome.report.p95_us);
    assert!(outcome.report.p95_us <= outcome.report.p99_us);
}

#[test]
fn coalescing_forms_real_batches_under_load() {
    let s = scenario();
    // Dense arrivals: mean gap far below the flush deadline, so buffers
    // fill to max_batch instead of timing out.
    let mut cfg = config(1_000);
    cfg.traffic.mean_interarrival_us = 20.0;
    let outcome = run_fleet(&s, &cfg).expect("fleet runs");
    assert!(
        outcome.report.mean_batch > 2.0,
        "dense traffic must coalesce (mean batch {})",
        outcome.report.mean_batch
    );
    let max_size = outcome.report.batch_histogram.iter().map(|&(s, _)| s).max().unwrap_or(0);
    assert_eq!(max_size, 8, "full batches dispatch at max_batch");
}

#[test]
fn cloud_deployment_pays_rtt_deterministically() {
    let s = scenario();
    let cloud = |seed| FleetConfig {
        cloud: Some(CloudNetwork { seed, ..CloudNetwork::default() }),
        ..config(400)
    };
    let on_device = run_fleet(&s, &config(400)).expect("fleet runs");
    let a = run_fleet(&s, &cloud(11)).expect("fleet runs");
    let b = run_fleet(&s, &cloud(11)).expect("fleet runs");

    assert!(on_device.network.is_none());
    let (net_a, net_b) = (a.network.expect("cloud path"), b.network.expect("cloud path"));
    assert_eq!(net_a, net_b, "round trips are a pure function of the seeds");
    assert_eq!(net_a.requests, 400, "no timeouts configured, nothing drops");
    assert_eq!(net_a.dropped, 0);

    // The round trip strictly dominates cloud-side serving latency: it
    // adds two transfers (uplink + shared egress) around the compute.
    assert!(net_a.rtt_p95_us > a.report.p95_us);
    assert!(net_a.rtt_p50_us <= net_a.rtt_p95_us && net_a.rtt_p95_us <= net_a.rtt_p99_us);
    // Bursty arrivals on a shared egress must actually queue.
    assert!(net_a.egress_wait_p95_us > 0, "shared egress must see contention");

    // A different fleet seed deals different links and changes the trace.
    let c = run_fleet(&s, &cloud(12)).expect("fleet runs");
    assert_ne!(net_a.fingerprint, c.network.expect("cloud path").fingerprint);
}

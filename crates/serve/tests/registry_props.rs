//! Property test: registry LRU and version invariants under arbitrary
//! enroll/get/publish interleavings.
//!
//! The training pipeline hot-swaps envelopes into the registry while the
//! serving path reads it, so two invariants must hold for *every*
//! interleaving, not just the ones the unit tests happen to exercise:
//! the bounded hot caches never exceed their capacity, and a lookup
//! always observes the user's highest published version (stale hot
//! copies must never outlive a publication).

use std::collections::HashMap;

use proptest::prelude::*;

use pelican_nn::SequenceModel;
use pelican_serve::{Lookup, RegistryConfig, ShardedRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(seed: u64) -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(seed);
    SequenceModel::single_lstm(3, 4, 3, 0.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lru_stays_bounded_and_gets_observe_the_latest_version(
        shards in 1usize..4,
        hot_capacity in 1usize..3,
        ops in prop::collection::vec((0u8..2, 0usize..12), 1..60),
    ) {
        let registry = ShardedRegistry::new(model(0), RegistryConfig { shards, hot_capacity });
        let probe = vec![vec![0.2f32; 3]; 2];
        // user -> (version, expected answer of the latest published model)
        let mut published: HashMap<usize, (u64, Vec<f32>)> = HashMap::new();
        let mut last_version = 0u64;

        for (step, &(op, uid)) in ops.iter().enumerate() {
            match op {
                // Publish: a fresh model for `uid`, distinct per step.
                0 => {
                    let m = model(1 + step as u64);
                    let version = registry.enroll(uid, &m);
                    prop_assert!(version > last_version, "versions are strictly monotone");
                    last_version = version;
                    published.insert(uid, (version, m.predict_proba(&probe)));
                }
                // Get: must serve the latest published version (or the
                // general fallback for never-published users).
                _ => {
                    let (served, lookup) = registry.get(uid).expect("envelopes decode");
                    match published.get(&uid) {
                        Some((version, expected)) => {
                            prop_assert_ne!(lookup, Lookup::Fallback);
                            prop_assert_eq!(registry.version_of(uid), Some(*version));
                            prop_assert_eq!(&served.predict_proba(&probe), expected,
                                "get must observe the highest published version");
                        }
                        None => {
                            prop_assert_eq!(lookup, Lookup::Fallback);
                            prop_assert_eq!(registry.version_of(uid), None);
                        }
                    }
                }
            }

            let stats = registry.stats();
            prop_assert!(stats.hot_models <= shards * hot_capacity,
                "hot cache exceeded capacity: {} > {} * {}",
                stats.hot_models, shards, hot_capacity);
            prop_assert_eq!(stats.cold_models, published.len());
            prop_assert_eq!(stats.publishes, last_version);
        }
    }
}

//! Concurrent publication torture test for the durable registry.
//!
//! N writer threads hot-swap models (and roll users back) while M
//! reader threads serve lookups through the same `&ShardedRegistry`.
//! Three invariants must hold under every interleaving:
//!
//! 1. **Monotone versions** — a user's observed version never goes
//!    backwards (rollback included: it re-publishes under a *new*
//!    version).
//! 2. **No mixed envelopes** — every served model answers bit-identically
//!    to exactly one published model; a lookup can never observe half
//!    old, half new weights, because the envelope swap and hot-copy drop
//!    happen under one shard lock.
//! 3. **Durability** — after the dust settles, a restart over the same
//!    backend serves each user's final version.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pelican_nn::SequenceModel;
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USERS: usize = 6;
const MODELS: usize = 5;
const WRITERS: u64 = 3;
const READERS: u64 = 4;
const ROUNDS: usize = 40;

fn model(seed: u64) -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(seed);
    SequenceModel::single_lstm(3, 4, 3, 0.0, &mut rng)
}

#[test]
fn writers_readers_and_rollbacks_interleave_safely() {
    let disk = MemBackend::new();
    let store = EnvelopeStore::open(
        Arc::new(disk.clone()),
        StoreConfig { shards: 4, ..StoreConfig::default() },
    )
    .unwrap();
    let registry = ShardedRegistry::with_store(
        model(0),
        RegistryConfig { shards: 4, hot_capacity: 3 },
        Arc::new(store),
    );

    // The closed world of publishable models and their exact answers:
    // any served output must match one of these bit for bit.
    let probe = vec![vec![0.3f32; 3]; 2];
    let models: Vec<SequenceModel> = (0..MODELS as u64).map(|k| model(100 + k)).collect();
    let fallback_answer = registry.general().predict_proba(&probe);
    let answers: Vec<Vec<f32>> = models.iter().map(|m| m.predict_proba(&probe)).collect();

    let torn_reads = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Writers: each hammers every user with publications; every
        // few rounds, roll the user back to an earlier retained version.
        for w in 0..WRITERS {
            let registry = &registry;
            let models = &models;
            s.spawn(move || {
                let mut my_versions: Vec<u64> = Vec::new();
                let mut mine_per_user: Vec<Vec<u64>> = vec![Vec::new(); USERS];
                for round in 0..ROUNDS {
                    let user = (w as usize + round) % USERS;
                    let m = &models[(w as usize * ROUNDS + round) % MODELS];
                    let v = registry.enroll(user, m);
                    my_versions.push(v);
                    mine_per_user[user].push(v);
                    if round % 7 == 6 && mine_per_user[user].len() > 1 {
                        // Roll back to this thread's first publication
                        // for the user — a genuinely old version.
                        let target = mine_per_user[user][0];
                        let new_v = registry
                            .rollback(user, target)
                            .expect("earlier publication is retained");
                        assert!(new_v > v, "rollback publishes forward");
                        mine_per_user[user].push(new_v);
                    }
                }
                // This thread's own publications were strictly monotone.
                assert!(my_versions.windows(2).all(|w| w[1] > w[0]));
            });
        }

        // Readers: every served answer must be exactly one published
        // model's answer (or the fallback before a user's first
        // publication), and per-user versions never regress.
        for r in 0..READERS {
            let registry = &registry;
            let answers = &answers;
            let fallback_answer = &fallback_answer;
            let probe = &probe;
            let torn_reads = &torn_reads;
            s.spawn(move || {
                let mut floor = [0u64; USERS];
                for i in 0..ROUNDS * 4 {
                    let user = (r as usize + i) % USERS;
                    let (served, _) = registry.get(user).expect("envelopes decode");
                    let out = served.predict_proba(probe);
                    let intact = out == *fallback_answer || answers.contains(&out);
                    if !intact {
                        torn_reads.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(v) = registry.version_of(user) {
                        assert!(
                            v >= floor[user],
                            "user {user} version regressed: {v} < {}",
                            floor[user]
                        );
                        floor[user] = v;
                    }
                }
            });
        }
    });
    assert_eq!(torn_reads.load(Ordering::Relaxed), 0, "a read observed mixed weights");

    // Everything the writers acknowledged is on "disk": a restarted
    // registry serves each user's final version, answer-identical.
    let final_answers: Vec<Vec<f32>> =
        (0..USERS).map(|u| registry.get(u).unwrap().0.predict_proba(&probe)).collect();
    let final_versions: Vec<Option<u64>> = (0..USERS).map(|u| registry.version_of(u)).collect();
    let stats = registry.stats();
    assert_eq!(stats.publishes, stats.history_total(), "every publication is retained");
    drop(registry);

    let store =
        EnvelopeStore::open(Arc::new(disk), StoreConfig { shards: 4, ..StoreConfig::default() })
            .unwrap();
    assert_eq!(store.recovery().torn_segments, 0);
    let reborn = ShardedRegistry::with_store(
        model(0),
        RegistryConfig { shards: 4, hot_capacity: 3 },
        Arc::new(store),
    );
    for u in 0..USERS {
        assert_eq!(reborn.version_of(u), final_versions[u], "user {u} version survived");
        assert_eq!(
            reborn.get(u).unwrap().0.predict_proba(&probe),
            final_answers[u],
            "user {u} weights survived the restart"
        );
    }
}

//! Property tests pinning the offline scheduler's semantics ahead of the
//! sim-driven path: `coalesce` must be a pure function of the request
//! *set* — its first move is normalizing to `(arrival, id)` order, so no
//! permutation of the input vector may change a single batch — and no
//! request may ever be duplicated or dropped.

use proptest::prelude::*;

use pelican_serve::{BatchScheduler, Request, SchedulerConfig};
use pelican_sim::mix64;

fn requests(arrivals: &[(usize, u64)]) -> Vec<Request> {
    arrivals
        .iter()
        .enumerate()
        .map(|(id, &(user_id, arrival_us))| Request {
            id,
            user_id,
            arrival_us,
            xs: vec![vec![0.1; 2]; 1],
        })
        .collect()
}

/// Seeded Fisher-Yates so the permutation is a pure function of `seed`.
fn permute<T>(xs: &mut [T], seed: u64) {
    for i in (1..xs.len()).rev() {
        let j = (mix64(seed ^ (i as u64) << 17) % (i as u64 + 1)) as usize;
        xs.swap(i, j);
    }
}

/// A batch's identity: shard, dispatch time and member ids in order.
fn compositions(
    scheduler: &BatchScheduler,
    requests: Vec<Request>,
) -> Vec<(usize, u64, Vec<usize>)> {
    scheduler
        .coalesce(requests)
        .into_iter()
        .map(|b| (b.shard, b.dispatched_us, b.requests.iter().map(|r| r.id).collect()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coalesce_is_invariant_under_input_permutation(
        arrivals in prop::collection::vec((0usize..7, 0u64..50_000), 1..80),
        max_batch in 1usize..6,
        max_delay_us in 0u64..3_000,
        shards in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let scheduler = BatchScheduler::new(SchedulerConfig { max_batch, max_delay_us }, shards);
        let ordered = requests(&arrivals);
        let mut shuffled = ordered.clone();
        permute(&mut shuffled, seed);
        prop_assert_eq!(
            compositions(&scheduler, ordered),
            compositions(&scheduler, shuffled),
            "coalesce must not depend on input vector order"
        );
    }

    #[test]
    fn coalesce_is_lossless_and_respects_both_limits(
        arrivals in prop::collection::vec((0usize..9, 0u64..50_000), 1..80),
        max_batch in 1usize..6,
        max_delay_us in 0u64..3_000,
        shards in 1usize..4,
    ) {
        let scheduler = BatchScheduler::new(SchedulerConfig { max_batch, max_delay_us }, shards);
        let batches = scheduler.coalesce(requests(&arrivals));
        let mut seen: Vec<usize> = Vec::new();
        for batch in &batches {
            prop_assert!(!batch.requests.is_empty(), "empty batches never dispatch");
            prop_assert!(batch.requests.len() <= max_batch);
            for r in &batch.requests {
                prop_assert_eq!(r.user_id % shards, batch.shard, "batches stay shard-local");
                // A batch dispatches no later than its oldest member's
                // deadline and no earlier than its newest member's arrival.
                prop_assert!(batch.dispatched_us >= r.arrival_us);
                prop_assert!(
                    batch.dispatched_us <= batch.requests[0].arrival_us + max_delay_us,
                    "the oldest member's deadline caps the dispatch time"
                );
                seen.push(r.id);
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..arrivals.len()).collect::<Vec<_>>());
    }
}

//! Request coalescing and fused batch execution.
//!
//! The scheduler turns an open-loop arrival stream into shard-local
//! batches: requests for the same registry shard accumulate until either
//! `max_batch` requests are waiting or the oldest has waited `max_delay`,
//! the classic throughput/latency trade of batched serving. The engine
//! then executes a batch by grouping its requests per user model and
//! driving each group through the fused
//! [`SequenceModel::predict_proba_batch`] path, attributing the simulated
//! compute to a [`ComputeTier`].
//!
//! [`SequenceModel::predict_proba_batch`]: pelican_nn::SequenceModel::predict_proba_batch

use std::collections::HashMap;

use pelican::platform::{measure, ComputeTier};
use pelican_nn::{ModelCodecError, Sequence, Step};

use crate::registry::{Lookup, ShardedRegistry};

/// One query waiting to be served.
#[derive(Debug, Clone)]
pub struct Request {
    /// Stable request id (assigned by the harness, unique per run).
    pub id: usize,
    /// The user whose model should answer.
    pub user_id: usize,
    /// Arrival time in simulated microseconds.
    pub arrival_us: u64,
    /// The query sequence.
    pub xs: Sequence,
}

/// Coalescing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Flush a shard's buffer as soon as it holds this many requests.
    /// Must be positive ([`BatchScheduler::new`] panics on zero — an
    /// empty batch could never dispatch).
    pub max_batch: usize,
    /// Flush a shard's buffer once its oldest request has waited this many
    /// simulated microseconds.
    ///
    /// `0` is accepted and degenerates to **one batch per arrival**: a
    /// request's deadline expires the instant it is buffered, so the
    /// next event to look at the shard (a later arrival or end of
    /// stream) flushes it as a singleton. Batching is effectively
    /// disabled — `max_batch` can never fill — which makes `0` the
    /// latency-over-throughput extreme rather than an error.
    pub max_delay_us: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self { max_batch: 16, max_delay_us: 2_000 }
    }
}

/// A shard-local batch ready for fused execution.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Registry shard every request in the batch maps to.
    pub shard: usize,
    /// Simulated time the batch was sealed and handed to the engine.
    pub dispatched_us: u64,
    /// The coalesced requests, in arrival order.
    pub requests: Vec<Request>,
}

/// Deterministic size/deadline batcher over shard-local buffers.
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    config: SchedulerConfig,
    n_shards: usize,
}

impl BatchScheduler {
    /// Creates a scheduler for a registry with `n_shards` shards (use
    /// [`ShardedRegistry::shard_count`] so batches stay shard-local).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` or `config.max_batch` is zero.
    pub fn new(config: SchedulerConfig, n_shards: usize) -> Self {
        assert!(n_shards > 0, "scheduler needs at least one shard");
        assert!(config.max_batch > 0, "max_batch must be positive");
        Self { config, n_shards }
    }

    /// Coalesces an arrival-ordered request stream into dispatch-ordered
    /// batches. Every request appears in exactly one batch; a batch is
    /// dispatched either the moment it fills (`max_batch`) or when its
    /// oldest request's deadline (`arrival + max_delay`) expires.
    pub fn coalesce(&self, mut requests: Vec<Request>) -> Vec<Batch> {
        requests.sort_by_key(|r| (r.arrival_us, r.id));
        let mut buffers: Vec<Vec<Request>> = vec![Vec::new(); self.n_shards];
        let mut deadlines: Vec<u64> = vec![u64::MAX; self.n_shards];
        let mut batches: Vec<Batch> = Vec::new();

        for request in requests {
            let now = request.arrival_us;
            self.flush_expired(&mut buffers, &mut deadlines, now, &mut batches);
            let shard = request.user_id % self.n_shards;
            if buffers[shard].is_empty() {
                deadlines[shard] = now.saturating_add(self.config.max_delay_us);
            }
            buffers[shard].push(request);
            if buffers[shard].len() >= self.config.max_batch {
                batches.push(Batch {
                    shard,
                    dispatched_us: now,
                    requests: std::mem::take(&mut buffers[shard]),
                });
                deadlines[shard] = u64::MAX;
            }
        }
        self.flush_expired(&mut buffers, &mut deadlines, u64::MAX, &mut batches);
        batches
    }

    /// Dispatches every buffered batch whose deadline has passed, in
    /// deterministic (deadline, shard) order.
    fn flush_expired(
        &self,
        buffers: &mut [Vec<Request>],
        deadlines: &mut [u64],
        now: u64,
        batches: &mut Vec<Batch>,
    ) {
        let mut due: Vec<(u64, usize)> = deadlines
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != u64::MAX && d <= now)
            .map(|(shard, &d)| (d, shard))
            .collect();
        due.sort_unstable();
        for (deadline, shard) in due {
            batches.push(Batch {
                shard,
                dispatched_us: deadline,
                requests: std::mem::take(&mut buffers[shard]),
            });
            deadlines[shard] = u64::MAX;
        }
    }
}

/// A served request: its answer plus everything needed for latency and
/// cache accounting.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The originating request id.
    pub request_id: usize,
    /// The user whose model answered.
    pub user_id: usize,
    /// When the request arrived (simulated µs).
    pub arrival_us: u64,
    /// When its batch was dispatched (simulated µs).
    pub dispatched_us: u64,
    /// Simulated µs the sealed batch waited for its shard's compute
    /// resource after dispatch, mirroring the sim's
    /// [`pelican_sim::StageReport`] queue/service split. Zero on the
    /// offline [`BatchScheduler::coalesce`] path, where shard compute is
    /// assumed idle; the sim-driven scheduler fills in real queueing
    /// (back-to-back batches occupy the shard and cannot overlap).
    pub queue_us: u64,
    /// Simulated compute time of the whole fused batch, in µs — the
    /// batch completes together, so every member pays the same service.
    pub service_us: u64,
    /// How the registry found the answering model.
    pub lookup: Lookup,
    /// The confidence vector, bit-identical to an unbatched query.
    pub probs: Step,
}

impl Completion {
    /// When the request's fused batch finished computing (µs):
    /// dispatch + shard queueing + fused service.
    pub fn finish_us(&self) -> u64 {
        self.dispatched_us + self.queue_us + self.service_us
    }
}

/// Executes batches against a registry on a simulated compute tier.
///
/// The engine only needs `&ShardedRegistry`: registry bookkeeping is
/// interior-mutable, so many engines (and the training pipeline's
/// publisher) can share one registry concurrently.
#[derive(Debug)]
pub struct ServeEngine<'a> {
    registry: &'a ShardedRegistry,
    tier: ComputeTier,
}

impl<'a> ServeEngine<'a> {
    /// Creates an engine over the registry, attributing compute to `tier`.
    pub fn new(registry: &'a ShardedRegistry, tier: ComputeTier) -> Self {
        Self { registry, tier }
    }

    /// Runs one batch: requests are grouped by the *model* that will
    /// answer them (per enrolled user, first-appearance order, with every
    /// unenrolled user's request folded into one shared general-model
    /// group), each group is answered through its model's fused batch
    /// path, and the measured FLOPs are converted to simulated time on
    /// the engine's tier. Completions come back in request order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] if a stored envelope fails to decode.
    pub fn execute(&self, batch: &Batch) -> Result<Vec<Completion>, ModelCodecError> {
        // Grouping key: Some(user) for enrolled users, None for the shared
        // fallback — distinct unenrolled users all resolve to the same
        // general model, so their requests fuse into one batch row set.
        let mut group_of: HashMap<Option<usize>, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, request) in batch.requests.iter().enumerate() {
            let key = self.registry.is_enrolled(request.user_id).then_some(request.user_id);
            match group_of.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    group_of.insert(key, groups.len());
                    groups.push((request.user_id, vec![i]));
                }
            }
        }

        let registry = self.registry;
        let (answered, usage) = measure(self.tier, || {
            let mut answered: Vec<(usize, Step, Lookup)> = Vec::with_capacity(batch.requests.len());
            for (user_id, members) in &groups {
                let (model, lookup) = match registry.get(*user_id) {
                    Ok(found) => found,
                    Err(e) => return Err(e),
                };
                let rows: Vec<&[Step]> =
                    members.iter().map(|&i| batch.requests[i].xs.as_slice()).collect();
                let probs = model.predict_proba_batch(&rows);
                for (&i, p) in members.iter().zip(probs) {
                    answered.push((i, p, lookup));
                }
            }
            Ok(answered)
        });
        let mut answered = answered?;
        answered.sort_by_key(|&(i, _, _)| i);

        Ok(answered
            .into_iter()
            .map(|(i, probs, lookup)| {
                let request = &batch.requests[i];
                Completion {
                    request_id: request.id,
                    user_id: request.user_id,
                    arrival_us: request.arrival_us,
                    dispatched_us: batch.dispatched_us,
                    queue_us: 0,
                    // Ceil to whole µs (the sim clock's granularity) so
                    // nonzero work always occupies the shard.
                    service_us: (usage.simulated.as_nanos() as u64).div_ceil(1_000),
                    lookup,
                    probs,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn request(id: usize, user_id: usize, arrival_us: u64) -> Request {
        Request { id, user_id, arrival_us, xs: vec![vec![0.1; 4]; 2] }
    }

    fn scheduler(max_batch: usize, max_delay_us: u64) -> BatchScheduler {
        BatchScheduler::new(SchedulerConfig { max_batch, max_delay_us }, 2)
    }

    #[test]
    fn full_buffers_dispatch_immediately() {
        let s = scheduler(2, 1_000_000);
        let batches = s.coalesce(vec![request(0, 0, 10), request(1, 2, 20), request(2, 4, 30)]);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].dispatched_us, 20, "filled at the second arrival");
        assert_eq!(batches[0].requests.len(), 2);
        assert_eq!(batches[1].requests.len(), 1, "leftover flushes at its deadline");
    }

    #[test]
    fn deadlines_bound_waiting() {
        let s = scheduler(100, 50);
        let batches = s.coalesce(vec![request(0, 0, 0), request(1, 0, 500)]);
        assert_eq!(batches.len(), 2, "50µs deadline splits arrivals 500µs apart");
        assert_eq!(batches[0].dispatched_us, 50);
        assert_eq!(batches[1].dispatched_us, 550);
    }

    #[test]
    fn late_flushes_still_report_the_deadline_as_dispatch_time() {
        // A deadline-expired buffer is only *noticed* at the next event
        // (a much-later arrival, or end of stream), but the batch must
        // report the deadline itself — that is when a real clock would
        // have sealed it, and the sim-driven scheduler pins exactly this.
        let s = scheduler(100, 50);
        // Flushed by a much-later arrival on the other shard.
        let batches = s.coalesce(vec![request(0, 0, 10), request(1, 1, 9_000)]);
        assert_eq!(batches[0].dispatched_us, 60, "not 9000: the deadline sealed it");
        // Flushed by end of stream.
        let batches = s.coalesce(vec![request(0, 0, 10)]);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].dispatched_us, 60, "end-of-stream flush reports the deadline");
    }

    #[test]
    fn zero_max_delay_degenerates_to_one_batch_per_arrival() {
        // max_delay_us == 0 is legal: every request's deadline expires on
        // arrival, so each flushes as a singleton and max_batch never
        // fills — batching disabled, not a panic.
        let s = scheduler(16, 0);
        let batches = s.coalesce(vec![request(0, 0, 5), request(1, 0, 5), request(2, 0, 40)]);
        assert_eq!(batches.len(), 3, "one batch per arrival, even for simultaneous ones");
        for (batch, (id, at)) in batches.iter().zip([(0, 5), (1, 5), (2, 40)]) {
            assert_eq!(batch.requests.len(), 1);
            assert_eq!(batch.requests[0].id, id);
            assert_eq!(batch.dispatched_us, at, "deadline == arrival when max_delay is 0");
        }
    }

    #[test]
    fn batches_are_shard_local_and_lossless() {
        let s = scheduler(4, 100);
        let requests: Vec<Request> = (0..20).map(|i| request(i, i % 5, (i as u64) * 10)).collect();
        let batches = s.coalesce(requests);
        let mut seen: Vec<usize> = Vec::new();
        for batch in &batches {
            for r in &batch.requests {
                assert_eq!(r.user_id % 2, batch.shard);
                seen.push(r.id);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>(), "every request served exactly once");
    }

    #[test]
    fn engine_answers_match_unbatched_queries() {
        let mut rng = StdRng::seed_from_u64(5);
        let general = pelican_nn::SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng);
        let personalized = pelican_nn::SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng);
        let registry =
            ShardedRegistry::new(general.clone(), RegistryConfig { shards: 2, hot_capacity: 4 });
        registry.enroll(2, &personalized);

        let mut requests: Vec<Request> = (0..6).map(|i| request(i, 2, i as u64)).collect();
        requests.push(request(6, 8, 3)); // unenrolled, same shard -> fallback
        requests.push(request(7, 10, 4)); // second distinct unenrolled user
        let batch = Batch { shard: 0, dispatched_us: 10, requests };

        let engine = ServeEngine::new(&registry, ComputeTier::Cloud);
        let completions = engine.execute(&batch).expect("envelopes decode");
        assert_eq!(completions.len(), 8);
        for c in &completions {
            let expected = if c.user_id == 2 { &personalized } else { &general };
            assert_eq!(
                c.probs,
                expected.predict_proba(&batch.requests[c.request_id].xs),
                "fused answers must be bit-identical to unbatched ones"
            );
            assert!(c.service_us > 0);
            assert_eq!(c.queue_us, 0, "offline execution assumes an idle shard");
            assert_eq!(c.finish_us(), c.dispatched_us + c.service_us);
        }
        assert_eq!(completions[6].lookup, Lookup::Fallback);
        assert_eq!(completions[7].lookup, Lookup::Fallback);
        // Distinct unenrolled users share the general model, so the whole
        // fallback group costs a single registry lookup.
        assert_eq!(registry.stats().fallbacks, 1, "fallback rows fuse into one group");
    }
}

//! End-to-end fleet harness: enroll a scenario, synthesize traffic,
//! coalesce, execute, report.
//!
//! This is the piece the `fleet_serve` example, the `serve-report`
//! experiment and the serving benchmarks all drive: one deterministic
//! function from (scenario, knobs) to a [`ServeReport`].

use pelican::platform::ComputeTier;
use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_nn::{ModelCodecError, Sequence};

use crate::metrics::{MetricsSink, ServeReport};
use crate::registry::{RegistryConfig, RegistryStats, ShardedRegistry};
use crate::scheduler::{BatchScheduler, Request, SchedulerConfig, ServeEngine};
use crate::traffic::{TrafficConfig, TrafficGenerator};

/// Everything a fleet run needs besides the scenario.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Registry sharding and hot-cache sizing.
    pub registry: RegistryConfig,
    /// Batch coalescing knobs.
    pub scheduler: SchedulerConfig,
    /// Traffic shape. `users` is overridden with the harness's client
    /// pool size.
    pub traffic: TrafficConfig,
    /// Tier fused batches are costed on.
    pub tier: ComputeTier,
    /// Privacy layer installed on every personalized model at enrollment.
    pub privacy: Option<PrivacyLayer>,
    /// How many contributor (unenrolled) users join the client pool and
    /// exercise the general-model fallback.
    pub unenrolled_clients: usize,
    /// Distinct query sequences cached per client (cycled round-robin).
    pub queries_per_user: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            registry: RegistryConfig::default(),
            scheduler: SchedulerConfig::default(),
            traffic: TrafficConfig::default(),
            tier: ComputeTier::Cloud,
            privacy: Some(PrivacyLayer::default()),
            unenrolled_clients: 4,
            queries_per_user: 32,
        }
    }
}

/// Result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Throughput / latency / batching / cache report.
    pub report: ServeReport,
    /// Final registry counters (also embedded in the report).
    pub stats: RegistryStats,
}

/// Runs a full serving experiment against a scenario's population.
///
/// The client pool is the scenario's personalization users (most popular
/// first, matching the Zipf head) plus `unenrolled_clients` contributors
/// who never uploaded a model and therefore hit the general fallback.
/// Each client's queries are real held-out sequences from the dataset,
/// cycled deterministically. Identical inputs yield identical reports.
///
/// # Errors
///
/// Returns [`ModelCodecError`] if a stored envelope fails to decode
/// (impossible for envelopes the registry itself encoded).
pub fn run_fleet(
    scenario: &Scenario,
    config: &FleetConfig,
) -> Result<FleetOutcome, ModelCodecError> {
    let registry = ShardedRegistry::new(scenario.general.clone(), config.registry);
    registry.enroll_scenario(scenario, config.privacy);

    // Client pool: personalized users first (Zipf head), then unenrolled
    // contributors exercising the fallback path.
    let mut pool: Vec<usize> = scenario.personal.iter().map(|u| u.user_id).collect();
    pool.extend((0..scenario.first_personal_user).take(config.unenrolled_clients));

    let queries_per_user = config.queries_per_user.max(1);
    let query_pool: Vec<Vec<Sequence>> = pool
        .iter()
        .map(|&uid| {
            scenario
                .dataset
                .user_samples(uid)
                .into_iter()
                .take(queries_per_user)
                .map(|sample| sample.xs)
                .collect()
        })
        .collect();
    // Keep only clients that have at least one recorded session to query
    // with (everyone, in practice, but guard tiny scenarios).
    let (pool, query_pool): (Vec<usize>, Vec<Vec<Sequence>>) =
        pool.into_iter().zip(query_pool).filter(|(_, queries)| !queries.is_empty()).unzip();
    assert!(!pool.is_empty(), "fleet needs at least one client with data");

    let mut traffic = config.traffic;
    traffic.users = pool.len();
    let mut cursors = vec![0usize; pool.len()];
    let requests: Vec<Request> = TrafficGenerator::new(traffic)
        .enumerate()
        .map(|(id, arrival)| {
            let queries = &query_pool[arrival.user_index];
            let xs = queries[cursors[arrival.user_index] % queries.len()].clone();
            cursors[arrival.user_index] += 1;
            Request { id, user_id: pool[arrival.user_index], arrival_us: arrival.at_us, xs }
        })
        .collect();

    let scheduler = BatchScheduler::new(config.scheduler, registry.shard_count());
    let batches = scheduler.coalesce(requests);
    let engine = ServeEngine::new(&registry, config.tier);
    let mut sink = MetricsSink::default();
    for batch in &batches {
        let completions = engine.execute(batch)?;
        sink.record(batch, &completions);
    }
    let stats = registry.stats();
    Ok(FleetOutcome { report: sink.report(config.tier, stats), stats })
}

//! End-to-end fleet harness: enroll a scenario, synthesize traffic,
//! coalesce, execute, report.
//!
//! This is the piece the `fleet_serve` example, the `serve-report`
//! experiment and the serving benchmarks all drive: one deterministic
//! function from (scenario, knobs) to a [`ServeReport`].
//!
//! With [`FleetConfig::cloud`] set, queries additionally pay the
//! device↔cloud network through the [`pelican_sim`] discrete-event
//! simulator: each query's payload crosses its client's own (seeded,
//! heterogeneous) uplink before it can be batched, and the response
//! queues on one shared, contended cloud egress link on the way back.
//! The round-trip summary lands in [`FleetOutcome::network`].

use std::collections::HashMap;

use pelican::platform::ComputeTier;
use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_nn::{ModelCodecError, Sequence};
use pelican_sim::{
    Discipline, JobSpec, JobStatus, LinkMix, LinkProfile, LinkSpec, Simulator, Stage,
    TransferPolicy,
};
use pelican_tensor::nearest_rank;

use crate::metrics::{MetricsSink, ServeReport};
use crate::registry::{RegistryConfig, RegistryStats, ShardedRegistry};
use crate::scheduler::{BatchScheduler, Completion, Request, SchedulerConfig, ServeEngine};
use crate::traffic::{TrafficConfig, TrafficGenerator};

/// Everything a fleet run needs besides the scenario.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Registry sharding and hot-cache sizing.
    pub registry: RegistryConfig,
    /// Batch coalescing knobs.
    pub scheduler: SchedulerConfig,
    /// Traffic shape. `users` is overridden with the harness's client
    /// pool size.
    pub traffic: TrafficConfig,
    /// Tier fused batches are costed on.
    pub tier: ComputeTier,
    /// Privacy layer installed on every personalized model at enrollment.
    pub privacy: Option<PrivacyLayer>,
    /// How many contributor (unenrolled) users join the client pool and
    /// exercise the general-model fallback.
    pub unenrolled_clients: usize,
    /// Distinct query sequences cached per client (cycled round-robin).
    pub queries_per_user: usize,
    /// Cloud-deployment network path. `None` serves on-device (queries
    /// pay no network); `Some` routes every round trip through the
    /// discrete-event simulator.
    pub cloud: Option<CloudNetwork>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            registry: RegistryConfig::default(),
            scheduler: SchedulerConfig::default(),
            traffic: TrafficConfig::default(),
            tier: ComputeTier::Cloud,
            privacy: Some(PrivacyLayer::default()),
            unenrolled_clients: 4,
            queries_per_user: 32,
            cloud: None,
        }
    }
}

/// Network shape of cloud-deployed serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudNetwork {
    /// Per-client uplink assignment (wifi/WAN/cellular mix, stragglers).
    pub mix: LinkMix,
    /// The shared cloud egress link every response queues on.
    pub egress: LinkProfile,
    /// How contending responses share the egress link.
    pub egress_discipline: Discipline,
    /// Query payload size in bytes.
    pub query_bytes: u64,
    /// Response payload size in bytes.
    pub response_bytes: u64,
    /// Timeout/retry policy of query uplink transfers (a timed-out query
    /// is dropped before reaching the cloud).
    pub uplink_policy: TransferPolicy,
    /// Fleet seed for link assignment.
    pub seed: u64,
}

impl Default for CloudNetwork {
    /// Campus client mix, one fair-share WAN egress, 2 kB queries and
    /// 1 kB responses, no timeouts.
    fn default() -> Self {
        Self {
            mix: LinkMix::campus(),
            egress: LinkProfile::wan(),
            egress_discipline: Discipline::FairShare,
            query_bytes: 2_048,
            response_bytes: 1_024,
            uplink_policy: TransferPolicy::default(),
            seed: 0xC10D,
        }
    }
}

/// Round-trip summary of cloud-deployed serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloudRtt {
    /// Queries that completed the full round trip.
    pub requests: usize,
    /// Queries dropped on the uplink (timeout retries exhausted).
    pub dropped: usize,
    /// Median end-to-end latency: client send → response delivered (µs).
    pub rtt_p50_us: u64,
    /// 95th-percentile end-to-end latency (µs).
    pub rtt_p95_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub rtt_p99_us: u64,
    /// 95th-percentile contention wait on client uplinks (µs).
    pub uplink_wait_p95_us: u64,
    /// 95th-percentile contention wait on the shared egress (µs).
    pub egress_wait_p95_us: u64,
    /// Combined determinism fingerprint of both network phases.
    pub fingerprint: u64,
}

/// Result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Throughput / latency / batching / cache report (cloud-side: its
    /// latencies start when the query reaches the cloud).
    pub report: ServeReport,
    /// Final registry counters (also embedded in the report).
    pub stats: RegistryStats,
    /// End-to-end round-trip summary when serving through
    /// [`FleetConfig::cloud`]; `None` for on-device serving.
    pub network: Option<CloudRtt>,
}

/// Runs a full serving experiment against a scenario's population.
///
/// The client pool is the scenario's personalization users (most popular
/// first, matching the Zipf head) plus `unenrolled_clients` contributors
/// who never uploaded a model and therefore hit the general fallback.
/// Each client's queries are real held-out sequences from the dataset,
/// cycled deterministically. Identical inputs yield identical reports.
///
/// # Errors
///
/// Returns [`ModelCodecError`] if a stored envelope fails to decode
/// (impossible for envelopes the registry itself encoded).
pub fn run_fleet(
    scenario: &Scenario,
    config: &FleetConfig,
) -> Result<FleetOutcome, ModelCodecError> {
    let registry = ShardedRegistry::new(scenario.general.clone(), config.registry);
    registry.enroll_scenario(scenario, config.privacy);

    // Client pool: personalized users first (Zipf head), then unenrolled
    // contributors exercising the fallback path.
    let mut pool: Vec<usize> = scenario.personal.iter().map(|u| u.user_id).collect();
    pool.extend((0..scenario.first_personal_user).take(config.unenrolled_clients));

    let queries_per_user = config.queries_per_user.max(1);
    let query_pool: Vec<Vec<Sequence>> = pool
        .iter()
        .map(|&uid| {
            scenario
                .dataset
                .user_samples(uid)
                .into_iter()
                .take(queries_per_user)
                .map(|sample| sample.xs)
                .collect()
        })
        .collect();
    // Keep only clients that have at least one recorded session to query
    // with (everyone, in practice, but guard tiny scenarios).
    let (pool, query_pool): (Vec<usize>, Vec<Vec<Sequence>>) =
        pool.into_iter().zip(query_pool).filter(|(_, queries)| !queries.is_empty()).unzip();
    assert!(!pool.is_empty(), "fleet needs at least one client with data");

    let mut traffic = config.traffic;
    traffic.users = pool.len();
    let mut cursors = vec![0usize; pool.len()];
    let mut requests: Vec<Request> = TrafficGenerator::new(traffic)
        .enumerate()
        .map(|(id, arrival)| {
            let queries = &query_pool[arrival.user_index];
            let xs = queries[cursors[arrival.user_index] % queries.len()].clone();
            cursors[arrival.user_index] += 1;
            Request { id, user_id: pool[arrival.user_index], arrival_us: arrival.at_us, xs }
        })
        .collect();

    // Cloud deployment: queries cross their client's uplink before they
    // can be batched. The sim rewrites each request's arrival to its
    // cloud-ingress time and drops queries whose uplink retries ran out.
    let mut uplink_phase = None;
    if let Some(cloud) = &config.cloud {
        let slot_of: HashMap<usize, usize> =
            pool.iter().enumerate().map(|(slot, &uid)| (uid, slot)).collect();
        let links: Vec<LinkSpec> = pool
            .iter()
            .map(|&uid| LinkSpec::fair(cloud.mix.assign(cloud.seed, uid as u64).profile))
            .collect();
        let specs: Vec<JobSpec> = requests
            .iter()
            .map(|r| JobSpec {
                id: r.id as u64,
                release_us: r.arrival_us,
                stages: vec![Stage::Transfer {
                    label: "uplink",
                    link: slot_of[&r.user_id],
                    bytes: cloud.query_bytes,
                    policy: cloud.uplink_policy,
                }],
            })
            .collect();
        let up = Simulator::new(links).run(&specs);
        let original_arrivals: Vec<u64> = requests.iter().map(|r| r.arrival_us).collect();
        requests = requests
            .into_iter()
            .zip(&up.jobs)
            .filter_map(|(mut r, job)| {
                (job.status == JobStatus::Completed).then(|| {
                    r.arrival_us = job.end_us;
                    r
                })
            })
            .collect();
        uplink_phase = Some((up, original_arrivals));
    }

    let scheduler = BatchScheduler::new(config.scheduler, registry.shard_count());
    let batches = scheduler.coalesce(requests);
    let engine = ServeEngine::new(&registry, config.tier);
    let mut sink = MetricsSink::default();
    let mut completions: Vec<Completion> = Vec::new();
    for batch in &batches {
        let batch_completions = engine.execute(batch)?;
        sink.record(batch, &batch_completions);
        if config.cloud.is_some() {
            completions.extend(batch_completions);
        }
    }

    // Cloud deployment, return path: every response queues on the shared
    // egress link; the round trip ends when the last byte lands.
    let network = match (&config.cloud, uplink_phase) {
        (Some(cloud), Some((up, original_arrivals))) => {
            let egress = Simulator::new(vec![LinkSpec {
                profile: cloud.egress,
                discipline: cloud.egress_discipline,
            }]);
            completions.sort_by_key(|c| c.request_id);
            let specs: Vec<JobSpec> = completions
                .iter()
                .map(|c| JobSpec {
                    id: c.request_id as u64,
                    release_us: c.dispatched_us + c.compute.as_micros() as u64,
                    stages: vec![Stage::Transfer {
                        label: "response",
                        link: 0,
                        bytes: cloud.response_bytes,
                        policy: TransferPolicy::default(),
                    }],
                })
                .collect();
            let down = egress.run(&specs);
            let mut rtts: Vec<u64> = down
                .jobs
                .iter()
                .map(|job| job.end_us - original_arrivals[job.id as usize])
                .collect();
            rtts.sort_unstable();
            let wait_p95 = |outcome: &pelican_sim::SimOutcome, label| {
                pelican_sim::stage_stats(outcome, label).wait_p95_us
            };
            Some(CloudRtt {
                requests: rtts.len(),
                dropped: up.timed_out(),
                rtt_p50_us: nearest_rank(&rtts, 0.50).unwrap_or(0),
                rtt_p95_us: nearest_rank(&rtts, 0.95).unwrap_or(0),
                rtt_p99_us: nearest_rank(&rtts, 0.99).unwrap_or(0),
                uplink_wait_p95_us: wait_p95(&up, "uplink"),
                egress_wait_p95_us: wait_p95(&down, "response"),
                fingerprint: up.fingerprint() ^ down.fingerprint().rotate_left(1),
            })
        }
        _ => None,
    };

    let stats = registry.stats();
    Ok(FleetOutcome { report: sink.report(config.tier, stats), stats, network })
}

//! End-to-end fleet harness: enroll a scenario, synthesize traffic,
//! coalesce, execute, report.
//!
//! This is the piece the `fleet_serve` example, the `serve-report`
//! experiment and the serving benchmarks all drive: one deterministic
//! function from (scenario, knobs) to a [`ServeReport`].
//!
//! With [`FleetConfig::cloud`] set, the whole serving tier runs on the
//! [`pelican_sim`] virtual clock through
//! [`crate::simserve::simulate_serving`]: each query crosses its
//! client's own (seeded, heterogeneous) uplink before it can be batched,
//! shard buffers seal on sim timer events, fused batches occupy their
//! shard's compute resource (back-to-back batches queue), and responses
//! return over one shared, contended cloud egress link — so batch
//! compositions genuinely react to network jitter. The round-trip
//! summary lands in [`FleetOutcome::network`].

use pelican::platform::ComputeTier;
use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_nn::{ModelCodecError, Sequence};
use pelican_sim::{stage_stats, Discipline, LinkMix, LinkProfile, TransferPolicy};
use pelican_tensor::nearest_rank;

use crate::metrics::{MetricsSink, ServeReport};
use crate::registry::{RegistryConfig, RegistryStats, ShardedRegistry};
use crate::scheduler::{BatchScheduler, Request, SchedulerConfig, ServeEngine};
use crate::simserve::{simulate_serving, SimServeConfig};
use crate::traffic::{TrafficConfig, TrafficGenerator};

/// Everything a fleet run needs besides the scenario.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Registry sharding and hot-cache sizing.
    pub registry: RegistryConfig,
    /// Batch coalescing knobs.
    pub scheduler: SchedulerConfig,
    /// Traffic shape. `users` is overridden with the harness's client
    /// pool size.
    pub traffic: TrafficConfig,
    /// Tier fused batches are costed on.
    pub tier: ComputeTier,
    /// Privacy layer installed on every personalized model at enrollment.
    pub privacy: Option<PrivacyLayer>,
    /// How many contributor (unenrolled) users join the client pool and
    /// exercise the general-model fallback.
    pub unenrolled_clients: usize,
    /// Distinct query sequences cached per client (cycled round-robin).
    pub queries_per_user: usize,
    /// Cloud-deployment network path. `None` serves on-device (queries
    /// pay no network); `Some` routes every round trip through the
    /// discrete-event simulator.
    pub cloud: Option<CloudNetwork>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            registry: RegistryConfig::default(),
            scheduler: SchedulerConfig::default(),
            traffic: TrafficConfig::default(),
            tier: ComputeTier::Cloud,
            privacy: Some(PrivacyLayer::default()),
            unenrolled_clients: 4,
            queries_per_user: 32,
            cloud: None,
        }
    }
}

/// Network shape of cloud-deployed serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudNetwork {
    /// Per-client uplink assignment (wifi/WAN/cellular mix, stragglers).
    pub mix: LinkMix,
    /// The shared cloud egress link every response queues on.
    pub egress: LinkProfile,
    /// How contending responses share the egress link.
    pub egress_discipline: Discipline,
    /// Query payload size in bytes.
    pub query_bytes: u64,
    /// Response payload size in bytes.
    pub response_bytes: u64,
    /// Timeout/retry policy of query uplink transfers (a timed-out query
    /// is dropped before reaching the cloud).
    pub uplink_policy: TransferPolicy,
    /// Fleet seed for link assignment.
    pub seed: u64,
}

impl Default for CloudNetwork {
    /// Campus client mix, one fair-share WAN egress, 2 kB queries and
    /// 1 kB responses, no timeouts.
    fn default() -> Self {
        Self {
            mix: LinkMix::campus(),
            egress: LinkProfile::wan(),
            egress_discipline: Discipline::FairShare,
            query_bytes: 2_048,
            response_bytes: 1_024,
            uplink_policy: TransferPolicy::default(),
            seed: 0xC10D,
        }
    }
}

/// Round-trip summary of cloud-deployed serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloudRtt {
    /// Queries that completed the full round trip.
    pub requests: usize,
    /// Queries dropped on the uplink (timeout retries exhausted).
    pub dropped: usize,
    /// Median end-to-end latency: client send → response delivered (µs).
    pub rtt_p50_us: u64,
    /// 95th-percentile end-to-end latency (µs).
    pub rtt_p95_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub rtt_p99_us: u64,
    /// 95th-percentile contention wait on client uplinks (µs).
    pub uplink_wait_p95_us: u64,
    /// 95th-percentile contention wait on the shared egress (µs).
    pub egress_wait_p95_us: u64,
    /// Determinism fingerprint of the unified serving timeline (uplink,
    /// batching timers, shard compute and egress share one event heap).
    pub fingerprint: u64,
}

/// Result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Throughput / latency / batching / cache report (cloud-side: its
    /// latencies start when the query reaches the cloud).
    pub report: ServeReport,
    /// Final registry counters (also embedded in the report).
    pub stats: RegistryStats,
    /// End-to-end round-trip summary when serving through
    /// [`FleetConfig::cloud`]; `None` for on-device serving.
    pub network: Option<CloudRtt>,
}

/// Runs a full serving experiment against a scenario's population.
///
/// The client pool is the scenario's personalization users (most popular
/// first, matching the Zipf head) plus `unenrolled_clients` contributors
/// who never uploaded a model and therefore hit the general fallback.
/// Each client's queries are real held-out sequences from the dataset,
/// cycled deterministically. Identical inputs yield identical reports.
///
/// # Errors
///
/// Returns [`ModelCodecError`] if a stored envelope fails to decode
/// (impossible for envelopes the registry itself encoded).
pub fn run_fleet(
    scenario: &Scenario,
    config: &FleetConfig,
) -> Result<FleetOutcome, ModelCodecError> {
    let registry = ShardedRegistry::new(scenario.general.clone(), config.registry);
    registry.enroll_scenario(scenario, config.privacy);

    // Client pool: personalized users first (Zipf head), then unenrolled
    // contributors exercising the fallback path.
    let mut pool: Vec<usize> = scenario.personal.iter().map(|u| u.user_id).collect();
    pool.extend((0..scenario.first_personal_user).take(config.unenrolled_clients));

    let queries_per_user = config.queries_per_user.max(1);
    let query_pool: Vec<Vec<Sequence>> = pool
        .iter()
        .map(|&uid| {
            scenario
                .dataset
                .user_samples(uid)
                .into_iter()
                .take(queries_per_user)
                .map(|sample| sample.xs)
                .collect()
        })
        .collect();
    // Keep only clients that have at least one recorded session to query
    // with (everyone, in practice, but guard tiny scenarios).
    let (pool, query_pool): (Vec<usize>, Vec<Vec<Sequence>>) =
        pool.into_iter().zip(query_pool).filter(|(_, queries)| !queries.is_empty()).unzip();
    assert!(!pool.is_empty(), "fleet needs at least one client with data");

    let mut traffic = config.traffic;
    traffic.users = pool.len();
    let mut cursors = vec![0usize; pool.len()];
    let requests: Vec<Request> = TrafficGenerator::new(traffic)
        .enumerate()
        .map(|(id, arrival)| {
            let queries = &query_pool[arrival.user_index];
            let xs = queries[cursors[arrival.user_index] % queries.len()].clone();
            cursors[arrival.user_index] += 1;
            Request { id, user_id: pool[arrival.user_index], arrival_us: arrival.at_us, xs }
        })
        .collect();

    let mut sink = MetricsSink::default();
    let network = match &config.cloud {
        // Cloud deployment: the whole tier runs on the sim's virtual
        // clock — uplink ingress, deadline timers, shard-serial fused
        // compute and egress responses on one event heap.
        Some(cloud) => {
            let sim_config = SimServeConfig {
                scheduler: config.scheduler,
                tier: config.tier,
                network: Some(*cloud),
            };
            let outcome = simulate_serving(&registry, &requests, &sim_config)?;
            for (batch, completions) in outcome.batches.iter().zip(&outcome.completions) {
                sink.record(batch, completions);
            }
            let mut rtts: Vec<u64> = outcome.served.iter().map(|s| s.rtt_us()).collect();
            rtts.sort_unstable();
            Some(CloudRtt {
                requests: rtts.len(),
                dropped: outcome.dropped,
                rtt_p50_us: nearest_rank(&rtts, 0.50).unwrap_or(0),
                rtt_p95_us: nearest_rank(&rtts, 0.95).unwrap_or(0),
                rtt_p99_us: nearest_rank(&rtts, 0.99).unwrap_or(0),
                uplink_wait_p95_us: stage_stats(&outcome.sim, "uplink").wait_p95_us,
                egress_wait_p95_us: stage_stats(&outcome.sim, "response").wait_p95_us,
                fingerprint: outcome.fingerprint(),
            })
        }
        // On-device serving: no network to react to, so the offline
        // coalescing path (whose semantics the regression tests pin) is
        // exact and cheaper.
        None => {
            let scheduler = BatchScheduler::new(config.scheduler, registry.shard_count());
            let batches = scheduler.coalesce(requests);
            let engine = ServeEngine::new(&registry, config.tier);
            for batch in &batches {
                let batch_completions = engine.execute(batch)?;
                sink.record(batch, &batch_completions);
            }
            None
        }
    };

    let stats = registry.stats();
    Ok(FleetOutcome { report: sink.report(config.tier, stats.clone()), stats, network })
}

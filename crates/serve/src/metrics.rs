//! Serving metrics: throughput, latency percentiles, batch shape and
//! cache behaviour.
//!
//! All times are *simulated* (derived from FLOP counts via the platform
//! tiers plus scheduler queueing), so reports are deterministic and
//! machine-independent — the same property the rest of the reproduction
//! relies on for its overhead numbers.

use std::collections::BTreeMap;

use pelican::platform::ComputeTier;

use crate::registry::{Lookup, RegistryStats};
use crate::scheduler::{Batch, Completion};

/// Accumulates per-batch observations during a serving run.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    latencies_us: Vec<u64>,
    queues_us: Vec<u64>,
    services_us: Vec<u64>,
    batch_sizes: BTreeMap<usize, usize>,
    batches: usize,
    requests: usize,
    first_arrival_us: Option<u64>,
    last_finish_us: u64,
    hot: u64,
    cold: u64,
    fallback: u64,
}

impl MetricsSink {
    /// Records one executed batch and its completions.
    pub fn record(&mut self, batch: &Batch, completions: &[Completion]) {
        self.batches += 1;
        *self.batch_sizes.entry(batch.requests.len()).or_insert(0) += 1;
        for c in completions {
            self.requests += 1;
            let finish = c.finish_us();
            self.latencies_us.push(finish.saturating_sub(c.arrival_us));
            self.queues_us.push(c.queue_us);
            self.services_us.push(c.service_us);
            self.first_arrival_us =
                Some(self.first_arrival_us.map_or(c.arrival_us, |f| f.min(c.arrival_us)));
            self.last_finish_us = self.last_finish_us.max(finish);
            match c.lookup {
                Lookup::Hot => self.hot += 1,
                Lookup::Cold => self.cold += 1,
                Lookup::Fallback => self.fallback += 1,
            }
        }
    }

    /// Snapshots the run into a report.
    pub fn report(&self, tier: ComputeTier, registry: RegistryStats) -> ServeReport {
        let sorted = |xs: &[u64]| {
            let mut xs = xs.to_vec();
            xs.sort_unstable();
            xs
        };
        let latencies = sorted(&self.latencies_us);
        let queues = sorted(&self.queues_us);
        let services = sorted(&self.services_us);
        let span_us = self.last_finish_us.saturating_sub(self.first_arrival_us.unwrap_or(0));
        let throughput_qps =
            if span_us == 0 { 0.0 } else { self.requests as f64 / (span_us as f64 / 1e6) };
        ServeReport {
            tier,
            requests: self.requests,
            batches: self.batches,
            mean_batch: if self.batches == 0 {
                0.0
            } else {
                self.requests as f64 / self.batches as f64
            },
            batch_histogram: self.batch_sizes.iter().map(|(&s, &n)| (s, n)).collect(),
            throughput_qps,
            p50_us: percentile(&latencies, 0.50),
            p95_us: percentile(&latencies, 0.95),
            p99_us: percentile(&latencies, 0.99),
            queue_p50_us: percentile(&queues, 0.50),
            queue_p95_us: percentile(&queues, 0.95),
            service_p50_us: percentile(&services, 0.50),
            service_p95_us: percentile(&services, 0.95),
            fallback_share: if self.requests == 0 {
                0.0
            } else {
                self.fallback as f64 / self.requests as f64
            },
            registry,
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (0 if empty).
/// Thin wrapper over the workspace-shared [`pelican_tensor::nearest_rank`]
/// so serving, training and the network simulator agree on one
/// percentile definition.
fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    pelican_tensor::nearest_rank(sorted_us, q).unwrap_or(0)
}

/// A finished serving run, ready to print or tabulate.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Tier the fused batches were costed on.
    pub tier: ComputeTier,
    /// Requests served.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// `(batch size, count)` pairs, ascending by size.
    pub batch_histogram: Vec<(usize, usize)>,
    /// Served queries per simulated second.
    pub throughput_qps: f64,
    /// Median simulated latency (queueing + fused compute), µs.
    pub p50_us: u64,
    /// 95th-percentile simulated latency, µs.
    pub p95_us: u64,
    /// 99th-percentile simulated latency, µs.
    pub p99_us: u64,
    /// Median shard-compute queueing per request, µs (see
    /// [`Completion::queue_us`]; zero on the offline path).
    pub queue_p50_us: u64,
    /// 95th-percentile shard-compute queueing, µs.
    pub queue_p95_us: u64,
    /// Median fused-batch service time per request, µs.
    pub service_p50_us: u64,
    /// 95th-percentile fused-batch service time, µs.
    pub service_p95_us: u64,
    /// Share of requests answered by the general fallback model.
    pub fallback_share: f64,
    /// Registry cache counters at the end of the run.
    pub registry: RegistryStats,
}

impl ServeReport {
    /// Per-cohort `(queries, hot hits)` pairs, index = cohort id (see
    /// [`crate::ShardedRegistry::set_cohort`]); empty when the run
    /// labeled no cohorts. This is the arm traffic split an A/B
    /// experiment reads without re-deriving it from traces.
    pub fn cohort_split(&self) -> Vec<(u64, u64)> {
        self.registry
            .cohort_queries
            .iter()
            .zip(&self.registry.cohort_hits)
            .map(|(&q, &h)| (q, h))
            .collect()
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tier {} | {} requests in {} batches (mean batch {:.2})\n",
            self.tier, self.requests, self.batches, self.mean_batch
        ));
        out.push_str(&format!(
            "throughput {:>10.0} q/s (simulated)\nlatency    p50 {} µs  p95 {} µs  p99 {} µs\n",
            self.throughput_qps, self.p50_us, self.p95_us, self.p99_us
        ));
        out.push_str(&format!(
            "compute    queue p50 {} µs  p95 {} µs | service p50 {} µs  p95 {} µs\n",
            self.queue_p50_us, self.queue_p95_us, self.service_p50_us, self.service_p95_us
        ));
        out.push_str(&format!(
            "cache      {:.1}% hot-hit, {} evictions, {:.1}% fallback traffic\n",
            self.registry.hit_rate() * 100.0,
            self.registry.evictions,
            self.fallback_share * 100.0
        ));
        let cohorts = self.cohort_split();
        if !cohorts.is_empty() {
            out.push_str("cohorts    ");
            for (c, (queries, hits)) in cohorts.iter().enumerate() {
                out.push_str(&format!("[{c}] {queries} queries ({hits} hot)  "));
            }
            out.push('\n');
        }
        out.push_str("batch-size histogram: ");
        let total: usize = self.batch_histogram.iter().map(|&(_, n)| n).sum();
        for &(size, count) in &self.batch_histogram {
            out.push_str(&format!("{size}×{count} "));
        }
        out.push_str(&format!("({total} batches)\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Request;

    fn completion(id: usize, arrival: u64, dispatched: u64, compute_us: u64) -> Completion {
        Completion {
            request_id: id,
            user_id: 0,
            arrival_us: arrival,
            dispatched_us: dispatched,
            queue_us: 0,
            service_us: compute_us,
            lookup: Lookup::Hot,
            probs: vec![1.0],
        }
    }

    fn batch(n: usize) -> Batch {
        let requests = (0..n)
            .map(|i| Request { id: i, user_id: 0, arrival_us: 0, xs: vec![vec![0.0]] })
            .collect();
        Batch { shard: 0, dispatched_us: 10, requests }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn report_aggregates_latency_and_shape() {
        let mut sink = MetricsSink::default();
        let completions: Vec<Completion> = (0..4).map(|i| completion(i, i as u64, 10, 5)).collect();
        sink.record(&batch(4), &completions);
        let report = sink.report(ComputeTier::Device, RegistryStats::default());
        assert_eq!(report.requests, 4);
        assert_eq!(report.batches, 1);
        assert_eq!(report.mean_batch, 4.0);
        assert_eq!(report.batch_histogram, vec![(4, 1)]);
        // Latencies: finish 15 minus arrivals 0..3 -> 15, 14, 13, 12.
        assert_eq!(report.p50_us, 13);
        assert_eq!(report.p99_us, 15);
        assert_eq!(report.service_p95_us, 5, "service split mirrors the completions");
        assert_eq!(report.queue_p95_us, 0, "offline completions never queue");
        assert!(report.throughput_qps > 0.0);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn cohort_split_surfaces_registry_counters() {
        let mut sink = MetricsSink::default();
        sink.record(&batch(1), &[completion(0, 0, 10, 5)]);
        let plain = sink.report(ComputeTier::Device, RegistryStats::default());
        assert!(plain.cohort_split().is_empty());
        assert!(!plain.render().contains("cohorts"));

        let stats = RegistryStats {
            cohort_queries: vec![10, 7],
            cohort_hits: vec![6, 2],
            ..RegistryStats::default()
        };
        let split = sink.report(ComputeTier::Device, stats);
        assert_eq!(split.cohort_split(), vec![(10, 6), (7, 2)]);
        assert!(split.render().contains("[1] 7 queries (2 hot)"));
    }
}

//! The batch scheduler as a reactive workload on the simulator's virtual
//! clock — one timeline for arrivals, batching, compute and responses.
//!
//! The offline [`BatchScheduler::coalesce`] replays an arrival stream on
//! its own idealized clock: buffers seal at recorded timestamps, fused
//! compute is priced after the fact and batches implicitly overlap. This
//! module closes the loop instead. [`simulate_serving`] runs the whole
//! serving tier inside one reactive [`pelican_sim::Simulator::run`] pass:
//!
//! * every query **arrival** is a sim job — a transfer over the client's
//!   own (seeded, heterogeneous) uplink when a [`CloudNetwork`] is
//!   configured, a zero-stage job releasing at the client send time when
//!   serving on-path — so the scheduler sees *cloud-ingress* times that
//!   already include contention, jitter and drops;
//! * shard buffers seal on **sim timer events**: the `max_delay`
//!   deadline is an [`pelican_sim::SimControl::set_timer`] timer on the
//!   virtual clock, and a `max_batch` fill seals inline at the filling
//!   arrival's virtual instant;
//! * fused batch compute **occupies the shard**: each sealed batch is
//!   executed through [`ServeEngine`] and its simulated cost becomes a
//!   FIFO transfer on the shard's
//!   [`pelican_sim::LinkProfile::compute_resource`] link, so
//!   back-to-back batches queue instead of overlapping and every
//!   completion carries the real [`Completion::queue_us`] /
//!   [`Completion::service_us`] split;
//! * **responses** return over the shared contended egress link, closing
//!   the round trip on the same event heap.
//!
//! With no network and no compute contention the sealed compositions are
//! exactly what the offline scheduler produces (pinned by tests and the
//! `cosim-report` experiment); under network jitter the compositions
//! genuinely change — batching finally reacts to the network.

use std::collections::HashMap;

use pelican::platform::ComputeTier;
use pelican_nn::ModelCodecError;
use pelican_sim::{
    JobReport, JobSpec, JobStatus, LinkProfile, LinkSpec, SimControl, SimOutcome, Simulator, Stage,
    TransferPolicy, Workload,
};

use crate::fleet::CloudNetwork;
use crate::registry::ShardedRegistry;
use crate::scheduler::{Batch, Completion, Request, SchedulerConfig, ServeEngine};

/// Everything the sim-driven serving pass needs besides the requests.
#[derive(Debug, Clone, Copy)]
pub struct SimServeConfig {
    /// Coalescing knobs (same meaning as the offline scheduler's; the
    /// deadline now lives on the virtual clock).
    pub scheduler: SchedulerConfig,
    /// Tier fused batches are costed on.
    pub tier: ComputeTier,
    /// Device↔cloud network. `None` feeds arrivals straight into the
    /// scheduler at their send times (no uplink, no egress) — the
    /// configuration whose batch compositions match the offline
    /// scheduler exactly.
    pub network: Option<CloudNetwork>,
}

/// One request's life on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedRequest {
    /// The request id.
    pub request_id: usize,
    /// The querying user.
    pub user_id: usize,
    /// Client send time (µs).
    pub sent_us: u64,
    /// When the query reached the scheduler (µs) — after the uplink, if
    /// one is configured.
    pub ingress_us: u64,
    /// When the answer was done (µs): response delivered over the
    /// egress, or fused compute finished when serving without a network.
    pub done_us: u64,
}

impl ServedRequest {
    /// End-to-end round trip on the virtual clock (µs).
    pub fn rtt_us(&self) -> u64 {
        self.done_us - self.sent_us
    }
}

/// A finished sim-driven serving pass.
#[derive(Debug, Clone)]
pub struct SimServeOutcome {
    /// Sealed batches, in seal order on the virtual clock.
    pub batches: Vec<Batch>,
    /// Per-batch completions (parallel to `batches`), with the
    /// queue/service split filled in from the shard occupancy.
    pub completions: Vec<Vec<Completion>>,
    /// Per-request round trips, ascending by request id.
    pub served: Vec<ServedRequest>,
    /// Queries dropped on the uplink (timeout retries exhausted).
    pub dropped: usize,
    /// The underlying simulation: every event of every phase on one heap.
    pub sim: SimOutcome,
}

impl SimServeOutcome {
    /// Determinism fingerprint of the unified event trace.
    pub fn fingerprint(&self) -> u64 {
        self.sim.fingerprint()
    }

    /// The batch compositions alone — see [`batch_compositions`] — for
    /// comparing scheduling decisions across network conditions (and
    /// against the offline scheduler).
    pub fn compositions(&self) -> Vec<(usize, u64, Vec<usize>)> {
        batch_compositions(&self.batches)
    }
}

/// Each batch's scheduling identity — `(shard, dispatched_us, member
/// request ids in order)` — the one shape every scheduler-fidelity
/// comparison (sim-driven vs. offline, quiet vs. jittery) agrees on.
pub fn batch_compositions(batches: &[Batch]) -> Vec<(usize, u64, Vec<usize>)> {
    batches
        .iter()
        .map(|b| (b.shard, b.dispatched_us, b.requests.iter().map(|r| r.id).collect()))
        .collect()
}

/// Job-id namespace width on the shared heap: the top byte tags the job
/// class, the low 56 bits carry the request/batch index. Workloads
/// composing extra job classes onto the same heap (like the live
/// personalization loop) must tag them with kinds above
/// [`ServeFlow::handles`]'s range.
pub const KIND_SHIFT: u32 = 56;
const KIND_ARRIVAL: u64 = 0;
const KIND_BATCH: u64 = 1;
const KIND_RESPONSE: u64 = 2;

/// Builds a namespaced job id: `kind` in the top byte, `payload` in the
/// low 56 bits.
///
/// # Panics
///
/// Debug-panics if `payload` overflows the 56-bit namespace.
pub fn job_id(kind: u64, payload: u64) -> u64 {
    debug_assert!(payload < 1 << KIND_SHIFT);
    (kind << KIND_SHIFT) | payload
}

/// Runs the serving tier on the simulator's virtual clock: arrivals
/// (optionally over client uplinks), deadline/fill sealing, shard-serial
/// fused compute and egress responses all on one event heap.
///
/// Requests are normalized to `(arrival, id)` order first, exactly like
/// the offline scheduler, so the outcome is invariant under permutation
/// of the input vector. Identical inputs produce bit-identical outcomes,
/// trace included.
///
/// # Errors
///
/// Returns [`ModelCodecError`] if a stored envelope fails to decode.
///
/// # Panics
///
/// Panics if `config.scheduler.max_batch` is zero or a request id is
/// outside the 56-bit job-id namespace.
pub fn simulate_serving(
    registry: &ShardedRegistry,
    requests: &[Request],
    config: &SimServeConfig,
) -> Result<SimServeOutcome, ModelCodecError> {
    let ServeHarness { links, jobs, mut flow } = serve_harness(registry, requests, config);
    let sim = Simulator::builder().links(links).build().run(&jobs, &mut flow);
    flow.into_outcome(sim)
}

/// The disassembled serving pass: the link table, the initial arrival
/// jobs and the scheduler-as-workload, *before* the simulator runs.
///
/// [`simulate_serving`] assembles exactly these three pieces and runs
/// them as-is; a composing workload (the live personalization loop)
/// appends its own links and job classes, wraps [`ServeHarness::flow`]
/// in its own [`Workload`], and drives the union on one event heap —
/// when nothing extra is submitted, the trace is bit-identical to
/// [`simulate_serving`]'s.
pub struct ServeHarness<'a> {
    /// Shard compute resources first (link `i` = shard `i`), then — in
    /// cloud mode — the shared egress and one uplink per distinct
    /// client. Composing workloads append after these.
    pub links: Vec<LinkSpec>,
    /// One arrival job per request, already namespaced.
    pub jobs: Vec<JobSpec>,
    /// The serving workload, ready for [`Simulator::run`].
    pub flow: ServeFlow<'a>,
}

/// Disassembles one sim-driven serving pass — see [`ServeHarness`].
///
/// # Panics
///
/// Panics if `config.scheduler.max_batch` is zero or a request id is
/// outside the 56-bit job-id namespace.
pub fn serve_harness<'a>(
    registry: &'a ShardedRegistry,
    requests: &[Request],
    config: &SimServeConfig,
) -> ServeHarness<'a> {
    assert!(config.scheduler.max_batch > 0, "max_batch must be positive");
    let n_shards = registry.shard_count();
    let mut requests: Vec<Request> = requests.to_vec();
    requests.sort_by_key(|r| (r.arrival_us, r.id));

    // Link table: shard compute resources first (one FIFO lane per
    // shard), then — in cloud mode — the shared egress and one uplink
    // per distinct client, dealt from the seeded mix.
    let mut links: Vec<LinkSpec> =
        (0..n_shards).map(|_| LinkSpec::fifo(LinkProfile::compute_resource("shard"))).collect();
    let mut egress_link = None;
    let mut uplink_of: HashMap<usize, usize> = HashMap::new();
    if let Some(cloud) = &config.network {
        egress_link = Some(links.len());
        links.push(LinkSpec { profile: cloud.egress, discipline: cloud.egress_discipline });
        let mut users: Vec<usize> = requests.iter().map(|r| r.user_id).collect();
        users.sort_unstable();
        users.dedup();
        for uid in users {
            uplink_of.insert(uid, links.len());
            links.push(LinkSpec::fair(cloud.mix.assign(cloud.seed, uid as u64).profile));
        }
    }

    // Arrival jobs: an uplink transfer in cloud mode, a zero-stage job
    // (completes at release) otherwise — either way the scheduler hears
    // about the query through `on_job_end`, on the virtual clock.
    let initial: Vec<JobSpec> = requests
        .iter()
        .map(|r| {
            assert!((r.id as u64) < 1 << KIND_SHIFT, "request id outside job-id namespace");
            let stages = match &config.network {
                Some(cloud) => vec![Stage::Transfer {
                    label: "uplink",
                    link: uplink_of[&r.user_id],
                    bytes: cloud.query_bytes,
                    policy: cloud.uplink_policy,
                }],
                None => Vec::new(),
            };
            JobSpec { id: job_id(KIND_ARRIVAL, r.id as u64), release_us: r.arrival_us, stages }
        })
        .collect();

    let flow = ServeFlow {
        engine: ServeEngine::new(registry, config.tier),
        config: config.scheduler,
        n_shards,
        egress_link,
        response_bytes: config.network.map_or(0, |c| c.response_bytes),
        pending: requests.iter().map(|r| (r.id, r.clone())).collect(),
        sent_us: requests.iter().map(|r| (r.id, r.arrival_us)).collect(),
        ingested: HashMap::new(),
        buffers: vec![Vec::new(); n_shards],
        deadlines: vec![u64::MAX; n_shards],
        batches: Vec::new(),
        completions: Vec::new(),
        served: Vec::new(),
        dropped: 0,
        error: None,
    };
    ServeHarness { links, jobs: initial, flow }
}

/// The scheduler-as-workload driving one serving pass. Built by
/// [`serve_harness`]; either run directly (that is [`simulate_serving`])
/// or delegated to from a composing [`Workload`] for every job id that
/// [`ServeFlow::handles`] and every timer key below the shard count.
pub struct ServeFlow<'a> {
    engine: ServeEngine<'a>,
    config: SchedulerConfig,
    n_shards: usize,
    egress_link: Option<usize>,
    response_bytes: u64,
    /// Requests not yet ingested, by request id.
    pending: HashMap<usize, Request>,
    /// Client send times, by request id (ingress rewrites `arrival_us`).
    sent_us: HashMap<usize, u64>,
    /// `(user, ingress time)` of every ingested request, by request id.
    ingested: HashMap<usize, (usize, u64)>,
    /// Per-shard open buffers, in ingress order.
    buffers: Vec<Vec<Request>>,
    /// Per-shard open-buffer deadlines (`u64::MAX` = no open buffer),
    /// exactly the bookkeeping [`crate::scheduler::BatchScheduler`]
    /// keeps — sealing decisions are made from this table, never from
    /// event arrival order, so same-instant ties (an arrival landing
    /// exactly on a deadline, two shards expiring together) resolve
    /// identically to the offline scheduler.
    deadlines: Vec<u64>,
    batches: Vec<Batch>,
    completions: Vec<Vec<Completion>>,
    served: Vec<ServedRequest>,
    dropped: usize,
    error: Option<ModelCodecError>,
}

impl ServeFlow<'_> {
    /// Whether `job_id` lives in one of the serving namespaces (arrival,
    /// batch, response). A composing workload delegates exactly these to
    /// the inner flow's [`Workload::on_job_end`] and keeps its own job
    /// classes in higher kinds.
    pub fn handles(job_id: u64) -> bool {
        job_id >> KIND_SHIFT <= KIND_RESPONSE
    }

    /// Shards this flow schedules over. Timer keys below this count
    /// belong to the serving flow (buffer deadlines); composing
    /// workloads must pick their own keys at or above it.
    pub fn shard_count(&self) -> usize {
        self.n_shards
    }

    /// Hands the flow a request that did not exist when the harness was
    /// built — the dynamic-traffic entry point for composing workloads
    /// (e.g. an A/B experiment's adversary, whose next queries depend on
    /// answers to earlier ones). The request is ingested at the current
    /// virtual instant exactly as if its arrival job had just completed;
    /// the composing workload models whatever uplink it wants with its
    /// own job class and injects when that job ends. `request.arrival_us`
    /// is kept as the client send time for the round-trip record.
    ///
    /// # Panics
    ///
    /// Panics if the id collides with a request this flow already knows.
    pub fn inject(&mut self, request: Request, sim: &mut SimControl) {
        assert!(
            !self.sent_us.contains_key(&request.id) && !self.pending.contains_key(&request.id),
            "injected request id {} collides with an existing request",
            request.id
        );
        self.sent_us.insert(request.id, request.arrival_us);
        self.ingest(request, sim.now(), sim);
    }

    /// Sealed batches so far, in seal order on the virtual clock — a
    /// composing workload reads these mid-run to react to traffic.
    pub fn batches(&self) -> &[Batch] {
        &self.batches
    }

    /// Per-batch completions, parallel to [`Self::batches`]. The
    /// queue/service split of a batch is back-filled when its shard
    /// occupancy job finishes (so it is final by the time a composing
    /// workload sees that batch's `KIND_BATCH` job end).
    pub fn completions(&self) -> &[Vec<Completion>] {
        &self.completions
    }

    /// Finalizes the pass: surfaces any envelope-decode error and
    /// assembles the outcome around the finished simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] if a stored envelope failed to decode
    /// during the run.
    pub fn into_outcome(self, sim: SimOutcome) -> Result<SimServeOutcome, ModelCodecError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let mut served = self.served;
        served.sort_unstable_by_key(|s| s.request_id);
        Ok(SimServeOutcome {
            batches: self.batches,
            completions: self.completions,
            served,
            dropped: self.dropped,
            sim,
        })
    }

    /// Seals every buffer whose deadline has passed, in deterministic
    /// `(deadline, shard)` order — the mirror of the offline scheduler's
    /// `flush_expired`, run before any buffering at the same instant so
    /// an arrival landing exactly on a deadline opens a *fresh* buffer.
    fn flush_expired(&mut self, now: u64, sim: &mut SimControl) {
        let mut due: Vec<(u64, usize)> = self
            .deadlines
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != u64::MAX && d <= now)
            .map(|(shard, &d)| (d, shard))
            .collect();
        due.sort_unstable();
        for (deadline, shard) in due {
            self.seal(shard, deadline, sim);
        }
    }

    /// A query reached the scheduler at virtual time `now`: flush
    /// anything already due, buffer it, arm the shard's deadline if the
    /// buffer just opened, seal on fill.
    fn ingest(&mut self, mut request: Request, now: u64, sim: &mut SimControl) {
        self.flush_expired(now, sim);
        let shard = request.user_id % self.n_shards;
        request.arrival_us = now;
        self.ingested.insert(request.id, (request.user_id, now));
        if self.buffers[shard].is_empty() {
            let deadline = now.saturating_add(self.config.max_delay_us);
            self.deadlines[shard] = deadline;
            sim.set_timer(deadline, shard as u64);
        }
        self.buffers[shard].push(request);
        if self.buffers[shard].len() >= self.config.max_batch {
            self.seal(shard, now, sim);
        }
    }

    /// Seals the shard's buffer, dispatched at virtual time `now` (the
    /// deadline itself for deadline seals): execute the fused batch
    /// host-side, then occupy the shard's compute resource for the
    /// measured simulated cost.
    fn seal(&mut self, shard: usize, now: u64, sim: &mut SimControl) {
        self.deadlines[shard] = u64::MAX;
        if self.error.is_some() {
            self.buffers[shard].clear();
            return;
        }
        let batch =
            Batch { shard, dispatched_us: now, requests: std::mem::take(&mut self.buffers[shard]) };
        match self.engine.execute(&batch) {
            Ok(completions) => {
                // Every member shares the fused kernel, so any member's
                // service time is the batch's compute occupancy.
                let service_us = completions.first().map_or(0, |c| c.service_us);
                let index = self.batches.len() as u64;
                sim.submit(JobSpec {
                    id: job_id(KIND_BATCH, index),
                    release_us: now,
                    stages: vec![Stage::Transfer {
                        label: "compute",
                        link: shard,
                        bytes: service_us,
                        policy: TransferPolicy::default(),
                    }],
                });
                self.batches.push(batch);
                self.completions.push(completions);
            }
            Err(e) => self.error = Some(e),
        }
    }

    /// A batch's shard occupancy finished: back-fill the queue/service
    /// split and send every response down the egress (or finish the
    /// requests in place when serving without a network).
    fn batch_done(&mut self, index: usize, job: &JobReport, sim: &mut SimControl) {
        let stage = job.stages.first().expect("batch jobs have exactly one compute stage");
        for c in &mut self.completions[index] {
            c.queue_us = stage.wait_us();
        }
        let ids: Vec<usize> = self.batches[index].requests.iter().map(|r| r.id).collect();
        for id in ids {
            match self.egress_link {
                Some(egress) => sim.submit(JobSpec {
                    id: job_id(KIND_RESPONSE, id as u64),
                    release_us: sim.now(),
                    stages: vec![Stage::Transfer {
                        label: "response",
                        link: egress,
                        bytes: self.response_bytes,
                        policy: TransferPolicy::default(),
                    }],
                }),
                None => self.finish(id, sim.now()),
            }
        }
    }

    fn finish(&mut self, request_id: usize, done_us: u64) {
        let (user_id, ingress_us) = self.ingested[&request_id];
        let sent_us = self.sent_us[&request_id];
        self.served.push(ServedRequest { request_id, user_id, sent_us, ingress_us, done_us });
    }
}

impl Workload for ServeFlow<'_> {
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
        let payload = (job.id & ((1 << KIND_SHIFT) - 1)) as usize;
        match job.id >> KIND_SHIFT {
            KIND_ARRIVAL => {
                let request =
                    self.pending.remove(&payload).expect("one arrival job per pending request");
                if job.status == JobStatus::Completed {
                    self.ingest(request, job.end_us, sim);
                } else {
                    self.dropped += 1;
                }
            }
            KIND_BATCH => self.batch_done(payload, job, sim),
            KIND_RESPONSE => self.finish(payload, job.end_us),
            _ => unreachable!("unknown job-id namespace"),
        }
    }

    fn on_timer(&mut self, _key: u64, sim: &mut SimControl) {
        // A timer is only a wake-up at a moment some deadline was armed
        // for; the deadline table decides what actually seals. A stale
        // timer (its buffer sealed early on a `max_batch` fill, or
        // replaced by a younger buffer with a later deadline) flushes
        // nothing.
        self.flush_expired(sim.now(), sim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use crate::scheduler::BatchScheduler;
    use pelican_sim::{LinkMix, RetryPolicy, StragglerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn registry(shards: usize) -> ShardedRegistry {
        let mut rng = StdRng::seed_from_u64(9);
        let general = pelican_nn::SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng);
        let registry = ShardedRegistry::new(general, RegistryConfig { shards, hot_capacity: 4 });
        for uid in 0..6 {
            let personalized = pelican_nn::SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng);
            registry.enroll(uid, &personalized);
        }
        registry
    }

    fn request(id: usize, user_id: usize, arrival_us: u64) -> Request {
        Request { id, user_id, arrival_us, xs: vec![vec![0.1; 4]; 2] }
    }

    fn stream(n: usize) -> Vec<Request> {
        (0..n).map(|i| request(i, i % 6, 137 * i as u64 + (i as u64 % 3) * 41)).collect()
    }

    fn config(scheduler: SchedulerConfig, network: Option<CloudNetwork>) -> SimServeConfig {
        SimServeConfig { scheduler, tier: ComputeTier::Cloud, network }
    }

    #[test]
    fn jitter_free_compositions_match_the_offline_scheduler_exactly() {
        let registry = registry(2);
        let requests = stream(40);
        let scheduler_config = SchedulerConfig { max_batch: 4, max_delay_us: 900 };
        let sim = simulate_serving(&registry, &requests, &config(scheduler_config, None))
            .expect("envelopes decode");
        let offline = BatchScheduler::new(scheduler_config, 2).coalesce(requests);
        assert_eq!(
            sim.compositions(),
            batch_compositions(&offline),
            "with no network the virtual clock reproduces the offline scheduler"
        );
        assert_eq!(sim.dropped, 0);
        assert_eq!(sim.served.len(), 40);
    }

    #[test]
    fn same_instant_ties_match_the_offline_scheduler() {
        let registry = registry(2);
        // An arrival landing exactly on its shard's deadline must not
        // join the sealing batch — the offline scheduler flushes the
        // expired buffer first, and so must the virtual clock.
        let scheduler_config = SchedulerConfig { max_batch: 100, max_delay_us: 100 };
        let requests = vec![request(0, 0, 0), request(1, 0, 100)];
        let sim = simulate_serving(&registry, &requests, &config(scheduler_config, None))
            .expect("envelopes decode");
        let offline = BatchScheduler::new(scheduler_config, 2).coalesce(requests);
        assert_eq!(sim.compositions(), batch_compositions(&offline));
        assert_eq!(sim.batches.len(), 2, "the tie arrival opens a fresh buffer");
        assert_eq!(sim.batches[0].dispatched_us, 100);
        assert_eq!(sim.batches[1].dispatched_us, 200);

        // Deadlines on different shards expiring at the same instant
        // seal in (deadline, shard) order, not buffer-open order.
        let scheduler_config = SchedulerConfig { max_batch: 100, max_delay_us: 50 };
        let requests = vec![request(0, 1, 0), request(1, 0, 0)];
        let sim = simulate_serving(&registry, &requests, &config(scheduler_config, None))
            .expect("envelopes decode");
        let offline = BatchScheduler::new(scheduler_config, 2).coalesce(requests);
        assert_eq!(sim.compositions(), batch_compositions(&offline));
        assert_eq!(sim.batches[0].shard, 0, "shard 0 seals first on equal deadlines");
        assert_eq!(sim.batches[1].shard, 1);
    }

    #[test]
    fn network_jitter_changes_the_batch_compositions() {
        let registry = registry(2);
        let requests = stream(40);
        let scheduler_config = SchedulerConfig { max_batch: 4, max_delay_us: 900 };
        let jittery = CloudNetwork {
            mix: LinkMix::cellular_heavy()
                .with_stragglers(StragglerConfig { fraction: 0.3, slowdown: 6.0 }),
            ..CloudNetwork::default()
        };
        let quiet = simulate_serving(&registry, &requests, &config(scheduler_config, None))
            .expect("envelopes decode");
        let shaken =
            simulate_serving(&registry, &requests, &config(scheduler_config, Some(jittery)))
                .expect("envelopes decode");
        assert_ne!(
            quiet.compositions(),
            shaken.compositions(),
            "uplink jitter must reshape the batches"
        );
        // Every request still served exactly once.
        let mut ids: Vec<usize> =
            shaken.batches.iter().flat_map(|b| b.requests.iter().map(|r| r.id)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        // Responses pay the egress: every round trip ends after ingress.
        for s in &shaken.served {
            assert!(s.done_us > s.ingress_us);
            assert!(s.ingress_us > s.sent_us, "uplinks take time");
        }
    }

    #[test]
    fn back_to_back_batches_queue_on_the_shard() {
        // One shard, simultaneous arrivals, singleton batches: all six
        // seal at t = 0, so five of them must wait for the shard, and
        // the split must surface in the completions.
        let registry = registry(1);
        let requests: Vec<Request> = (0..6).map(|i| request(i, 0, 0)).collect();
        let scheduler_config = SchedulerConfig { max_batch: 1, max_delay_us: 10 };
        let out = simulate_serving(&registry, &requests, &config(scheduler_config, None))
            .expect("envelopes decode");
        assert_eq!(out.batches.len(), 6, "max_batch 1 seals every arrival instantly");
        let queued: Vec<u64> =
            out.completions.iter().flat_map(|cs| cs.iter().map(|c| c.queue_us)).collect();
        assert_eq!(queued[0], 0, "first batch finds the shard idle");
        assert!(
            queued[1..].iter().any(|&q| q > 0),
            "later batches must wait for the shard: {queued:?}"
        );
        for cs in &out.completions {
            for c in cs {
                assert!(c.service_us > 0);
                assert_eq!(c.finish_us(), c.dispatched_us + c.queue_us + c.service_us);
            }
        }
    }

    #[test]
    fn sim_serving_is_deterministic_and_permutation_invariant() {
        let registry = registry(2);
        let requests = stream(24);
        let mut reversed = requests.clone();
        reversed.reverse();
        let cfg = config(SchedulerConfig { max_batch: 3, max_delay_us: 500 }, None);
        let a = simulate_serving(&registry, &requests, &cfg).expect("envelopes decode");
        let b = simulate_serving(&registry, &requests, &cfg).expect("envelopes decode");
        let c = simulate_serving(&registry, &reversed, &cfg).expect("envelopes decode");
        assert_eq!(a.sim.trace, b.sim.trace);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), c.fingerprint(), "input order is normalized away");
        assert_eq!(a.compositions(), c.compositions());
    }

    #[test]
    fn injected_requests_join_the_stream_mid_run() {
        // A composing workload that injects one extra request when its
        // own (kind-9) job completes — the dynamic-traffic pattern the
        // A/B adversary uses.
        struct Injector<'a> {
            serve: ServeFlow<'a>,
        }
        impl Workload for Injector<'_> {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                if ServeFlow::handles(job.id) {
                    self.serve.on_job_end(job, sim);
                } else {
                    self.serve.inject(request(100, 0, sim.now()), sim);
                }
            }
            fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
                self.serve.on_timer(key, sim);
            }
        }

        let registry = registry(2);
        let cfg = config(SchedulerConfig { max_batch: 4, max_delay_us: 900 }, None);
        let harness = serve_harness(&registry, &stream(8), &cfg);
        let ServeHarness { links, mut jobs, flow } = harness;
        jobs.push(JobSpec { id: job_id(9, 0), release_us: 500, stages: Vec::new() });
        let mut injector = Injector { serve: flow };
        let sim = Simulator::builder().links(links).build().run(&jobs, &mut injector);
        assert!(!injector.serve.batches().is_empty(), "mid-run accessor sees sealed batches");
        assert_eq!(injector.serve.batches().len(), injector.serve.completions().len());
        let out = injector.serve.into_outcome(sim).expect("envelopes decode");
        assert_eq!(out.served.len(), 9, "8 initial + 1 injected");
        let injected = out.served.iter().find(|s| s.request_id == 100).expect("injected served");
        assert_eq!(injected.sent_us, 500, "send time is the inject instant");
        assert!(injected.done_us > injected.sent_us);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn injecting_a_known_request_id_panics() {
        let registry = registry(2);
        let cfg = config(SchedulerConfig { max_batch: 4, max_delay_us: 900 }, None);
        let harness = serve_harness(&registry, &stream(4), &cfg);
        let ServeHarness { links, jobs, flow } = harness;
        // A probe workload that injects a colliding id on the first
        // arrival it sees.
        struct Collider<'a>(ServeFlow<'a>);
        impl Workload for Collider<'_> {
            fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
                self.0.on_job_end(job, sim);
                self.0.inject(request(0, 0, sim.now()), sim);
            }
            fn on_timer(&mut self, key: u64, sim: &mut SimControl) {
                self.0.on_timer(key, sim);
            }
        }
        Simulator::builder().links(links).build().run(&jobs, &mut Collider(flow));
    }

    #[test]
    fn uplink_timeouts_drop_queries_before_batching() {
        let registry = registry(2);
        let requests = stream(12);
        let strangled = CloudNetwork {
            mix: LinkMix::all_wifi()
                .with_stragglers(StragglerConfig { fraction: 0.4, slowdown: 50.0 }),
            uplink_policy: TransferPolicy { timeout_us: Some(30_000), retry: RetryPolicy::none() },
            ..CloudNetwork::default()
        };
        let cfg = config(SchedulerConfig { max_batch: 4, max_delay_us: 900 }, Some(strangled));
        let out = simulate_serving(&registry, &requests, &cfg).expect("envelopes decode");
        assert!(out.dropped > 0, "50x stragglers cannot beat a 30 ms uplink timeout");
        let batched: usize = out.batches.iter().map(|b| b.requests.len()).sum();
        assert_eq!(batched + out.dropped, 12, "dropped queries never reach a batch");
        assert_eq!(out.served.len(), batched);
    }
}

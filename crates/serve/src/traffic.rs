//! Deterministic open-loop traffic generation.
//!
//! Fleet traffic is not uniform: a small set of heavy users dominates
//! query volume (Zipf-skewed popularity) and arrivals cluster into bursts
//! (class changes on a campus empty thousands of phones into the network
//! at once). The generator reproduces both properties from a single seed:
//! identical seeds yield identical arrival timestamps and user picks,
//! machine-to-machine, so every serving experiment is exactly repeatable.

use pelican_mobility::{Session, UserTrace};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Shape of the synthetic request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Total requests to emit.
    pub requests: usize,
    /// Size of the client population (user *indices* `0..users`; rank 0 is
    /// the most popular client).
    pub users: usize,
    /// Zipf popularity exponent (`s` in `w_r ∝ 1/(r+1)^s`); larger skews
    /// harder toward the head.
    pub zipf_exponent: f64,
    /// Mean inter-arrival gap outside bursts, in microseconds.
    pub mean_interarrival_us: f64,
    /// Cycle length of the burst pattern, in requests.
    pub burst_period: usize,
    /// Leading requests of each cycle that arrive at burst rate.
    pub burst_len: usize,
    /// Arrival-rate multiplier during bursts (≥ 1).
    pub burst_factor: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            requests: 10_000,
            users: 64,
            zipf_exponent: 1.1,
            mean_interarrival_us: 400.0,
            burst_period: 512,
            burst_len: 128,
            burst_factor: 8.0,
            seed: 42,
        }
    }
}

/// One generated arrival: a timestamp and the client (by popularity rank)
/// issuing the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in microseconds of simulated wall clock.
    pub at_us: u64,
    /// Client index in `0..users`, Zipf-distributed by rank.
    pub user_index: usize,
}

/// Seeded open-loop arrival process; iterate to drain the stream.
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    /// Cumulative Zipf distribution over user ranks.
    cdf: Vec<f64>,
    rng: StdRng,
    clock_us: f64,
    emitted: usize,
}

impl TrafficGenerator {
    /// Creates a generator for the given traffic shape.
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero, rates are non-positive, or the burst
    /// window exceeds its period.
    pub fn new(config: TrafficConfig) -> Self {
        assert!(config.users > 0, "traffic needs at least one user");
        assert!(config.zipf_exponent > 0.0, "zipf exponent must be positive");
        assert!(config.mean_interarrival_us > 0.0, "mean inter-arrival must be positive");
        assert!(config.burst_factor >= 1.0, "burst factor must be >= 1");
        assert!(
            config.burst_len <= config.burst_period && config.burst_period > 0,
            "burst window must fit its period"
        );
        let mut cdf = Vec::with_capacity(config.users);
        let mut acc = 0.0;
        for rank in 0..config.users {
            acc += 1.0 / ((rank + 1) as f64).powf(config.zipf_exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { config, cdf, rng: StdRng::seed_from_u64(config.seed), clock_us: 0.0, emitted: 0 }
    }

    /// The configured traffic shape.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    fn in_burst(&self) -> bool {
        self.emitted % self.config.burst_period < self.config.burst_len
    }
}

impl Iterator for TrafficGenerator {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.emitted >= self.config.requests {
            return None;
        }
        // Exponential inter-arrival gap by inverse transform; bursts
        // multiply the arrival rate (divide the gap). `u` is in [0, 1), so
        // `1 - u` is in (0, 1]; the clamp keeps the log finite even for a
        // pathological draw.
        let u: f64 = self.rng.random();
        let mut gap = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * self.config.mean_interarrival_us;
        if self.in_burst() {
            gap /= self.config.burst_factor;
        }
        self.clock_us += gap;
        let pick: f64 = self.rng.random();
        let user_index = self.cdf.partition_point(|&c| c <= pick).min(self.config.users - 1);
        self.emitted += 1;
        Some(Arrival { at_us: self.clock_us as u64, user_index })
    }
}

/// How mobility sessions map onto the serving clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobilityTrafficConfig {
    /// Simulated microseconds per trace minute. `60_000_000` replays the
    /// campus in real time; smaller values compress the weeks-long trace
    /// onto a shorter serving clock without reordering anything.
    pub us_per_minute: u64,
    /// Trace minute the serving window opens at (exclusive): sessions at
    /// or before it — e.g. the enrollment window the one-shot pipeline
    /// already consumed — emit no queries. Arrival timestamps are
    /// measured from this minute, so the window opens near virtual
    /// time 0.
    pub start_minute: u64,
    /// Trace minute the window closes at (inclusive); `u64::MAX` drains
    /// the whole trace.
    pub end_minute: u64,
}

impl Default for MobilityTrafficConfig {
    fn default() -> Self {
        Self { us_per_minute: 60_000_000, start_minute: 0, end_minute: u64::MAX }
    }
}

/// The fleet's own mobility as the arrival process: every campus session
/// becomes one query, timestamped by its (time-compressed) entry minute.
///
/// Where [`TrafficGenerator`] synthesizes load shape from a seed, this
/// adapter derives it from the same [`pelican_mobility`] traces the
/// models are trained on — so the serving tier inherits diurnal rhythm
/// (campuses sleep at night), per-user burstiness (back-to-back
/// sessions) and device churn (users going dark for days) for free, and
/// the arrival stream is exactly as deterministic as the trace seed.
#[derive(Debug, Clone)]
pub struct MobilityTraffic {
    arrivals: Vec<Arrival>,
    sessions: Vec<Session>,
    pos: usize,
}

impl MobilityTraffic {
    /// Builds the merged arrival stream of a fleet of traces. The user
    /// index of each arrival is the session's own `user` id; ties at the
    /// same instant order by user id, so the stream is invariant under
    /// permutation of `traces`.
    pub fn from_traces(traces: &[UserTrace], config: MobilityTrafficConfig) -> Self {
        Self::from_sessions(traces.iter().flat_map(|t| t.sessions.iter().copied()), config)
    }

    /// Builds the arrival stream from raw sessions (any order).
    pub fn from_sessions(
        sessions: impl IntoIterator<Item = Session>,
        config: MobilityTrafficConfig,
    ) -> Self {
        let mut sessions: Vec<Session> = sessions
            .into_iter()
            .filter(|s| {
                let m = s.absolute_entry();
                m > config.start_minute && m <= config.end_minute
            })
            .collect();
        sessions.sort_by_key(|s| (s.absolute_entry(), s.user, s.building, s.ap));
        let arrivals = sessions
            .iter()
            .map(|s| Arrival {
                at_us: (s.absolute_entry() - config.start_minute) * config.us_per_minute,
                user_index: s.user,
            })
            .collect();
        Self { arrivals, sessions, pos: 0 }
    }

    /// The full arrival stream, ascending by `(at_us, user)`.
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// The sessions behind the stream, parallel to [`Self::arrivals`]:
    /// arrival `i` is session `i` entering its building.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Number of arrivals in the window.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the window contains no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }
}

impl Iterator for MobilityTraffic {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let arrival = self.arrivals.get(self.pos).copied();
        self.pos += arrival.is_some() as usize;
        arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(requests: usize) -> TrafficConfig {
        TrafficConfig { requests, users: 16, seed: 7, ..TrafficConfig::default() }
    }

    #[test]
    fn identical_seeds_reproduce_the_stream() {
        let a: Vec<Arrival> = TrafficGenerator::new(config(500)).collect();
        let b: Vec<Arrival> = TrafficGenerator::new(config(500)).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn arrivals_are_monotone() {
        let arrivals: Vec<Arrival> = TrafficGenerator::new(config(1000)).collect();
        for pair in arrivals.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
        }
    }

    #[test]
    fn popularity_is_zipf_skewed() {
        let mut counts = vec![0usize; 16];
        for arrival in TrafficGenerator::new(config(4000)) {
            counts[arrival.user_index] += 1;
        }
        assert!(
            counts[0] > counts[8] && counts[0] > counts[15],
            "head user must dominate: {counts:?}"
        );
        assert!(counts[0] > 4000 / 16, "head user beats the uniform share");
    }

    #[test]
    fn bursts_compress_interarrival_gaps() {
        let cfg = TrafficConfig {
            requests: 2048,
            users: 4,
            burst_period: 512,
            burst_len: 256,
            burst_factor: 16.0,
            seed: 3,
            ..TrafficConfig::default()
        };
        let arrivals: Vec<Arrival> = TrafficGenerator::new(cfg).collect();
        let gap = |i: usize| arrivals[i + 1].at_us.saturating_sub(arrivals[i].at_us);
        // Mean gap inside the first burst window vs. the tail of the cycle.
        let burst_mean: f64 = (0..255).map(gap).sum::<u64>() as f64 / 255.0;
        let calm_mean: f64 = (256..511).map(gap).sum::<u64>() as f64 / 255.0;
        assert!(
            burst_mean * 4.0 < calm_mean,
            "bursts must be much denser: burst {burst_mean} vs calm {calm_mean}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<Arrival> = TrafficGenerator::new(config(100)).collect();
        let mut cfg = config(100);
        cfg.seed = 8;
        let b: Vec<Arrival> = TrafficGenerator::new(cfg).collect();
        assert_ne!(a, b);
    }

    mod mobility {
        use super::*;
        use pelican_mobility::{CampusConfig, Scale, TraceGenerator, MINUTES_PER_DAY};

        fn traces() -> Vec<UserTrace> {
            TraceGenerator::new(CampusConfig::for_scale(Scale::Tiny), 11).all_traces()
        }

        #[test]
        fn arrivals_are_sorted_and_match_sessions() {
            let cfg = MobilityTrafficConfig { us_per_minute: 1_000, ..Default::default() };
            let traffic = MobilityTraffic::from_traces(&traces(), cfg);
            assert!(!traffic.is_empty());
            assert_eq!(traffic.arrivals().len(), traffic.sessions().len());
            for (a, s) in traffic.arrivals().iter().zip(traffic.sessions()) {
                assert_eq!(a.user_index, s.user);
                assert_eq!(a.at_us, s.absolute_entry() * 1_000);
            }
            for pair in traffic.arrivals().windows(2) {
                assert!(pair[0].at_us <= pair[1].at_us);
            }
        }

        #[test]
        fn stream_is_invariant_under_trace_permutation() {
            let cfg = MobilityTrafficConfig { us_per_minute: 500, ..Default::default() };
            let mut reversed = traces();
            reversed.reverse();
            let a: Vec<Arrival> = MobilityTraffic::from_traces(&traces(), cfg).collect();
            let b: Vec<Arrival> = MobilityTraffic::from_traces(&reversed, cfg).collect();
            assert_eq!(a, b);
        }

        #[test]
        fn window_excludes_the_enrollment_prefix_and_rebases_time() {
            let start = 7 * MINUTES_PER_DAY as u64;
            let cfg = MobilityTrafficConfig {
                us_per_minute: 1_000,
                start_minute: start,
                end_minute: 10 * MINUTES_PER_DAY as u64,
            };
            let traffic = MobilityTraffic::from_traces(&traces(), cfg);
            assert!(!traffic.is_empty(), "tiny scale spans two weeks");
            for s in traffic.sessions() {
                assert!(s.absolute_entry() > start);
                assert!(s.absolute_entry() <= 10 * MINUTES_PER_DAY as u64);
            }
            let first = traffic.arrivals()[0].at_us;
            assert!(first < 2 * MINUTES_PER_DAY as u64 * 1_000, "rebased near zero");
        }

        #[test]
        fn a_user_with_no_second_week_sessions_emits_zero_arrivals() {
            // The live loop's bootstrap/serve split: a user who goes dark
            // after the enrollment week must contribute nothing to the
            // serving window — not panic, and not leak bootstrap-week
            // sessions into the stream.
            let week = 7 * MINUTES_PER_DAY as u64;
            let trace = &traces()[0];
            assert!(
                trace.sessions.iter().any(|s| s.absolute_entry() <= week),
                "the trace has a bootstrap week to (not) leak"
            );
            let first_week_only: Vec<Session> =
                trace.sessions.iter().copied().filter(|s| s.absolute_entry() <= week).collect();
            let cfg = MobilityTrafficConfig {
                us_per_minute: 1_000,
                start_minute: week,
                end_minute: u64::MAX,
            };
            let traffic = MobilityTraffic::from_sessions(first_week_only, cfg);
            assert!(traffic.is_empty(), "no second-week sessions -> no arrivals");
            assert_eq!(traffic.len(), 0);
            assert!(traffic.sessions().is_empty());
            assert_eq!(traffic.collect::<Vec<Arrival>>(), Vec::new(), "iteration just ends");
        }

        #[test]
        fn an_empty_window_produces_zero_arrivals() {
            // start == end is an empty window (start exclusive, end
            // inclusive): every session filters out regardless of trace.
            let cfg = MobilityTrafficConfig {
                us_per_minute: 1_000,
                start_minute: 5 * MINUTES_PER_DAY as u64,
                end_minute: 5 * MINUTES_PER_DAY as u64,
            };
            let traffic = MobilityTraffic::from_traces(&traces(), cfg);
            assert!(traffic.is_empty());
            assert!(traffic.arrivals().is_empty() && traffic.sessions().is_empty());

            // A window past the whole trace is equally silent, and an
            // empty fleet never panics either.
            let far = MobilityTrafficConfig {
                us_per_minute: 1_000,
                start_minute: 1_000 * MINUTES_PER_DAY as u64,
                end_minute: u64::MAX,
            };
            assert!(MobilityTraffic::from_traces(&traces(), far).is_empty());
            assert!(MobilityTraffic::from_traces(&[], MobilityTrafficConfig::default()).is_empty());
        }

        #[test]
        fn the_window_boundary_is_exclusive_start_inclusive_end() {
            let mk = |m: u64| Session {
                user: 0,
                building: 1,
                ap: 1,
                day: (m / MINUTES_PER_DAY as u64) as u32,
                entry_minutes: (m % MINUTES_PER_DAY as u64) as u32,
                duration_minutes: 10,
            };
            let cfg =
                MobilityTrafficConfig { us_per_minute: 1_000, start_minute: 100, end_minute: 200 };
            let traffic = MobilityTraffic::from_sessions([mk(100), mk(101), mk(200), mk(201)], cfg);
            let minutes: Vec<u64> = traffic.sessions().iter().map(|s| s.absolute_entry()).collect();
            assert_eq!(minutes, vec![101, 200], "start excluded, end included");
            assert_eq!(traffic.arrivals()[0].at_us, 1_000, "rebased against the start minute");
        }

        #[test]
        fn campus_nights_leave_diurnal_gaps() {
            // Sessions end at home by 23:00 and wake after 7:00: with a
            // real-time mapping, every day boundary shows an hours-long
            // arrival silence the Zipf generator never produces.
            let cfg = MobilityTrafficConfig { us_per_minute: 60_000_000, ..Default::default() };
            let traffic = MobilityTraffic::from_traces(&traces(), cfg);
            let max_gap =
                traffic.arrivals().windows(2).map(|p| p[1].at_us - p[0].at_us).max().unwrap();
            let four_hours = 4 * 60 * 60_000_000u64;
            assert!(max_gap >= four_hours, "expected an overnight silence, max gap {max_gap}");
        }
    }
}

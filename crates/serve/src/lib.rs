//! **`pelican-serve`** — fleet-scale batched serving for personalized
//! next-location models.
//!
//! The paper's deployment story (Fig. 4, step 3) ends at "on-device or
//! cloud-hosted black-box serving": [`pelican::PelicanService`] answers
//! one query for one enrolled user at a time. This crate grows that step
//! into the ROADMAP's north star — a serving tier shaped like production
//! infrastructure for heavy traffic from a large user fleet — while
//! preserving the reproduction's two core contracts: *determinism* (every
//! run is a pure function of its seeds) and *exactness* (a batched answer
//! is bit-identical to the unbatched answer the paper's experiments
//! measure).
//!
//! Four pieces compose the subsystem:
//!
//! * [`registry`] — an N-shard model store. Personalized models rest as
//!   cold [`pelican_nn::ModelEnvelope`] bytes (the Fig. 4 upload format)
//!   and are decoded into bounded per-shard LRU hot caches on demand;
//!   users who never personalized fall back to the shared general model
//!   `M_G` instead of failing with an unknown-user error.
//! * [`traffic`] — a seeded open-loop generator with Zipf-skewed user
//!   popularity and bursty arrivals, the load shape campus WiFi mobility
//!   actually produces.
//! * [`scheduler`] — size/deadline coalescing of same-shard requests into
//!   batches, executed through the fused
//!   [`pelican_nn::SequenceModel::predict_proba_batch`] kernels with FLOP
//!   accounting attributed to a [`pelican::ComputeTier`]. The per-user
//!   privacy layer (§V-B temperature sharpening) applies per batch row,
//!   which is why batching cannot perturb any user's answers.
//! * [`metrics`] — throughput, batch-size histogram, cache hit rate and
//!   p50/p95/p99 simulated latency, all deterministic.
//!
//! [`fleet::run_fleet`] wires the four together for the `fleet_serve`
//! example and the `serve-report` experiment. With
//! [`fleet::FleetConfig::cloud`] set, the whole tier runs on the
//! [`pelican_sim`] virtual clock via [`simserve`]: queries cross their
//! client's seeded uplink before they can be batched, shard buffers seal
//! on sim timer events, fused batches occupy their shard's compute
//! resource (back-to-back batches queue, and each completion carries a
//! queue/service split), responses return over one shared contended
//! egress link, and the round-trip summary lands in
//! [`fleet::FleetOutcome::network`].
//!
//! # Example
//!
//! ```
//! use pelican_serve::registry::{Lookup, RegistryConfig, ShardedRegistry};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let general = pelican_nn::SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng);
//! let personalized = pelican_nn::SequenceModel::single_lstm(4, 6, 3, 0.0, &mut rng);
//!
//! // Lookups and publications both go through `&self`: bookkeeping is
//! // interior-mutable, so serving threads and a publisher can share one
//! // registry.
//! let registry =
//!     ShardedRegistry::new(general, RegistryConfig { shards: 4, hot_capacity: 16 });
//! registry.enroll(7, &personalized);
//!
//! let (_, first) = registry.get(7).unwrap();
//! assert_eq!(first, Lookup::Cold); // decoded from envelope bytes
//! let (_, second) = registry.get(7).unwrap();
//! assert_eq!(second, Lookup::Hot); // now cached
//! let (_, other) = registry.get(99).unwrap();
//! assert_eq!(other, Lookup::Fallback); // unenrolled -> general model
//! ```

pub mod fleet;
pub mod metrics;
pub mod registry;
pub mod scheduler;
pub mod simserve;
pub mod traffic;

pub use fleet::{run_fleet, CloudNetwork, CloudRtt, FleetConfig, FleetOutcome};
pub use metrics::{MetricsSink, ServeReport};
pub use registry::{Lookup, RegistryConfig, RegistryStats, RollbackError, ShardedRegistry};
pub use scheduler::{Batch, BatchScheduler, Completion, Request, SchedulerConfig, ServeEngine};
pub use simserve::{
    batch_compositions, job_id, serve_harness, simulate_serving, ServeFlow, ServeHarness,
    ServedRequest, SimServeConfig, SimServeOutcome, KIND_SHIFT,
};
pub use traffic::{
    Arrival, MobilityTraffic, MobilityTrafficConfig, TrafficConfig, TrafficGenerator,
};

//! Sharded model registry with a bounded hot cache over cold envelopes.
//!
//! A fleet provider cannot keep millions of decoded per-user LSTMs
//! resident: parameters live as compact [`ModelEnvelope`] bytes (the same
//! wire format devices upload in Fig. 4 step 3) and are decoded on demand.
//! The registry splits the user-id space into `N` shards, each with its
//! own bounded LRU cache of live [`SequenceModel`]s, so a production
//! deployment could put every shard behind its own lock or process without
//! changing the data layout. Users without a personalized model fall back
//! to the shared general model — a degraded-but-valid answer instead of an
//! unknown-user error.
//!
//! All bookkeeping (LRU ticks, hit/miss counters) lives behind per-shard
//! mutexes and atomics, so lookups and publications both work through
//! `&self`: the serving path and the training pipeline's publication
//! channel share one registry without either needing `&mut`. Decoded
//! models are handed out as [`Arc`]s — a reader keeps serving the version
//! it fetched even while a publisher hot-swaps the user's entry, and every
//! publication bumps a monotone version counter so `get` after a publish
//! always observes the newest envelope.
//!
//! # Durable tier
//!
//! A registry built with [`ShardedRegistry::with_store`] gains a third
//! tier below the in-memory envelopes: a crash-safe
//! [`pelican_store::EnvelopeStore`] retaining every user's full version
//! history. Publications become **write-through** — the envelope passes
//! the store's durability barrier *before* it becomes service-visible,
//! so an acknowledged publish survives any crash — and lookups become
//! **read-through**: after a restart the in-memory maps start empty and
//! refill from the log on first touch. History retention is what powers
//! [`ShardedRegistry::rollback`]: re-publishing any retained prior
//! version through the same versioned hot-swap path readers already
//! tolerate.
//!
//! Lock order is registry shard → store shard, everywhere; the store
//! never calls back into the registry, so the pair cannot deadlock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_nn::{ModelCodecError, ModelEnvelope, SequenceModel};
use pelican_store::{EnvelopeStore, StoreError};

/// Sizing knobs for [`ShardedRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Number of shards the user-id space is split across.
    pub shards: usize,
    /// Maximum decoded models resident per shard.
    pub hot_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self { shards: 8, hot_capacity: 64 }
    }
}

/// Where a lookup found the user's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the shard's decoded hot cache.
    Hot,
    /// Decoded from cold envelope bytes on this lookup (a cache miss).
    Cold,
    /// The user has no personalized model; the shared general model
    /// answered.
    Fallback,
}

/// Aggregate cache counters across all shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Lookups answered from a hot cache.
    pub hits: u64,
    /// Lookups that had to decode cold bytes.
    pub misses: u64,
    /// Hot-cache evictions performed.
    pub evictions: u64,
    /// Lookups answered by the general fallback model.
    pub fallbacks: u64,
    /// Envelope publications (initial enrollments and hot-swap updates).
    pub publishes: u64,
    /// Rollbacks performed (each also counts as a publish).
    pub rollbacks: u64,
    /// Decoded models currently resident.
    pub hot_models: usize,
    /// Enrolled envelopes in cold storage.
    pub cold_models: usize,
    /// Version-history depth per shard: with a durable store attached,
    /// the committed versions it retains; without one, the in-memory
    /// registry keeps only each user's current version, so this is the
    /// per-shard enrolled-user count.
    pub history_by_shard: Vec<u64>,
    /// Lookups per labeled cohort (index = cohort id, see
    /// [`ShardedRegistry::set_cohort`]); empty when no cohort was ever
    /// labeled. Lookups from unlabeled users are not counted here.
    pub cohort_queries: Vec<u64>,
    /// Hot-cache hits per labeled cohort, parallel to
    /// [`RegistryStats::cohort_queries`].
    pub cohort_hits: Vec<u64>,
}

impl RegistryStats {
    /// Hot-cache hit rate over personalized lookups (hits + misses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Share of all lookups answered by the general fallback.
    pub fn fallback_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.fallbacks as f64 / total as f64
        }
    }

    /// Total version-history depth across shards.
    pub fn history_total(&self) -> u64 {
        self.history_by_shard.iter().sum()
    }
}

/// Why a [`ShardedRegistry::rollback`] could not complete.
#[derive(Debug)]
pub enum RollbackError {
    /// The registry has no durable store, so no history to roll back to.
    NoStore,
    /// The store retains no committed envelope with this version for the
    /// user (never published, or compacted beyond the retention depth).
    UnknownVersion {
        /// The user whose history was searched.
        user_id: usize,
        /// The requested (missing) version.
        version: u64,
    },
    /// The store failed reading the historical envelope or persisting
    /// the re-publication.
    Store(StoreError),
}

impl std::fmt::Display for RollbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollbackError::NoStore => write!(f, "registry has no durable store attached"),
            RollbackError::UnknownVersion { user_id, version } => {
                write!(f, "user {user_id} has no retained version {version} to roll back to")
            }
            RollbackError::Store(e) => write!(f, "store failure during rollback: {e}"),
        }
    }
}

impl std::error::Error for RollbackError {}

#[derive(Debug, Clone)]
struct HotEntry {
    model: Arc<SequenceModel>,
    last_used: u64,
}

#[derive(Debug, Clone)]
struct ColdEntry {
    envelope: ModelEnvelope,
    version: u64,
}

/// User → cohort labels and the per-cohort traffic counters they drive.
/// One registry-wide table (not per shard): labels are written once per
/// experiment setup and read per lookup, and a single lock keeps the
/// queries/hits vectors trivially consistent.
#[derive(Debug, Clone, Default)]
struct CohortTable {
    labels: HashMap<usize, usize>,
    queries: Vec<u64>,
    hits: Vec<u64>,
}

#[derive(Debug, Clone, Default)]
struct Shard {
    cold: HashMap<usize, ColdEntry>,
    hot: HashMap<usize, HotEntry>,
    /// Monotone per-shard logical clock; each lookup gets a unique tick,
    /// so LRU ordering is total and eviction is deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The fleet's model store: `N` shards of cold envelopes with bounded
/// per-shard hot caches, plus the shared general fallback model.
///
/// Every operation — [`get`](ShardedRegistry::get) on the serving path,
/// [`enroll`](ShardedRegistry::enroll) on the publication path — takes
/// `&self`; a shard's state is guarded by its own mutex, so concurrent
/// readers and one (or more) publishers interleave safely and a published
/// model becomes visible atomically: the cold envelope is replaced and
/// the stale hot copy dropped under one shard lock.
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<Mutex<Shard>>,
    general: Arc<SequenceModel>,
    hot_capacity: usize,
    fallbacks: AtomicU64,
    /// Monotone publication counter; each enrollment gets the next value.
    /// With a store attached it is seeded past the highest committed
    /// version, so monotonicity survives restarts.
    versions: AtomicU64,
    rollbacks: AtomicU64,
    /// Cohort labels + per-cohort traffic counters (A/B experiments).
    cohorts: Mutex<CohortTable>,
    /// Durable cold tier retaining full version history (optional).
    store: Option<Arc<EnvelopeStore>>,
}

impl Clone for ShardedRegistry {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.iter().map(|s| Mutex::new(self.lock(s).clone())).collect(),
            general: Arc::clone(&self.general),
            hot_capacity: self.hot_capacity,
            fallbacks: AtomicU64::new(self.fallbacks.load(Ordering::Relaxed)),
            versions: AtomicU64::new(self.versions.load(Ordering::Relaxed)),
            rollbacks: AtomicU64::new(self.rollbacks.load(Ordering::Relaxed)),
            cohorts: Mutex::new(self.cohorts.lock().expect("cohort mutex poisoned").clone()),
            store: self.store.clone(),
        }
    }
}

impl ShardedRegistry {
    /// Creates a registry around the shared general (fallback) model.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.hot_capacity` is zero.
    pub fn new(general: SequenceModel, config: RegistryConfig) -> Self {
        assert!(config.shards > 0, "registry needs at least one shard");
        assert!(config.hot_capacity > 0, "hot cache capacity must be positive");
        Self {
            shards: (0..config.shards).map(|_| Mutex::new(Shard::default())).collect(),
            general: Arc::new(general),
            hot_capacity: config.hot_capacity,
            fallbacks: AtomicU64::new(0),
            versions: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            cohorts: Mutex::new(CohortTable::default()),
            store: None,
        }
    }

    /// Creates a registry whose cold tier is a durable
    /// [`EnvelopeStore`]: publications are write-through (durable before
    /// visible), lookups read through to the log on an in-memory miss,
    /// and the publication version counter resumes past the highest
    /// committed version the store replayed — so a registry reopened
    /// over yesterday's log serves yesterday's models at tomorrow's
    /// version numbers.
    ///
    /// # Panics
    ///
    /// Panics on zero sizing knobs (as [`ShardedRegistry::new`]) and
    /// when the store's shard count differs from `config.shards` —
    /// both sides shard by `user % shards`, and aligned shards keep
    /// [`RegistryStats::history_by_shard`] meaningful.
    pub fn with_store(
        general: SequenceModel,
        config: RegistryConfig,
        store: Arc<EnvelopeStore>,
    ) -> Self {
        assert_eq!(
            store.shard_count(),
            config.shards,
            "store and registry must agree on the shard count"
        );
        let mut registry = Self::new(general, config);
        registry.versions = AtomicU64::new(store.max_version());
        registry.store = Some(store);
        registry
    }

    /// The durable store behind this registry, when one is attached.
    pub fn store(&self) -> Option<&Arc<EnvelopeStore>> {
        self.store.as_ref()
    }

    fn lock<'a>(&'a self, shard: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        shard.lock().expect("registry shard mutex poisoned")
    }

    /// Number of shards. The scheduler must coalesce with the same shard
    /// function ([`ShardedRegistry::shard_of`]) for batches to stay
    /// shard-local.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a user's model lives on.
    pub fn shard_of(&self, user_id: usize) -> usize {
        user_id % self.shards.len()
    }

    /// Borrows the shared general fallback model.
    pub fn general(&self) -> &SequenceModel {
        &self.general
    }

    /// Labels a user as belonging to cohort `cohort` (a small dense
    /// index, e.g. arm A = 0, arm B = 1, holdout = 2). Subsequent
    /// lookups for the user are tallied into
    /// [`RegistryStats::cohort_queries`] / `cohort_hits`, so an A/B
    /// experiment's traffic split is observable straight from the
    /// registry instead of being re-derived from traces. Re-labeling
    /// moves the user; past counts stay where they were earned.
    pub fn set_cohort(&self, user_id: usize, cohort: usize) {
        let mut table = self.lock_cohorts();
        if table.queries.len() <= cohort {
            table.queries.resize(cohort + 1, 0);
            table.hits.resize(cohort + 1, 0);
        }
        table.labels.insert(user_id, cohort);
    }

    /// The cohort a user is labeled with, if any.
    pub fn cohort_of(&self, user_id: usize) -> Option<usize> {
        self.lock_cohorts().labels.get(&user_id).copied()
    }

    fn lock_cohorts(&self) -> MutexGuard<'_, CohortTable> {
        self.cohorts.lock().expect("cohort mutex poisoned")
    }

    /// Tallies one lookup into its user's cohort (taken *after* the
    /// shard lock is released; the table has its own lock).
    fn note_cohort_lookup(&self, user_id: usize, lookup: Lookup) {
        let mut table = self.lock_cohorts();
        if let Some(&c) = table.labels.get(&user_id) {
            table.queries[c] += 1;
            if lookup == Lookup::Hot {
                table.hits[c] += 1;
            }
        }
    }

    /// The single internal publication path every enrollment, hot-swap
    /// update and rollback funnels through.
    ///
    /// Under the shard lock: allocate the next monotone version, make it
    /// durable (when a store is attached, [`EnvelopeStore::append`]
    /// returns only after its durability barrier — the envelope is on
    /// "disk" *before* it is service-visible), then atomically swap the
    /// cold envelope and drop the stale hot copy. Two publishers racing
    /// on one user serialize on the shard lock and commit in version
    /// order; a failed durable append burns the version number but
    /// publishes nothing.
    fn publish(&self, user_id: usize, envelope: ModelEnvelope) -> Result<u64, StoreError> {
        let mut shard = self.lock(&self.shards[self.shard_of(user_id)]);
        // Allocate the version *under* the shard lock: two publishers
        // racing on the same user then commit in version order, so the
        // entry that wins the map insert is always the higher version.
        let version = self.versions.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(store) = &self.store {
            store.append(user_id as u64, version, &envelope)?;
        }
        shard.cold.insert(user_id, ColdEntry { envelope, version });
        shard.hot.remove(&user_id);
        Ok(version)
    }

    /// Enrolls (or replaces) a user's personalized model: the model is
    /// encoded to cold envelope bytes and any stale hot copy is dropped,
    /// so the next lookup decodes the fresh parameters. Returns the
    /// publication version assigned to this model (monotone across the
    /// whole registry).
    ///
    /// # Panics
    ///
    /// Panics if a durable store is attached and its backend fails (use
    /// [`ShardedRegistry::try_enroll_envelope`] to handle that).
    pub fn enroll(&self, user_id: usize, model: &SequenceModel) -> u64 {
        let envelope = ModelEnvelope::encode(model);
        self.enroll_envelope(user_id, envelope)
    }

    /// Enrolls a user directly from uploaded envelope bytes (the on-device
    /// personalization upload path, and the training pipeline's hot-swap
    /// publication channel). The swap is atomic with respect to lookups:
    /// under the shard lock, the cold envelope is replaced and the stale
    /// hot copy removed, so no subsequent `get` can observe an older
    /// version. Returns the assigned publication version.
    ///
    /// # Panics
    ///
    /// Panics if a durable store is attached and its backend fails (use
    /// [`ShardedRegistry::try_enroll_envelope`] to handle that).
    pub fn enroll_envelope(&self, user_id: usize, envelope: ModelEnvelope) -> u64 {
        self.publish(user_id, envelope).expect("durable publication failed")
    }

    /// Fallible twin of [`ShardedRegistry::enroll_envelope`] for callers
    /// that must survive storage-backend failures.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the durable append fails; the
    /// publication is not visible in that case.
    pub fn try_enroll_envelope(
        &self,
        user_id: usize,
        envelope: ModelEnvelope,
    ) -> Result<u64, StoreError> {
        self.publish(user_id, envelope)
    }

    /// Rolls a user back to a retained historical version by
    /// re-publishing that envelope through the same versioned hot-swap
    /// path as any other publication: the rollback gets a **new**
    /// monotone version number (history records what was served when),
    /// becomes durable before visible, and in-flight readers finish on
    /// whatever version they already hold. Returns the new version.
    ///
    /// # Errors
    ///
    /// [`RollbackError::NoStore`] without a durable store;
    /// [`RollbackError::UnknownVersion`] when the target version is not
    /// retained (never published or compacted away);
    /// [`RollbackError::Store`] on backend failure.
    pub fn rollback(&self, user_id: usize, version: u64) -> Result<u64, RollbackError> {
        let store = self.store.as_ref().ok_or(RollbackError::NoStore)?;
        // Fetch outside the registry shard lock (lock order is registry
        // shard -> store shard; this takes only the latter).
        let envelope = store.fetch(user_id as u64, version).map_err(|e| match e {
            StoreError::UnknownVersion { user, version } => {
                RollbackError::UnknownVersion { user_id: user as usize, version }
            }
            other => RollbackError::Store(other),
        })?;
        let new_version = self.publish(user_id, envelope).map_err(RollbackError::Store)?;
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        Ok(new_version)
    }

    /// Bulk enrollment from an experiment [`Scenario`]: every
    /// personalization user's model is installed, with the user's privacy
    /// layer applied *before* the model becomes service-visible (the
    /// general fallback stays unsharpened — it is provider-owned and holds
    /// no personal data). Returns the number of users enrolled.
    pub fn enroll_scenario(&self, scenario: &Scenario, privacy: Option<PrivacyLayer>) -> usize {
        for user in &scenario.personal {
            let mut model = user.model.clone();
            if let Some(layer) = privacy {
                layer.apply(&mut model);
            }
            self.enroll(user.user_id, &model);
        }
        scenario.personal.len()
    }

    /// Whether a personalized model is enrolled for the user (in memory
    /// or, after a restart, still waiting in the durable log).
    pub fn is_enrolled(&self, user_id: usize) -> bool {
        if self.lock(&self.shards[self.shard_of(user_id)]).cold.contains_key(&user_id) {
            return true;
        }
        self.store.as_ref().is_some_and(|s| s.contains(user_id as u64))
    }

    /// The publication version of the user's current model, or `None` if
    /// the user never enrolled. Consults the durable log when the
    /// in-memory tier has not been warmed since a restart.
    pub fn version_of(&self, user_id: usize) -> Option<u64> {
        let from_memory =
            self.lock(&self.shards[self.shard_of(user_id)]).cold.get(&user_id).map(|e| e.version);
        from_memory.or_else(|| self.store.as_ref().and_then(|s| s.latest_version(user_id as u64)))
    }

    /// Looks up the model that should answer a user's query, decoding cold
    /// bytes (and evicting the least-recently-used hot entry) on a miss.
    /// Unenrolled users get the shared general model.
    ///
    /// The returned [`Arc`] stays valid even if the user's model is
    /// re-published mid-request — the reader finishes on the version it
    /// fetched, the next lookup observes the new one.
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] if the user's stored envelope is
    /// corrupt.
    pub fn get(&self, user_id: usize) -> Result<(Arc<SequenceModel>, Lookup), ModelCodecError> {
        let capacity = self.hot_capacity;
        let mut shard = self.lock(&self.shards[self.shard_of(user_id)]);
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.hot.get_mut(&user_id) {
            entry.last_used = tick;
            let model = Arc::clone(&entry.model);
            shard.hits += 1;
            drop(shard);
            self.note_cohort_lookup(user_id, Lookup::Hot);
            return Ok((model, Lookup::Hot));
        }
        // In-memory cold miss: read through to the durable log (a
        // restarted registry starts with empty maps and refills them on
        // first touch). The store fetch happens under the registry shard
        // lock, so no publisher can interleave a newer version between
        // the fetch and the cache fill. Store I/O failures degrade to
        // the fallback model rather than erroring the serving path.
        let from_store = match shard.cold.get(&user_id) {
            Some(entry) => Some((entry.envelope.clone(), entry.version)),
            None => self.store.as_ref().and_then(|store| {
                let version = store.latest_version(user_id as u64)?;
                let envelope = store.fetch(user_id as u64, version).ok()?;
                Some((envelope, version))
            }),
        };
        if let Some((envelope, version)) = from_store {
            let model = Arc::new(envelope.decode()?);
            shard.cold.insert(user_id, ColdEntry { envelope, version });
            shard.misses += 1;
            if shard.hot.len() >= capacity {
                let (&lru, _) = shard
                    .hot
                    .iter()
                    .min_by_key(|(&uid, entry)| (entry.last_used, uid))
                    .expect("cache at capacity is nonempty");
                shard.hot.remove(&lru);
                shard.evictions += 1;
            }
            shard.hot.insert(user_id, HotEntry { model: Arc::clone(&model), last_used: tick });
            drop(shard);
            self.note_cohort_lookup(user_id, Lookup::Cold);
            return Ok((model, Lookup::Cold));
        }
        drop(shard);
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.note_cohort_lookup(user_id, Lookup::Fallback);
        Ok((Arc::clone(&self.general), Lookup::Fallback))
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats {
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            publishes: self.versions.load(Ordering::Relaxed),
            rollbacks: self.rollbacks.load(Ordering::Relaxed),
            ..RegistryStats::default()
        };
        for shard in &self.shards {
            let shard = self.lock(shard);
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.evictions += shard.evictions;
            stats.hot_models += shard.hot.len();
            stats.cold_models += shard.cold.len();
            stats.history_by_shard.push(shard.cold.len() as u64);
        }
        if let Some(store) = &self.store {
            // Shard counts are aligned (asserted in `with_store`), so the
            // store's retained-history depths replace the 1-version-deep
            // in-memory view shard for shard.
            stats.history_by_shard = store.stats().retained_by_shard;
        }
        let cohorts = self.lock_cohorts();
        stats.cohort_queries = cohorts.queries.clone();
        stats.cohort_hits = cohorts.hits.clone();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        SequenceModel::single_lstm(4, 5, 3, 0.0, &mut rng)
    }

    fn registry(shards: usize, hot_capacity: usize) -> ShardedRegistry {
        ShardedRegistry::new(model(0), RegistryConfig { shards, hot_capacity })
    }

    #[test]
    fn lookup_paths_hit_miss_fallback() {
        let r = registry(4, 2);
        r.enroll(9, &model(9));
        assert!(r.is_enrolled(9));

        let (_, first) = r.get(9).unwrap();
        assert_eq!(first, Lookup::Cold, "first touch decodes cold bytes");
        let (_, second) = r.get(9).unwrap();
        assert_eq!(second, Lookup::Hot);

        let (fallback, kind) = r.get(1234).unwrap();
        assert_eq!(kind, Lookup::Fallback);
        assert_eq!(fallback.output_dim(), r.general().output_dim());

        let stats = r.stats();
        assert_eq!((stats.hits, stats.misses, stats.fallbacks), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn lookups_work_through_a_shared_reference() {
        // The whole point of the interior-mutability refactor: concurrent
        // serving threads and a publisher share one `&ShardedRegistry`.
        let r = registry(2, 2);
        r.enroll(1, &model(1));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        r.get(1).unwrap();
                        r.get(99).unwrap();
                    }
                });
            }
            s.spawn(|| {
                for round in 0..20 {
                    r.enroll(1, &model(round));
                }
            });
        });
        let stats = r.stats();
        assert_eq!(stats.hits + stats.misses, 200, "every personalized lookup is counted");
        assert_eq!(stats.fallbacks, 200);
        assert_eq!(stats.publishes, 21);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Users 0, 4, 8 all land on shard 0 of a 4-shard registry.
        let r = registry(4, 2);
        for uid in [0usize, 4, 8] {
            r.enroll(uid, &model(uid as u64));
        }
        r.get(0).unwrap();
        r.get(4).unwrap();
        r.get(0).unwrap(); // 0 is now more recent than 4
        r.get(8).unwrap(); // capacity 2: must evict 4
        let stats = r.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hot_models, 2);
        let (_, kind) = r.get(0).unwrap();
        assert_eq!(kind, Lookup::Hot, "recently used survivor stays hot");
        let (_, kind) = r.get(4).unwrap();
        assert_eq!(kind, Lookup::Cold, "evicted model decodes again");
    }

    #[test]
    fn decoded_model_answers_like_the_original() {
        let r = registry(2, 4);
        let mut m = model(7);
        // Deployed defenses (temperature + post-processing) must survive
        // the cold-storage round trip, not just the weights.
        m.set_temperature(1e-2);
        m.set_postprocess(pelican_nn::Postprocess::Round { decimals: 2 });
        r.enroll(3, &m);
        let xs = vec![vec![0.2; 4]; 2];
        let (served, _) = r.get(3).unwrap();
        assert_eq!(served.predict_proba(&xs), m.predict_proba(&xs));
    }

    #[test]
    fn re_enrollment_replaces_the_hot_copy_and_bumps_the_version() {
        let r = registry(2, 4);
        let v1 = r.enroll(5, &model(1));
        r.get(5).unwrap();
        let replacement = model(2);
        let v2 = r.enroll(5, &replacement);
        assert!(v2 > v1, "publication versions are monotone");
        assert_eq!(r.version_of(5), Some(v2));
        assert_eq!(r.version_of(1234), None);
        let xs = vec![vec![0.1; 4]];
        let (served, kind) = r.get(5).unwrap();
        assert_eq!(kind, Lookup::Cold, "stale hot copy was dropped");
        assert_eq!(served.predict_proba(&xs), replacement.predict_proba(&xs));
    }

    #[test]
    fn readers_keep_their_version_across_a_hot_swap() {
        let r = registry(2, 4);
        let old = model(3);
        r.enroll(6, &old);
        let (held, _) = r.get(6).unwrap();
        r.enroll(6, &model(4)); // hot-swap while `held` is still in use
        let xs = vec![vec![0.3; 4]; 2];
        assert_eq!(held.predict_proba(&xs), old.predict_proba(&xs), "reader finishes on v1");
        let (fresh, _) = r.get(6).unwrap();
        assert_eq!(fresh.predict_proba(&xs), model(4).predict_proba(&xs), "next get sees v2");
    }

    #[test]
    fn cohort_counters_split_traffic_by_label() {
        let r = registry(2, 2);
        r.enroll(1, &model(1));
        r.enroll(2, &model(2));
        r.set_cohort(1, 0); // arm A
        r.set_cohort(2, 1); // arm B
        r.set_cohort(7, 2); // holdout, unenrolled -> fallback lookups

        r.get(1).unwrap(); // cold
        r.get(1).unwrap(); // hot
        r.get(2).unwrap(); // cold
        r.get(7).unwrap(); // fallback
        r.get(99).unwrap(); // unlabeled: counted nowhere

        assert_eq!(r.cohort_of(1), Some(0));
        assert_eq!(r.cohort_of(99), None);
        let stats = r.stats();
        assert_eq!(stats.cohort_queries, vec![2, 1, 1]);
        assert_eq!(stats.cohort_hits, vec![1, 0, 0]);
        assert_eq!(stats.hits + stats.misses + stats.fallbacks, 5);

        // The clone carries labels and counters with it.
        let twin = r.clone();
        assert_eq!(twin.stats().cohort_queries, vec![2, 1, 1]);
        assert_eq!(twin.cohort_of(2), Some(1));

        // Re-labeling moves the user; earned counts stay put.
        r.set_cohort(2, 0);
        r.get(2).unwrap();
        let stats = r.stats();
        assert_eq!(stats.cohort_queries, vec![3, 1, 1]);
    }

    #[test]
    fn unlabeled_registries_report_empty_cohorts() {
        let r = registry(2, 2);
        r.enroll(1, &model(1));
        r.get(1).unwrap();
        let stats = r.stats();
        assert!(stats.cohort_queries.is_empty() && stats.cohort_hits.is_empty());
    }

    #[test]
    fn shard_function_partitions_users() {
        let r = registry(4, 2);
        assert_eq!(r.shard_count(), 4);
        for uid in 0..16 {
            assert_eq!(r.shard_of(uid), uid % 4);
        }
    }

    mod durable {
        use super::*;
        use pelican_store::{MemBackend, StoreConfig};

        fn durable_registry(disk: &MemBackend, shards: usize) -> ShardedRegistry {
            let store = EnvelopeStore::open(
                Arc::new(disk.clone()),
                StoreConfig { shards, ..StoreConfig::default() },
            )
            .expect("open store");
            ShardedRegistry::with_store(
                model(0),
                RegistryConfig { shards, hot_capacity: 4 },
                Arc::new(store),
            )
        }

        #[test]
        fn publications_survive_a_restart_with_monotone_versions() {
            let disk = MemBackend::new();
            let r = durable_registry(&disk, 2);
            let m = model(9);
            let v1 = r.enroll(9, &m);
            let v2 = r.enroll(9, &model(10));
            assert!(v2 > v1);
            drop(r); // the process "exits"; the disk survives

            let r = durable_registry(&disk, 2);
            assert!(r.is_enrolled(9), "durable log answers before any warmup");
            assert_eq!(r.version_of(9), Some(v2));
            let (_, kind) = r.get(9).unwrap();
            assert_eq!(kind, Lookup::Cold, "read-through refill from the log");
            let (_, kind) = r.get(9).unwrap();
            assert_eq!(kind, Lookup::Hot);
            // Versions keep climbing from where the log left off.
            let v3 = r.enroll(9, &model(11));
            assert!(v3 > v2, "restarted counter resumes past the log's max");
        }

        #[test]
        fn rollback_republishes_history_through_the_hot_swap_path() {
            let disk = MemBackend::new();
            let r = durable_registry(&disk, 2);
            let good = model(1);
            let v1 = r.enroll(4, &good);
            r.get(4).unwrap(); // warm the hot cache with v1... then regress:
            let v2 = r.enroll(4, &model(2));
            assert_eq!(r.version_of(4), Some(v2));

            let v3 = r.rollback(4, v1).expect("v1 is retained");
            assert!(v3 > v2, "rollback is a fresh publication, not a rewind");
            assert_eq!(r.version_of(4), Some(v3));
            let xs = vec![vec![0.2; 4]; 2];
            let (served, kind) = r.get(4).unwrap();
            assert_eq!(kind, Lookup::Cold, "rollback dropped the stale hot copy");
            assert_eq!(served.predict_proba(&xs), good.predict_proba(&xs));

            let stats = r.stats();
            assert_eq!(stats.rollbacks, 1);
            assert_eq!(stats.publishes, 3);
            assert_eq!(stats.history_total(), 3, "all three publications retained");
            assert_eq!(stats.history_by_shard.len(), 2);

            // The rollback itself is durable: a restart serves v1's weights.
            drop(r);
            let r = durable_registry(&disk, 2);
            let (served, _) = r.get(4).unwrap();
            assert_eq!(served.predict_proba(&xs), good.predict_proba(&xs));
        }

        #[test]
        fn rollback_errors_are_precise() {
            let disk = MemBackend::new();
            let r = durable_registry(&disk, 2);
            assert!(matches!(
                r.rollback(1, 1),
                Err(RollbackError::UnknownVersion { user_id: 1, version: 1 })
            ));
            let plain = registry(2, 2);
            assert!(matches!(plain.rollback(1, 1), Err(RollbackError::NoStore)));
        }

        #[test]
        fn history_by_shard_without_a_store_counts_current_versions() {
            let r = registry(2, 2);
            r.enroll(0, &model(1));
            r.enroll(2, &model(2));
            r.enroll(3, &model(3));
            let stats = r.stats();
            assert_eq!(stats.history_by_shard, vec![2, 1]);
            assert_eq!(stats.history_total(), 3);
        }
    }
}

//! Sharded model registry with a bounded hot cache over cold envelopes.
//!
//! A fleet provider cannot keep millions of decoded per-user LSTMs
//! resident: parameters live as compact [`ModelEnvelope`] bytes (the same
//! wire format devices upload in Fig. 4 step 3) and are decoded on demand.
//! The registry splits the user-id space into `N` shards, each with its
//! own bounded LRU cache of live [`SequenceModel`]s, so a production
//! deployment could put every shard behind its own lock or process without
//! changing the data layout. Users without a personalized model fall back
//! to the shared general model — a degraded-but-valid answer instead of an
//! unknown-user error.

use std::collections::HashMap;

use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_nn::{ModelCodecError, ModelEnvelope, SequenceModel};

/// Sizing knobs for [`ShardedRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryConfig {
    /// Number of shards the user-id space is split across.
    pub shards: usize,
    /// Maximum decoded models resident per shard.
    pub hot_capacity: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self { shards: 8, hot_capacity: 64 }
    }
}

/// Where a lookup found the user's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the shard's decoded hot cache.
    Hot,
    /// Decoded from cold envelope bytes on this lookup (a cache miss).
    Cold,
    /// The user has no personalized model; the shared general model
    /// answered.
    Fallback,
}

/// Aggregate cache counters across all shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegistryStats {
    /// Lookups answered from a hot cache.
    pub hits: u64,
    /// Lookups that had to decode cold bytes.
    pub misses: u64,
    /// Hot-cache evictions performed.
    pub evictions: u64,
    /// Lookups answered by the general fallback model.
    pub fallbacks: u64,
    /// Decoded models currently resident.
    pub hot_models: usize,
    /// Enrolled envelopes in cold storage.
    pub cold_models: usize,
}

impl RegistryStats {
    /// Hot-cache hit rate over personalized lookups (hits + misses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Share of all lookups answered by the general fallback.
    pub fn fallback_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.fallbacks as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct HotEntry {
    model: SequenceModel,
    last_used: u64,
}

#[derive(Debug, Clone, Default)]
struct Shard {
    cold: HashMap<usize, ModelEnvelope>,
    hot: HashMap<usize, HotEntry>,
    /// Monotone per-shard logical clock; each lookup gets a unique tick,
    /// so LRU ordering is total and eviction is deterministic.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The fleet's model store: `N` shards of cold envelopes with bounded
/// per-shard hot caches, plus the shared general fallback model.
#[derive(Debug, Clone)]
pub struct ShardedRegistry {
    shards: Vec<Shard>,
    general: SequenceModel,
    hot_capacity: usize,
    fallbacks: u64,
}

impl ShardedRegistry {
    /// Creates a registry around the shared general (fallback) model.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.hot_capacity` is zero.
    pub fn new(general: SequenceModel, config: RegistryConfig) -> Self {
        assert!(config.shards > 0, "registry needs at least one shard");
        assert!(config.hot_capacity > 0, "hot cache capacity must be positive");
        Self {
            shards: vec![Shard::default(); config.shards],
            general,
            hot_capacity: config.hot_capacity,
            fallbacks: 0,
        }
    }

    /// Number of shards. The scheduler must coalesce with the same shard
    /// function ([`ShardedRegistry::shard_of`]) for batches to stay
    /// shard-local.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a user's model lives on.
    pub fn shard_of(&self, user_id: usize) -> usize {
        user_id % self.shards.len()
    }

    /// Borrows the shared general fallback model.
    pub fn general(&self) -> &SequenceModel {
        &self.general
    }

    /// Enrolls (or replaces) a user's personalized model: the model is
    /// encoded to cold envelope bytes and any stale hot copy is dropped,
    /// so the next lookup decodes the fresh parameters.
    pub fn enroll(&mut self, user_id: usize, model: &SequenceModel) {
        let envelope = ModelEnvelope::encode(model);
        self.enroll_envelope(user_id, envelope);
    }

    /// Enrolls a user directly from uploaded envelope bytes (the on-device
    /// personalization upload path).
    pub fn enroll_envelope(&mut self, user_id: usize, envelope: ModelEnvelope) {
        let sid = self.shard_of(user_id);
        let shard = &mut self.shards[sid];
        shard.cold.insert(user_id, envelope);
        shard.hot.remove(&user_id);
    }

    /// Bulk enrollment from an experiment [`Scenario`]: every
    /// personalization user's model is installed, with the user's privacy
    /// layer applied *before* the model becomes service-visible (the
    /// general fallback stays unsharpened — it is provider-owned and holds
    /// no personal data). Returns the number of users enrolled.
    pub fn enroll_scenario(&mut self, scenario: &Scenario, privacy: Option<PrivacyLayer>) -> usize {
        for user in &scenario.personal {
            let mut model = user.model.clone();
            if let Some(layer) = privacy {
                layer.apply(&mut model);
            }
            self.enroll(user.user_id, &model);
        }
        scenario.personal.len()
    }

    /// Whether a personalized model is enrolled for the user.
    pub fn is_enrolled(&self, user_id: usize) -> bool {
        self.shards[self.shard_of(user_id)].cold.contains_key(&user_id)
    }

    /// Looks up the model that should answer a user's query, decoding cold
    /// bytes (and evicting the least-recently-used hot entry) on a miss.
    /// Unenrolled users get the shared general model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] if the user's stored envelope is
    /// corrupt.
    pub fn get(&mut self, user_id: usize) -> Result<(&SequenceModel, Lookup), ModelCodecError> {
        let sid = self.shard_of(user_id);
        let capacity = self.hot_capacity;
        let shard = &mut self.shards[sid];
        shard.tick += 1;
        let tick = shard.tick;
        let lookup = if let Some(entry) = shard.hot.get_mut(&user_id) {
            entry.last_used = tick;
            shard.hits += 1;
            Lookup::Hot
        } else if let Some(envelope) = shard.cold.get(&user_id) {
            let model = envelope.decode()?;
            shard.misses += 1;
            if shard.hot.len() >= capacity {
                let (&lru, _) = shard
                    .hot
                    .iter()
                    .min_by_key(|(&uid, entry)| (entry.last_used, uid))
                    .expect("cache at capacity is nonempty");
                shard.hot.remove(&lru);
                shard.evictions += 1;
            }
            shard.hot.insert(user_id, HotEntry { model, last_used: tick });
            Lookup::Cold
        } else {
            self.fallbacks += 1;
            return Ok((&self.general, Lookup::Fallback));
        };
        let model = &self.shards[sid].hot.get(&user_id).expect("hit or just inserted").model;
        Ok((model, lookup))
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> RegistryStats {
        let mut stats = RegistryStats { fallbacks: self.fallbacks, ..RegistryStats::default() };
        for shard in &self.shards {
            stats.hits += shard.hits;
            stats.misses += shard.misses;
            stats.evictions += shard.evictions;
            stats.hot_models += shard.hot.len();
            stats.cold_models += shard.cold.len();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        SequenceModel::single_lstm(4, 5, 3, 0.0, &mut rng)
    }

    fn registry(shards: usize, hot_capacity: usize) -> ShardedRegistry {
        ShardedRegistry::new(model(0), RegistryConfig { shards, hot_capacity })
    }

    #[test]
    fn lookup_paths_hit_miss_fallback() {
        let mut r = registry(4, 2);
        r.enroll(9, &model(9));
        assert!(r.is_enrolled(9));

        let (_, first) = r.get(9).unwrap();
        assert_eq!(first, Lookup::Cold, "first touch decodes cold bytes");
        let (_, second) = r.get(9).unwrap();
        assert_eq!(second, Lookup::Hot);

        let (fallback, kind) = r.get(1234).unwrap();
        assert_eq!(kind, Lookup::Fallback);
        assert_eq!(fallback.output_dim(), r.general().output_dim());

        let stats = r.stats();
        assert_eq!((stats.hits, stats.misses, stats.fallbacks), (1, 1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Users 0, 4, 8 all land on shard 0 of a 4-shard registry.
        let mut r = registry(4, 2);
        for uid in [0usize, 4, 8] {
            r.enroll(uid, &model(uid as u64));
        }
        r.get(0).unwrap();
        r.get(4).unwrap();
        r.get(0).unwrap(); // 0 is now more recent than 4
        r.get(8).unwrap(); // capacity 2: must evict 4
        let stats = r.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.hot_models, 2);
        let (_, kind) = r.get(0).unwrap();
        assert_eq!(kind, Lookup::Hot, "recently used survivor stays hot");
        let (_, kind) = r.get(4).unwrap();
        assert_eq!(kind, Lookup::Cold, "evicted model decodes again");
    }

    #[test]
    fn decoded_model_answers_like_the_original() {
        let mut r = registry(2, 4);
        let mut m = model(7);
        // Deployed defenses (temperature + post-processing) must survive
        // the cold-storage round trip, not just the weights.
        m.set_temperature(1e-2);
        m.set_postprocess(pelican_nn::Postprocess::Round { decimals: 2 });
        r.enroll(3, &m);
        let xs = vec![vec![0.2; 4]; 2];
        let (served, _) = r.get(3).unwrap();
        assert_eq!(served.predict_proba(&xs), m.predict_proba(&xs));
    }

    #[test]
    fn re_enrollment_replaces_the_hot_copy() {
        let mut r = registry(2, 4);
        r.enroll(5, &model(1));
        r.get(5).unwrap();
        let replacement = model(2);
        r.enroll(5, &replacement);
        let xs = vec![vec![0.1; 4]];
        let (served, kind) = r.get(5).unwrap();
        assert_eq!(kind, Lookup::Cold, "stale hot copy was dropped");
        assert_eq!(served.predict_proba(&xs), replacement.predict_proba(&xs));
    }

    #[test]
    fn shard_function_partitions_users() {
        let r = registry(4, 2);
        assert_eq!(r.shard_count(), 4);
        for uid in 0..16 {
            assert_eq!(r.shard_of(uid), uid % 4);
        }
    }
}

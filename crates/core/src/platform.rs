//! Simulated device/cloud platform: compute tiers and the network between
//! them.
//!
//! The paper's overhead evaluation (§V-C2) compares general-model training
//! on a Titan-X cloud server (~43,000 billion CPU cycles, 4.55 h) against
//! per-user personalization on a low-end 2.2 GHz CPU (~15 billion cycles,
//! ~6.6 s). We have neither machine, so the workspace counts the FLOPs
//! every kernel performs (see [`pelican_tensor::flops`]) and converts them
//! into *simulated* cycles and wall time per tier. The conversion constants
//! are fixed, so the reproduced comparison is deterministic and
//! machine-independent; what carries over from the paper is the *ratio*
//! between tiers, not absolute seconds.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use pelican_nn::ModelEnvelope;
use pelican_sim::LinkProfile;
use pelican_tensor::{FlopGuard, ThreadFlopGuard};

/// Where a computation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeTier {
    /// A GPU-equipped cloud server (the paper's Titan-X box).
    Cloud,
    /// A resource-constrained mobile/edge device (the paper's 2.2 GHz CPU).
    Device,
}

impl ComputeTier {
    /// Useful floating-point operations retired per simulated cycle.
    ///
    /// The cloud tier models a GPU-accelerated server (wide SIMD + many
    /// cores fused into one "cycle" budget); the device tier a single
    /// low-power core.
    pub fn flops_per_cycle(self) -> f64 {
        match self {
            ComputeTier::Cloud => 64.0,
            ComputeTier::Device => 2.0,
        }
    }

    /// Simulated clock frequency in Hz.
    pub fn clock_hz(self) -> f64 {
        match self {
            ComputeTier::Cloud => 2.6e9,
            ComputeTier::Device => 2.2e9,
        }
    }
}

impl std::fmt::Display for ComputeTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeTier::Cloud => write!(f, "cloud"),
            ComputeTier::Device => write!(f, "device"),
        }
    }
}

/// Resources consumed by one measured computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Floating-point operations actually performed.
    pub flops: u64,
    /// Simulated CPU cycles on the tier that ran the computation.
    pub cycles: u64,
    /// Simulated wall-clock time on that tier.
    pub simulated: Duration,
    /// Real wall-clock time on the host running the simulation.
    pub host_elapsed: Duration,
}

impl ResourceUsage {
    /// Simulated cycles expressed in billions (the paper's unit).
    pub fn cycles_billions(&self) -> f64 {
        self.cycles as f64 / 1e9
    }

    /// Adds another usage record (e.g. aggregate over users).
    pub fn accumulate(&mut self, other: &ResourceUsage) {
        self.flops += other.flops;
        self.cycles += other.cycles;
        self.simulated += other.simulated;
        self.host_elapsed += other.host_elapsed;
    }

    /// A zeroed record for accumulation.
    pub fn zero() -> Self {
        Self { flops: 0, cycles: 0, simulated: Duration::ZERO, host_elapsed: Duration::ZERO }
    }
}

/// Runs `f`, attributing its floating-point work to `tier`.
///
/// Returns the closure's output along with the resources consumed.
/// Measurement nests safely (the FLOP counter is a global monotone
/// counter), but concurrent measurements attribute interleaved work to
/// both scopes — run experiments sequentially when exact cycle counts
/// matter.
pub fn measure<T>(tier: ComputeTier, f: impl FnOnce() -> T) -> (T, ResourceUsage) {
    let guard = FlopGuard::start();
    let wall = std::time::Instant::now();
    let out = f();
    let host_elapsed = wall.elapsed();
    let flops = guard.stop();
    (out, usage_of(tier, flops, host_elapsed))
}

/// Runs `f`, attributing only *this thread's* floating-point work to
/// `tier`.
///
/// Unlike [`measure`], concurrent measurements on other threads do not
/// interleave: each thread mirrors its own FLOP contributions, so a
/// worker pool can measure per-job costs that are bit-identical for any
/// pool width. The closure must not spawn threads of its own — work done
/// elsewhere is not attributed.
pub fn measure_thread<T>(tier: ComputeTier, f: impl FnOnce() -> T) -> (T, ResourceUsage) {
    let guard = ThreadFlopGuard::start();
    let wall = std::time::Instant::now();
    let out = f();
    let host_elapsed = wall.elapsed();
    let flops = guard.stop();
    (out, usage_of(tier, flops, host_elapsed))
}

/// Converts an already-measured FLOP count (and host wall time) into the
/// [`ResourceUsage`] a [`measure`] call around the same work would
/// report.
///
/// The lockstep trainer pool measures per-user FLOPs *inside* a fused
/// cohort (via per-user thread-counter deltas) and rebuilds each user's
/// usage with this function; because the fused kernels record exactly the
/// sequential FLOP counts, the resulting simulated durations — and every
/// publication instant computed from them — are bit-identical to the
/// sequential path.
pub fn usage_of(tier: ComputeTier, flops: u64, host_elapsed: Duration) -> ResourceUsage {
    let cycles = (flops as f64 / tier.flops_per_cycle()).ceil() as u64;
    let simulated = Duration::from_secs_f64(cycles as f64 / tier.clock_hz());
    ResourceUsage { flops, cycles, simulated, host_elapsed }
}

/// A simulated network link between device and cloud.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkLink {
    /// One-way latency.
    pub latency: Duration,
    /// Throughput in bytes per second.
    pub bytes_per_second: f64,
}

impl NetworkLink {
    /// A typical WAN link between a phone and a cloud region
    /// (40 ms, 25 Mbit/s up).
    pub fn wan() -> Self {
        Self { latency: Duration::from_millis(40), bytes_per_second: 25e6 / 8.0 }
    }

    /// A campus WiFi link (8 ms, 100 Mbit/s).
    pub fn wifi() -> Self {
        Self { latency: Duration::from_millis(8), bytes_per_second: 100e6 / 8.0 }
    }

    /// Simulated time to push `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_second)
    }

    /// Simulated time to ship a serialized model across the link — the
    /// cost of Pelican's step-2 model download (and cloud deployment
    /// upload).
    pub fn model_transfer_time(&self, envelope: &ModelEnvelope) -> Duration {
        self.transfer_time(envelope.len())
    }

    /// This link as a [`pelican_sim`] profile, so code that priced
    /// transfers with the synchronous [`NetworkLink::transfer_time`] can
    /// hand the same latency/bandwidth shape to the discrete-event
    /// simulator (where transfers contend, overlap compute, time out and
    /// retry).
    pub fn profile(&self, name: &'static str) -> LinkProfile {
        LinkProfile {
            name,
            latency_us: self.latency.as_micros() as u64,
            bytes_per_sec: self.bytes_per_second,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_tensor::Matrix;

    #[test]
    fn measure_attributes_flops() {
        let a = Matrix::zeros(16, 16);
        let ((), usage) = measure(ComputeTier::Device, || {
            let _ = a.matmul(&a);
        });
        assert_eq!(usage.flops, 2 * 16 * 16 * 16);
        assert_eq!(usage.cycles, usage.flops / 2, "device retires 2 flops/cycle");
        assert!(usage.simulated > Duration::ZERO);
    }

    #[test]
    fn cloud_is_faster_per_flop() {
        let a = Matrix::zeros(32, 32);
        let ((), cloud) = measure(ComputeTier::Cloud, || {
            let _ = a.matmul(&a);
        });
        let ((), device) = measure(ComputeTier::Device, || {
            let _ = a.matmul(&a);
        });
        assert_eq!(cloud.flops, device.flops, "same work");
        assert!(cloud.simulated < device.simulated, "cloud tier simulates faster");
    }

    #[test]
    fn usage_accumulates() {
        let mut total = ResourceUsage::zero();
        let a = Matrix::zeros(8, 8);
        for _ in 0..3 {
            let ((), u) = measure(ComputeTier::Device, || {
                let _ = a.matmul(&a);
            });
            total.accumulate(&u);
        }
        assert_eq!(total.flops, 3 * 2 * 8 * 8 * 8);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = NetworkLink::wifi();
        let small = link.transfer_time(1_000);
        let big = link.transfer_time(10_000_000);
        assert!(big > small);
        assert!(small >= link.latency);
    }

    #[test]
    fn wan_is_slower_than_wifi() {
        let bytes = 5_000_000;
        assert!(NetworkLink::wan().transfer_time(bytes) > NetworkLink::wifi().transfer_time(bytes));
    }

    #[test]
    fn measure_thread_is_immune_to_concurrent_work() {
        let a = Matrix::zeros(16, 16);
        let stop = std::sync::atomic::AtomicBool::new(false);
        let ((), usage) = std::thread::scope(|scope| {
            // A noisy neighbour hammers the global FLOP counter the whole
            // time; the per-thread measurement must not see any of it.
            scope.spawn(|| {
                let b = Matrix::zeros(8, 8);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let _ = b.matmul(&b);
                }
            });
            let out = measure_thread(ComputeTier::Device, || {
                let _ = a.matmul(&a);
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            out
        });
        assert_eq!(usage.flops, 2 * 16 * 16 * 16, "exactly this thread's work");
        assert_eq!(usage.cycles, usage.flops / 2);
    }

    #[test]
    fn sim_profile_mirrors_the_link() {
        let link = NetworkLink::wifi();
        let profile = link.profile("wifi");
        assert_eq!(profile.latency_us, 8_000);
        assert_eq!(profile.bytes_per_sec, link.bytes_per_second);
        // Uncontended sim pricing agrees with the synchronous pricing to
        // within the sim's 1 µs rounding.
        let bytes = 3_000_000;
        let sync_us = link.transfer_time(bytes).as_micros() as u64;
        assert!(profile.transfer_us(bytes as u64).abs_diff(sync_us) <= 1);
    }
}

//! The four personalization methods of Table III.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pelican_nn::{fit, FitReport, Layer, Lstm, Sample, SequenceModel, TrainConfig};

/// How a user's model is derived from the general model and personal data
/// (§V-C1's four compared methods).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersonalizationMethod {
    /// Use the general model unchanged (baseline).
    Reuse,
    /// Train a fresh single-layer LSTM from scratch on personal data only.
    Lstm,
    /// Transfer learning, feature extraction (Fig. 1b): freeze the general
    /// stack, insert a fresh LSTM before the linear head, train the new
    /// LSTM and the head.
    TlFeatureExtract,
    /// Transfer learning, fine tuning (Fig. 1c): freeze the first LSTM,
    /// retrain the second LSTM and the linear head.
    TlFineTune,
}

impl PersonalizationMethod {
    /// All four methods, in the paper's table order.
    pub fn all() -> [PersonalizationMethod; 4] {
        [
            PersonalizationMethod::Reuse,
            PersonalizationMethod::Lstm,
            PersonalizationMethod::TlFeatureExtract,
            PersonalizationMethod::TlFineTune,
        ]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PersonalizationMethod::Reuse => "Reuse",
            PersonalizationMethod::Lstm => "LSTM",
            PersonalizationMethod::TlFeatureExtract => "TL FE",
            PersonalizationMethod::TlFineTune => "TL FT",
        }
    }
}

impl std::fmt::Display for PersonalizationMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Configuration for device-side personalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizationConfig {
    /// Training hyperparameters for the trainable part.
    pub train: TrainConfig,
    /// Hidden size of the from-scratch LSTM baseline (and of the surplus
    /// layer in feature extraction, which must match the general model's
    /// hidden width).
    pub hidden_dim: usize,
    /// Dropout rate of the from-scratch LSTM baseline.
    pub dropout: f32,
    /// Seed for new-layer initialization.
    pub seed: u64,
}

impl Default for PersonalizationConfig {
    fn default() -> Self {
        Self {
            train: TrainConfig { epochs: 8, ..TrainConfig::default() },
            hidden_dim: 64,
            dropout: 0.1,
            seed: 0xBEEF,
        }
    }
}

/// Derives a personalized model from `general` using `method` and the
/// user's private training samples.
///
/// Returns the personalized model and the fit report of the on-device
/// training (empty for [`PersonalizationMethod::Reuse`]).
///
/// # Panics
///
/// Panics if `samples` is empty for a method that trains, or if the sample
/// feature dimension does not match the general model.
pub fn personalize(
    general: &SequenceModel,
    samples: &[Sample],
    method: PersonalizationMethod,
    config: &PersonalizationConfig,
) -> (SequenceModel, FitReport) {
    let mut model = prepare(general, method, config);
    let report = match method {
        PersonalizationMethod::Reuse => {
            FitReport { epoch_losses: Vec::new(), steps: 0, samples_per_epoch: 0 }
        }
        _ => fit(&mut model, samples, &config.train),
    };
    (model, report)
}

/// Builds the to-be-trained model for `method` without training it —
/// the deterministic prefix of [`personalize`].
///
/// `personalize(g, s, m, c)` ≡ `prepare(g, m, c)` followed by
/// [`pelican_nn::fit`] with `c.train` (for methods that train). Splitting
/// the two lets the lockstep trainer pool construct a whole cohort's
/// initial models — consuming each user's init RNG exactly as the
/// sequential path would — and then train them together through
/// [`pelican_nn::fit_lockstep`].
pub fn prepare(
    general: &SequenceModel,
    method: PersonalizationMethod,
    config: &PersonalizationConfig,
) -> SequenceModel {
    match method {
        PersonalizationMethod::Reuse => general.clone(),
        PersonalizationMethod::Lstm => {
            let mut rng = StdRng::seed_from_u64(config.seed);
            SequenceModel::single_lstm(
                general.input_dim(),
                config.hidden_dim,
                general.output_dim(),
                config.dropout,
                &mut rng,
            )
        }
        PersonalizationMethod::TlFeatureExtract => {
            let mut model = general.clone();
            model.freeze_all();
            let hidden = hidden_width(&model);
            let mut rng = StdRng::seed_from_u64(config.seed);
            model.insert_before_head(Layer::Lstm(Lstm::new(hidden, hidden, &mut rng)));
            // The fresh LSTM trains; so does the head it feeds.
            let last = model.layers().len() - 1;
            model.layers_mut()[last].set_trainable(true);
            model
        }
        PersonalizationMethod::TlFineTune => {
            let mut model = general.clone();
            model.freeze_all();
            // Unfreeze everything from the *second* LSTM onward (Fig. 1c).
            let mut lstm_seen = 0;
            for layer in model.layers_mut() {
                if matches!(layer, Layer::Lstm(_)) {
                    lstm_seen += 1;
                }
                if lstm_seen >= 2 {
                    layer.set_trainable(true);
                }
            }
            model
        }
    }
}

/// Hidden width of the last LSTM in the stack.
fn hidden_width(model: &SequenceModel) -> usize {
    model
        .layers()
        .iter()
        .rev()
        .find_map(|l| match l {
            Layer::Lstm(lstm) => Some(lstm.output_dim()),
            _ => None,
        })
        .expect("general model contains an LSTM")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_nn::Sample;
    use rand::{RngExt as _, SeedableRng};

    fn general() -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(1);
        SequenceModel::general_lstm(10, 12, 6, 0.1, &mut rng)
    }

    fn samples(n: usize) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(2);
        (0..n)
            .map(|_| {
                let c = rng.random_range(0..6);
                let mut x = vec![0.0; 10];
                x[c] = 1.0;
                Sample::new(vec![x.clone(), x], c)
            })
            .collect()
    }

    fn config() -> PersonalizationConfig {
        PersonalizationConfig {
            train: TrainConfig { epochs: 4, lr: 5e-3, ..TrainConfig::default() },
            hidden_dim: 12,
            ..PersonalizationConfig::default()
        }
    }

    #[test]
    fn reuse_returns_the_general_model_unchanged() {
        let g = general();
        let (m, report) = personalize(&g, &samples(10), PersonalizationMethod::Reuse, &config());
        let xs = vec![vec![0.1; 10]; 2];
        assert_eq!(g.logits(&xs), m.logits(&xs));
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn feature_extraction_freezes_the_general_stack() {
        let g = general();
        let n_general = g.layers().len();
        let (m, report) =
            personalize(&g, &samples(40), PersonalizationMethod::TlFeatureExtract, &config());
        assert_eq!(m.layers().len(), n_general + 1, "surplus LSTM inserted");
        // Original LSTM layers are frozen; inserted LSTM + head trainable.
        assert!(!m.layers()[0].is_trainable());
        assert!(m.layers()[n_general - 1].is_trainable(), "inserted LSTM trains");
        assert!(m.layers()[n_general].is_trainable(), "head trains");
        assert!(report.steps > 0);
    }

    #[test]
    fn fine_tune_freezes_only_the_first_lstm() {
        let g = general();
        let (m, _) = personalize(&g, &samples(40), PersonalizationMethod::TlFineTune, &config());
        assert_eq!(m.layers().len(), g.layers().len(), "no layers added");
        assert!(!m.layers()[0].is_trainable(), "first LSTM frozen");
        let trainable: Vec<bool> = m.layers().iter().map(|l| l.is_trainable()).collect();
        assert!(trainable.iter().any(|&t| t), "something must train");
    }

    #[test]
    fn fine_tune_preserves_first_layer_weights() {
        let g = general();
        let (m, _) = personalize(&g, &samples(40), PersonalizationMethod::TlFineTune, &config());
        let (g0, m0) = (&g.layers()[0], &m.layers()[0]);
        match (g0, m0) {
            (Layer::Lstm(a), Layer::Lstm(b)) => assert_eq!(a.weight_ih(), b.weight_ih()),
            _ => panic!("first layer should be an LSTM"),
        }
    }

    #[test]
    fn scratch_lstm_is_single_layer() {
        let g = general();
        let (m, _) = personalize(&g, &samples(40), PersonalizationMethod::Lstm, &config());
        let lstm_count = m.layers().iter().filter(|l| matches!(l, Layer::Lstm(_))).count();
        assert_eq!(lstm_count, 1);
        assert_eq!(m.output_dim(), g.output_dim());
    }

    #[test]
    fn tl_methods_learn_the_personal_task() {
        // A user whose next location is always class 3: transfer learning
        // should adapt to that bias quickly.
        let g = general();
        let biased: Vec<Sample> = samples(60)
            .into_iter()
            .map(|mut s| {
                s.target = 3;
                s
            })
            .collect();
        for method in [PersonalizationMethod::TlFeatureExtract, PersonalizationMethod::TlFineTune] {
            let (m, _) = personalize(&g, &biased, method, &config());
            let p = m.predict_proba(&biased[0].xs);
            assert_eq!(
                pelican_tensor::argmax(&p),
                Some(3),
                "{method} should learn the user's bias"
            );
        }
    }

    #[test]
    fn method_names_match_the_paper() {
        let names: Vec<&str> = PersonalizationMethod::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Reuse", "LSTM", "TL FE", "TL FT"]);
    }
}

//! Experiment harness: builds end-to-end scenarios shared by the examples,
//! integration tests and the benchmark suite.
//!
//! A [`Scenario`] reproduces the paper's experimental setting (§IV-A):
//! contributors `G` pool their trajectories to train the general model in
//! the cloud; a disjoint set of personalization users `P` adapt it on their
//! devices; attacks then target the personalized models.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pelican_attacks::{
    evaluate_attack, interest_locations, Adversary, AttackEvaluation, AttackMethod, Instance,
    Prior, PriorKind,
};
use pelican_mobility::{
    train_test_split, CampusConfig, DatasetBuilder, MobilityDataset, Scale, Session, SpatialLevel,
};
use pelican_nn::metrics::evaluate_top_k;
use pelican_nn::{FitReport, ModelEnvelope, Sample, SequenceModel, TrainConfig};

use crate::personalize::{PersonalizationConfig, PersonalizationMethod};
use crate::platform::{NetworkLink, ResourceUsage};
use crate::system::{CloudTrainer, DevicePersonalizer};

/// Sizing knobs derived from a [`Scale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSizing {
    /// LSTM hidden width.
    pub hidden_dim: usize,
    /// Epochs for cloud training of the general model.
    pub general_epochs: usize,
    /// Epochs for on-device personalization.
    pub personal_epochs: usize,
}

impl ScenarioSizing {
    /// Defaults per scale (the paper's 128-wide LSTM at `Paper` scale).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            // Tiny pools only ~500 contributor samples, so at batch 128
            // an epoch is ~4 optimizer steps; 8 epochs left the general
            // model at the uniform plateau. 40 epochs (~160 steps) gets
            // it clearly past chance while staying fast for unit tests.
            Scale::Tiny => Self { hidden_dim: 24, general_epochs: 40, personal_epochs: 12 },
            Scale::Small => Self { hidden_dim: 64, general_epochs: 15, personal_epochs: 25 },
            Scale::Paper => Self { hidden_dim: 128, general_epochs: 15, personal_epochs: 25 },
        }
    }
}

/// One personalization user: their private data splits and trained model.
#[derive(Debug, Clone)]
pub struct PersonalUser {
    /// User index within the dataset.
    pub user_id: usize,
    /// The personalized model (no privacy layer installed).
    pub model: SequenceModel,
    /// Training samples (the user's private history).
    pub train: Vec<Sample>,
    /// Held-out samples for accuracy measurement.
    pub test: Vec<Sample>,
    /// The session triples behind `train` (ground truth for priors).
    pub train_triples: Vec<[Session; 3]>,
    /// The session triples behind `test` (attack instances come from here).
    pub test_triples: Vec<[Session; 3]>,
    /// Fit report of the personalization run.
    pub fit: FitReport,
    /// Device compute spent personalizing.
    pub usage: ResourceUsage,
}

impl PersonalUser {
    /// The user's training sessions (hidden-step marginals for the true
    /// prior are computed from these).
    pub fn train_sessions(&self) -> Vec<Session> {
        self.train_triples.iter().flat_map(|t| t.iter().copied()).collect()
    }

    /// Top-k test accuracy of the personalized model.
    pub fn test_accuracy(&self, k: usize) -> f64 {
        evaluate_top_k(&self.model, &self.test, &[k]).accuracy(k)
    }

    /// Top-k train accuracy (for the paper's overfitting comparisons).
    pub fn train_accuracy(&self, k: usize) -> f64 {
        evaluate_top_k(&self.model, &self.train, &[k]).accuracy(k)
    }
}

/// A complete experimental setting.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The synthetic dataset (traces, triples, feature space).
    pub dataset: MobilityDataset,
    /// The cloud-trained general model `M_G`.
    pub general: SequenceModel,
    /// Cloud compute spent training `M_G`.
    pub general_usage: ResourceUsage,
    /// Fit report of the general training run.
    pub general_fit: FitReport,
    /// Index of the first personalization user (users before this are
    /// contributors).
    pub first_personal_user: usize,
    /// The personalization users `P` with their models.
    pub personal: Vec<PersonalUser>,
    /// The personalization method used for `personal`.
    pub method: PersonalizationMethod,
    /// Seed the scenario was built from.
    pub seed: u64,
}

impl Scenario {
    /// Starts configuring a scenario.
    pub fn builder(scale: Scale, level: SpatialLevel) -> ScenarioBuilder {
        ScenarioBuilder {
            scale,
            level,
            seed: 42,
            personal_users: None,
            method: PersonalizationMethod::TlFeatureExtract,
            sizing: None,
            weeks: None,
            train_fraction: 0.8,
        }
    }

    /// Builds the attack instances an adversary sees for one user's
    /// held-out triples, capped at `max_instances`.
    pub fn attack_instances(
        &self,
        user: &PersonalUser,
        adversary: Adversary,
        max_instances: usize,
    ) -> Vec<Instance> {
        user.test_triples
            .iter()
            .take(max_instances)
            .map(|t| adversary.instance(t, self.dataset.space.location_of(&t[2])))
            .collect()
    }

    /// Builds the prior of `kind` for one user.
    pub fn prior(&self, user: &PersonalUser, kind: PriorKind) -> Prior {
        Prior::of_kind(
            kind,
            &self.dataset.space,
            &user.train_sessions(),
            &user.model,
            self.seed ^ 0x9d,
        )
    }

    /// Runs an attack against one user's personalized model and aggregates
    /// top-k attack accuracy.
    ///
    /// `temperature` optionally installs the privacy layer for the run
    /// (the model is restored afterwards).
    #[allow(clippy::too_many_arguments)]
    pub fn attack_user(
        &self,
        user: &PersonalUser,
        adversary: Adversary,
        method: &AttackMethod,
        prior_kind: PriorKind,
        ks: &[usize],
        max_instances: usize,
        temperature: Option<f32>,
    ) -> AttackEvaluation {
        let defense = match temperature {
            Some(t) => crate::defenses::DefenseKind::Temperature { temperature: t },
            None => crate::defenses::DefenseKind::None,
        };
        self.attack_user_defended(user, adversary, method, prior_kind, ks, max_instances, defense)
    }

    /// Like [`Scenario::attack_user`], but with an arbitrary deployed
    /// defense (temperature, output noise, rounding — see
    /// [`crate::DefenseKind`]).
    #[allow(clippy::too_many_arguments)]
    pub fn attack_user_defended(
        &self,
        user: &PersonalUser,
        adversary: Adversary,
        method: &AttackMethod,
        prior_kind: PriorKind,
        ks: &[usize],
        max_instances: usize,
        defense: crate::defenses::DefenseKind,
    ) -> AttackEvaluation {
        let mut model = user.model.clone();
        defense.apply(&mut model);
        let prior = self.prior(user, prior_kind);
        let probes =
            pelican_attacks::prior::random_probes(&self.dataset.space, 24, self.seed ^ 0x1f);
        let interest = interest_locations(&model, &probes, 0.01);
        let instances = self.attack_instances(user, adversary, max_instances);
        evaluate_attack(method, &mut model, &self.dataset.space, &prior, &interest, &instances, ks)
    }

    /// Runs an attack across all personalization users and merges results —
    /// the paper's "aggregate inversion attack accuracy".
    #[allow(clippy::too_many_arguments)]
    pub fn attack_all(
        &self,
        adversary: Adversary,
        method: &AttackMethod,
        prior_kind: PriorKind,
        ks: &[usize],
        max_instances_per_user: usize,
        temperature: Option<f32>,
    ) -> AttackEvaluation {
        let mut total = AttackEvaluation::empty(ks);
        for user in &self.personal {
            let eval = self.attack_user(
                user,
                adversary,
                method,
                prior_kind,
                ks,
                max_instances_per_user,
                temperature,
            );
            total.merge(&eval);
        }
        total
    }
}

/// Configures and builds a [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scale: Scale,
    level: SpatialLevel,
    seed: u64,
    personal_users: Option<usize>,
    method: PersonalizationMethod,
    sizing: Option<ScenarioSizing>,
    weeks: Option<usize>,
    train_fraction: f64,
}

impl ScenarioBuilder {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps how many personalization users are trained (default: all
    /// non-contributor users).
    pub fn personal_users(mut self, n: usize) -> Self {
        self.personal_users = Some(n);
        self
    }

    /// Chooses the personalization method (default: TL feature extraction,
    /// the paper's §IV default).
    pub fn method(mut self, method: PersonalizationMethod) -> Self {
        self.method = method;
        self
    }

    /// Overrides model sizing.
    pub fn sizing(mut self, sizing: ScenarioSizing) -> Self {
        self.sizing = Some(sizing);
        self
    }

    /// Restricts personal training data to the first `weeks` weeks
    /// (Table IV's sweep). Test data is unaffected.
    pub fn personal_weeks(mut self, weeks: usize) -> Self {
        self.weeks = Some(weeks);
        self
    }

    /// Train/test fraction (default 0.8, the paper's split).
    pub fn train_fraction(mut self, fraction: f64) -> Self {
        self.train_fraction = fraction;
        self
    }

    /// Builds the scenario: generates traces, trains the general model on
    /// the contributor two-thirds of users, then personalizes models for
    /// the remaining users on the simulated device tier.
    pub fn build(self) -> Scenario {
        let config = CampusConfig::for_scale(self.scale);
        let sizing = self.sizing.unwrap_or_else(|| ScenarioSizing::for_scale(self.scale));
        let dataset = DatasetBuilder::new(config.clone(), self.seed).build(self.level);

        let first_personal_user = (config.users * 2) / 3;
        let contributor_samples = dataset.pooled_samples(0..first_personal_user);

        let trainer = CloudTrainer::new(
            TrainConfig {
                epochs: sizing.general_epochs,
                batch_size: 128,
                shuffle_seed: self.seed,
                ..TrainConfig::default()
            },
            sizing.hidden_dim,
            0.1,
        );
        let (general, general_fit, general_usage) = trainer.train(
            dataset.space.dim(),
            dataset.n_locations(),
            &contributor_samples,
            self.seed,
        );

        let personal_count = self
            .personal_users
            .unwrap_or(config.users - first_personal_user)
            .min(config.users - first_personal_user);
        let envelope = ModelEnvelope::encode(&general);
        let personalizer = DevicePersonalizer::new(
            PersonalizationConfig {
                train: TrainConfig {
                    epochs: sizing.personal_epochs,
                    batch_size: 16,
                    shuffle_seed: self.seed ^ 0x77,
                    ..TrainConfig::default()
                },
                hidden_dim: sizing.hidden_dim,
                dropout: 0.1,
                seed: self.seed ^ 0xABCD,
            },
            NetworkLink::wifi(),
        );

        let mut personal = Vec::with_capacity(personal_count);
        for user_id in first_personal_user..first_personal_user + personal_count {
            let user_data = &dataset.users[user_id];
            let all_triples = &user_data.triples;
            let (mut train_triples, test_triples) =
                train_test_split(all_triples, self.train_fraction);
            if let Some(weeks) = self.weeks {
                let cutoff = (weeks * 7) as u32;
                train_triples.retain(|t| t[2].day < cutoff);
            }
            let train: Vec<Sample> = train_triples.iter().map(|t| dataset.sample_of(t)).collect();
            let test: Vec<Sample> = test_triples.iter().map(|t| dataset.sample_of(t)).collect();
            if train.is_empty() || test.is_empty() {
                continue;
            }
            let outcome = personalizer
                .personalize(&envelope, &train, self.method)
                .expect("freshly encoded envelope always decodes");
            personal.push(PersonalUser {
                user_id,
                model: outcome.model,
                train,
                test,
                train_triples,
                test_triples,
                fit: outcome.fit,
                usage: outcome.usage,
            });
        }

        // Ensure determinism of any downstream RNG use.
        let _ = StdRng::seed_from_u64(self.seed);

        Scenario {
            dataset,
            general,
            general_usage,
            general_fit,
            first_personal_user,
            personal,
            method: self.method,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(11).personal_users(2).build()
    }

    #[test]
    fn scenario_separates_contributors_from_personal_users() {
        let s = tiny_scenario();
        assert!(s.first_personal_user > 0);
        for u in &s.personal {
            assert!(u.user_id >= s.first_personal_user, "personal users are disjoint from G");
        }
        assert_eq!(s.personal.len(), 2);
    }

    #[test]
    fn personalized_models_run_and_report() {
        let s = tiny_scenario();
        let u = &s.personal[0];
        assert!(u.fit.steps > 0);
        assert!(u.usage.flops > 0);
        let acc = u.test_accuracy(3);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn attack_pipeline_produces_accuracy() {
        let s = tiny_scenario();
        let method = AttackMethod::TimeBased(pelican_attacks::TimeBased::default());
        let eval = s.attack_user(
            &s.personal[0],
            Adversary::A1,
            &method,
            PriorKind::True,
            &[1, 3],
            5,
            None,
        );
        assert!(eval.total > 0);
        assert!(eval.accuracy(3) >= eval.accuracy(1));
    }

    #[test]
    fn attack_all_merges_users() {
        let s = tiny_scenario();
        let method = AttackMethod::TimeBased(pelican_attacks::TimeBased::default());
        let eval = s.attack_all(Adversary::A1, &method, PriorKind::True, &[1], 3, None);
        assert_eq!(eval.total, s.personal.iter().map(|u| u.test_triples.len().min(3)).sum());
    }

    #[test]
    fn weeks_cap_shrinks_training_data() {
        let full = Scenario::builder(Scale::Tiny, SpatialLevel::Building)
            .seed(11)
            .personal_users(1)
            .build();
        let short = Scenario::builder(Scale::Tiny, SpatialLevel::Building)
            .seed(11)
            .personal_users(1)
            .personal_weeks(1)
            .build();
        assert!(short.personal[0].train.len() < full.personal[0].train.len());
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = tiny_scenario();
        let b = tiny_scenario();
        let xs = &a.personal[0].test[0].xs;
        assert_eq!(a.personal[0].model.logits(xs), b.personal[0].model.logits(xs));
    }
}

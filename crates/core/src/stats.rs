//! Statistics helpers for the paper's regression analyses (Fig. 3b/3c).

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0 for degenerate inputs (fewer than two points or zero
/// variance), which keeps downstream reports well-defined.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "correlation requires paired samples");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    // Clamp: floating-point rounding can push perfectly-correlated samples
    // infinitesimally outside [-1, 1].
    (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0)
}

/// Two-sided p-value for the null hypothesis of zero correlation.
///
/// Uses the `t = r·sqrt((n−2)/(1−r²))` statistic with a normal
/// approximation to the t distribution — adequate for the sample sizes the
/// experiments use (n ≥ 20) and fully deterministic. Returns 1.0 for
/// degenerate inputs.
pub fn pearson_p_value(r: f64, n: usize) -> f64 {
    if n < 3 || !(-1.0..=1.0).contains(&r) {
        return 1.0;
    }
    let r = r.clamp(-0.999_999, 0.999_999);
    let t = r * ((n as f64 - 2.0) / (1.0 - r * r)).sqrt();
    2.0 * (1.0 - standard_normal_cdf(t.abs()))
}

/// Ordinary-least-squares slope and intercept of `y` on `x`.
///
/// Returns `(slope, intercept)`; a zero-variance `x` yields slope 0 and
/// intercept `mean(y)`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "regression requires paired samples");
    assert!(!x.is_empty(), "regression requires at least one point");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
    }
    if sxx == 0.0 {
        return (0.0, my);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ≈ 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Mean of a sample (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_zero_correlation() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn independent_noise_is_weak() {
        // Deterministic pseudo-noise.
        let x: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 53 + 11) % 97) as f64).collect();
        assert!(pearson(&x, &y).abs() < 0.2);
    }

    #[test]
    fn p_value_decreases_with_effect_and_n() {
        let weak = pearson_p_value(0.1, 30);
        let strong = pearson_p_value(0.8, 30);
        assert!(strong < weak);
        let more_data = pearson_p_value(0.1, 3000);
        assert!(more_data < weak, "same r, more samples → smaller p");
        assert!(pearson_p_value(0.8, 30) < 0.05, "strong correlation is significant");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 1.0).collect();
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 3.0).abs() < 1e-12);
        assert!((intercept + 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!(standard_normal_cdf(-5.0) < 1e-5);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}

//! The end-to-end Pelican service (Fig. 4): cloud training, device
//! personalization, deployment and model updates.

use std::collections::HashMap;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pelican_nn::{
    fit, FitReport, ModelCodecError, ModelEnvelope, Sample, SequenceModel, TrainConfig,
};

use crate::personalize::{personalize, PersonalizationConfig, PersonalizationMethod};
use crate::platform::{measure, ComputeTier, NetworkLink, ResourceUsage};
use crate::privacy::PrivacyLayer;

/// Errors surfaced by the Pelican service API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No model is enrolled for the requested user.
    UnknownUser(usize),
    /// The query's feature dimension does not match the user's model.
    DimensionMismatch {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension the query provided.
        got: usize,
    },
    /// A model envelope failed to decode.
    Codec(ModelCodecError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownUser(u) => write!(f, "no model enrolled for user {u}"),
            ServiceError::DimensionMismatch { expected, got } => {
                write!(f, "query has {got} features but the model expects {expected}")
            }
            ServiceError::Codec(e) => write!(f, "model envelope error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelCodecError> for ServiceError {
    fn from(e: ModelCodecError) -> Self {
        ServiceError::Codec(e)
    }
}

/// Where a personalized model executes (§V-A3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Deployment {
    /// The model stays on the user's device; queries run locally.
    OnDevice,
    /// The model is uploaded and served from the cloud; queries traverse
    /// the network.
    Cloud,
}

/// Step 1: cloud-based initial training of the general model `M_G`.
#[derive(Debug, Clone)]
pub struct CloudTrainer {
    /// Training hyperparameters.
    pub config: TrainConfig,
    /// LSTM hidden width (the paper uses 128).
    pub hidden_dim: usize,
    /// Dropout between the LSTM layers (the paper uses 0.1).
    pub dropout: f32,
}

impl CloudTrainer {
    /// Creates a trainer with the given architecture.
    pub fn new(config: TrainConfig, hidden_dim: usize, dropout: f32) -> Self {
        Self { config, hidden_dim, dropout }
    }

    /// Trains the general model on pooled contributor samples, attributing
    /// the work to the cloud tier.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(
        &self,
        input_dim: usize,
        n_classes: usize,
        samples: &[Sample],
        seed: u64,
    ) -> (SequenceModel, FitReport, ResourceUsage) {
        let ((model, report), usage) = measure(ComputeTier::Cloud, || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut model = SequenceModel::general_lstm(
                input_dim,
                self.hidden_dim,
                n_classes,
                self.dropout,
                &mut rng,
            );
            let report = fit(&mut model, samples, &self.config);
            (model, report)
        });
        (model, report, usage)
    }
}

/// Steps 2 & 4: device-based personalization and model updates.
#[derive(Debug, Clone)]
pub struct DevicePersonalizer {
    /// Personalization hyperparameters.
    pub config: PersonalizationConfig,
    /// The device↔cloud link used for the model download.
    pub link: NetworkLink,
}

/// Outcome of a device-side personalization round.
#[derive(Debug, Clone)]
pub struct PersonalizationOutcome {
    /// The personalized model `M_P`.
    pub model: SequenceModel,
    /// Training report of the on-device fit.
    pub fit: FitReport,
    /// Device compute spent.
    pub usage: ResourceUsage,
    /// Simulated time to download the general model.
    pub download_time: Duration,
}

impl DevicePersonalizer {
    /// Creates a personalizer over a network link.
    pub fn new(config: PersonalizationConfig, link: NetworkLink) -> Self {
        Self { config, link }
    }

    /// Downloads `general` (simulated) and derives a personalized model
    /// from the user's private `samples`, attributing compute to the
    /// device tier. The raw samples never leave this function — mirroring
    /// Pelican's on-device data residency.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Codec`] if the envelope is malformed.
    pub fn personalize(
        &self,
        general: &ModelEnvelope,
        samples: &[Sample],
        method: PersonalizationMethod,
    ) -> Result<PersonalizationOutcome, ServiceError> {
        let download_time = self.link.model_transfer_time(general);
        let general_model = general.decode()?;
        let ((model, fit), usage) = measure(ComputeTier::Device, || {
            personalize(&general_model, samples, method, &self.config)
        });
        Ok(PersonalizationOutcome { model, fit, usage, download_time })
    }

    /// Step 4: model update — re-invokes training *from the current
    /// personalized parameters* with newly accumulated data, preserving the
    /// model's freeze pattern (the paper's §V-A4 semantics).
    pub fn update(
        &self,
        model: &mut SequenceModel,
        new_samples: &[Sample],
    ) -> (FitReport, ResourceUsage) {
        measure(ComputeTier::Device, || fit(model, new_samples, &self.config.train))
    }
}

/// A deployed per-user model inside the service.
#[derive(Debug, Clone)]
struct Enrollment {
    model: SequenceModel,
    deployment: Deployment,
}

/// Step 3: the serving tier. Holds the general model and black-box
/// per-user personalized models; the service provider can query outputs
/// and confidence scores but never sees training data or the user's
/// privacy temperature.
#[derive(Debug, Clone)]
pub struct PelicanService {
    general: SequenceModel,
    users: HashMap<usize, Enrollment>,
    link: NetworkLink,
}

impl PelicanService {
    /// Creates a service around a trained general model.
    pub fn new(general: SequenceModel, link: NetworkLink) -> Self {
        Self { general, users: HashMap::new(), link }
    }

    /// Borrows the general model.
    pub fn general(&self) -> &SequenceModel {
        &self.general
    }

    /// Enrolls a user's personalized model, optionally installing their
    /// privacy layer before the model becomes service-visible.
    pub fn enroll(
        &mut self,
        user_id: usize,
        mut model: SequenceModel,
        deployment: Deployment,
        privacy: Option<PrivacyLayer>,
    ) {
        if let Some(layer) = privacy {
            layer.apply(&mut model);
        }
        self.users.insert(user_id, Enrollment { model, deployment });
    }

    /// Number of enrolled users.
    pub fn enrolled(&self) -> usize {
        self.users.len()
    }

    /// Queries a user's model: returns the confidence vector plus the
    /// simulated round-trip time (zero for on-device deployments).
    ///
    /// Routed through the batched inference path with a batch of one — the
    /// same kernels `pelican-serve` fuses fleet traffic through — so a
    /// query answered alone is bit-identical to the same query answered
    /// inside a coalesced batch. The query slice is borrowed, never cloned.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownUser`] if the user is not enrolled;
    /// [`ServiceError::DimensionMismatch`] if the query shape is wrong.
    pub fn query(
        &self,
        user_id: usize,
        xs: &[Vec<f32>],
    ) -> Result<(Vec<f32>, Duration), ServiceError> {
        let enrollment = self.users.get(&user_id).ok_or(ServiceError::UnknownUser(user_id))?;
        let expected = enrollment.model.input_dim();
        if xs.iter().any(|step| step.len() != expected) {
            let got = xs.first().map_or(0, |s| s.len());
            return Err(ServiceError::DimensionMismatch { expected, got });
        }
        let probs = enrollment
            .model
            .predict_proba_batch(std::slice::from_ref(&xs))
            .pop()
            .expect("a batch of one yields one answer");
        let rtt = match enrollment.deployment {
            Deployment::OnDevice => Duration::ZERO,
            Deployment::Cloud => {
                // Request + response over the link; payloads are small
                // relative to the model, so latency dominates.
                self.link.transfer_time(expected * 4) + self.link.transfer_time(probs.len() * 4)
            }
        };
        Ok((probs, rtt))
    }

    /// The `k` most likely next locations for a user.
    ///
    /// When only the ranking-preserving temperature layer is deployed, the
    /// serving runtime ranks directly from the logits — the "appropriate
    /// precision" the paper assumes (§V-B), immune to the `f32` underflow
    /// that sharpened confidences exhibit. Perturbation-style defenses
    /// (noise, rounding) intentionally change the exported scores, so the
    /// ranking is computed from the perturbed confidences instead.
    ///
    /// # Errors
    ///
    /// Same as [`PelicanService::query`].
    pub fn top_k(
        &self,
        user_id: usize,
        xs: &[Vec<f32>],
        k: usize,
    ) -> Result<Vec<usize>, ServiceError> {
        let enrollment = self.users.get(&user_id).ok_or(ServiceError::UnknownUser(user_id))?;
        if enrollment.model.postprocess() == pelican_nn::Postprocess::None {
            let expected = enrollment.model.input_dim();
            if xs.iter().any(|step| step.len() != expected) {
                let got = xs.first().map_or(0, |s| s.len());
                return Err(ServiceError::DimensionMismatch { expected, got });
            }
            return Ok(enrollment
                .model
                .predict_top_k_batch(std::slice::from_ref(&xs), k)
                .pop()
                .expect("a batch of one yields one ranking"));
        }
        let (probs, _) = self.query(user_id, xs)?;
        Ok(pelican_tensor::top_k(&probs, k))
    }

    /// Replaces a user's model after an on-device update (step 4).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownUser`] if the user was never enrolled.
    pub fn redeploy(
        &mut self,
        user_id: usize,
        mut model: SequenceModel,
        privacy: Option<PrivacyLayer>,
    ) -> Result<(), ServiceError> {
        let enrollment = self.users.get_mut(&user_id).ok_or(ServiceError::UnknownUser(user_id))?;
        if let Some(layer) = privacy {
            layer.apply(&mut model);
        }
        enrollment.model = model;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt as _, SeedableRng};

    fn samples(n: usize, dim: usize, classes: usize) -> Vec<Sample> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|_| {
                let c = rng.random_range(0..classes);
                let mut x = vec![0.0; dim];
                x[c % dim] = 1.0;
                Sample::new(vec![x.clone(), x], c)
            })
            .collect()
    }

    fn trained_general() -> (SequenceModel, FitReport, ResourceUsage) {
        let trainer =
            CloudTrainer::new(TrainConfig { epochs: 2, ..TrainConfig::default() }, 8, 0.1);
        trainer.train(6, 4, &samples(30, 6, 4), 1)
    }

    #[test]
    fn cloud_training_accounts_compute() {
        let (model, report, usage) = trained_general();
        assert!(usage.flops > 0);
        assert!(usage.cycles > 0);
        assert_eq!(report.epoch_losses.len(), 2);
        assert_eq!(model.output_dim(), 4);
    }

    #[test]
    fn personalization_is_much_cheaper_than_general_training() {
        let (general, _, general_usage) = trained_general();
        let personalizer = DevicePersonalizer::new(
            PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 8,
                ..PersonalizationConfig::default()
            },
            NetworkLink::wifi(),
        );
        let envelope = ModelEnvelope::encode(&general);
        let outcome = personalizer
            .personalize(&envelope, &samples(10, 6, 4), PersonalizationMethod::TlFeatureExtract)
            .expect("personalization succeeds");
        assert!(
            outcome.usage.flops < general_usage.flops,
            "personal {} vs general {}",
            outcome.usage.flops,
            general_usage.flops
        );
        assert!(outcome.download_time > Duration::ZERO);
    }

    #[test]
    fn service_queries_enrolled_users_only() {
        let (general, _, _) = trained_general();
        let mut service = PelicanService::new(general.clone(), NetworkLink::wifi());
        service.enroll(7, general.clone(), Deployment::OnDevice, None);
        assert_eq!(service.enrolled(), 1);

        let xs = vec![vec![0.0; 6]; 2];
        let (probs, rtt) = service.query(7, &xs).expect("enrolled user");
        assert_eq!(probs.len(), 4);
        assert_eq!(rtt, Duration::ZERO, "on-device queries have no network cost");

        assert!(matches!(service.query(8, &xs), Err(ServiceError::UnknownUser(8))));
    }

    #[test]
    fn cloud_deployment_pays_latency() {
        let (general, _, _) = trained_general();
        let mut service = PelicanService::new(general.clone(), NetworkLink::wan());
        service.enroll(1, general.clone(), Deployment::Cloud, None);
        let (_, rtt) = service.query(1, &vec![vec![0.0; 6]; 2]).unwrap();
        assert!(rtt >= Duration::from_millis(80), "two WAN traversals");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (general, _, _) = trained_general();
        let mut service = PelicanService::new(general.clone(), NetworkLink::wifi());
        service.enroll(1, general, Deployment::OnDevice, None);
        let err = service.query(1, &vec![vec![0.0; 5]; 2]).unwrap_err();
        assert_eq!(err, ServiceError::DimensionMismatch { expected: 6, got: 5 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn privacy_layer_applies_at_enrollment() {
        let (general, _, _) = trained_general();
        let mut service = PelicanService::new(general.clone(), NetworkLink::wifi());
        service.enroll(1, general, Deployment::OnDevice, Some(PrivacyLayer::new(1e-3)));
        let (probs, _) = service.query(1, &vec![vec![0.3; 6]; 2]).unwrap();
        let max = probs.iter().cloned().fold(0.0f32, f32::max);
        assert!(max > 0.999, "enrolled model serves sharpened confidences");
    }

    #[test]
    fn tied_confidences_rank_by_index_deterministically() {
        // Coarse rounding collapses most confidences to equal values, the
        // worst case for top-k stability. Ties must order by class index so
        // re-runs (and the batched serving path) agree exactly.
        let (general, _, _) = trained_general();
        let mut service = PelicanService::new(general.clone(), NetworkLink::wifi());
        let mut model = general.clone();
        model.set_postprocess(pelican_nn::Postprocess::Round { decimals: 0 });
        service.enroll(1, model, Deployment::OnDevice, None);
        let xs = vec![vec![0.2; 6]; 2];
        let first = service.top_k(1, &xs, 4).unwrap();
        let second = service.top_k(1, &xs, 4).unwrap();
        assert_eq!(first, second, "re-running a tied ranking must not reorder it");
        // With a perturbation defense deployed the service ranks from the
        // postprocessed confidences; the ranking must be exactly the
        // index-tie-broken top-k of those scores.
        let (probs, _) = service.query(1, &xs).unwrap();
        assert_eq!(first, pelican_tensor::top_k(&probs, 4));
        assert!(
            probs.iter().filter(|&&p| p == probs[first[1]]).count() > 1,
            "coarse rounding should actually produce ties, got {probs:?}"
        );
    }

    #[test]
    fn updates_redeploy() {
        let (general, _, _) = trained_general();
        let personalizer = DevicePersonalizer::new(
            PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 8,
                ..PersonalizationConfig::default()
            },
            NetworkLink::wifi(),
        );
        let envelope = ModelEnvelope::encode(&general);
        let mut outcome = personalizer
            .personalize(&envelope, &samples(12, 6, 4), PersonalizationMethod::TlFineTune)
            .unwrap();
        let (report, usage) = personalizer.update(&mut outcome.model, &samples(12, 6, 4));
        assert!(report.steps > 0);
        assert!(usage.flops > 0);

        let mut service = PelicanService::new(general, NetworkLink::wifi());
        service.enroll(2, outcome.model.clone(), Deployment::OnDevice, None);
        service.redeploy(2, outcome.model, None).expect("redeploy enrolled user");
        assert!(matches!(
            service.redeploy(99, service.general().clone(), None),
            Err(ServiceError::UnknownUser(99))
        ));
    }
}

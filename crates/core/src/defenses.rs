//! Comparison defenses (the paper's Table V survey, implemented).
//!
//! Pelican's contribution is the inference-time temperature layer; the
//! paper positions it against output-perturbation defenses (MemGuard, Jia
//! et al.; prediction purification, Yang et al.) and precision-limited
//! outputs. This module implements those alternatives as black-box
//! confidence post-processors so experiments can measure, under the *same*
//! attack, each defense's leakage reduction and accuracy cost — the
//! ablation DESIGN.md calls out.

use serde::{Deserialize, Serialize};

use pelican_nn::{Postprocess, SequenceModel};

use crate::privacy::PrivacyLayer;

/// A deployable defense against model-inversion attacks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// No defense (baseline).
    None,
    /// Pelican's temperature layer (§V-B).
    Temperature {
        /// Privacy temperature in `(0, 1]`.
        temperature: f32,
    },
    /// MemGuard-style output perturbation: additive noise on confidences.
    OutputNoise {
        /// Noise standard deviation.
        sigma: f32,
    },
    /// Precision truncation: round confidences to `decimals` places.
    Rounding {
        /// Decimal places kept.
        decimals: u32,
    },
}

impl DefenseKind {
    /// Installs the defense on a model (inference behaviour only).
    pub fn apply(self, model: &mut SequenceModel) {
        match self {
            DefenseKind::None => {
                model.set_temperature(1.0);
                model.set_postprocess(Postprocess::None);
            }
            DefenseKind::Temperature { temperature } => {
                PrivacyLayer::new(temperature).apply(model);
                model.set_postprocess(Postprocess::None);
            }
            DefenseKind::OutputNoise { sigma } => {
                model.set_temperature(1.0);
                model.set_postprocess(Postprocess::GaussianNoise { sigma, seed: 0x0DD5 });
            }
            DefenseKind::Rounding { decimals } => {
                model.set_temperature(1.0);
                model.set_postprocess(Postprocess::Round { decimals });
            }
        }
    }

    /// Whether the defense provably preserves the confidence *ranking*
    /// (and therefore top-k service accuracy). Only Pelican's temperature
    /// layer does; noise and rounding trade accuracy for privacy.
    pub fn preserves_ranking(self) -> bool {
        matches!(self, DefenseKind::None | DefenseKind::Temperature { .. })
    }

    /// Display name for reports.
    pub fn name(self) -> String {
        match self {
            DefenseKind::None => "none".into(),
            DefenseKind::Temperature { temperature } => format!("temperature {temperature:.0e}"),
            DefenseKind::OutputNoise { sigma } => format!("output noise σ={sigma}"),
            DefenseKind::Rounding { decimals } => format!("round {decimals}dp"),
        }
    }

    /// The comparison suite used by the `defense-compare` experiment.
    pub fn comparison_suite() -> Vec<DefenseKind> {
        vec![
            DefenseKind::None,
            DefenseKind::Temperature { temperature: 1e-3 },
            DefenseKind::OutputNoise { sigma: 0.05 },
            DefenseKind::OutputNoise { sigma: 0.2 },
            DefenseKind::Rounding { decimals: 1 },
        ]
    }
}

impl std::fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_nn::metrics::evaluate_top_k;
    use pelican_nn::Sample;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn model_and_samples() -> (SequenceModel, Vec<Sample>) {
        let mut rng = StdRng::seed_from_u64(5);
        let model = SequenceModel::general_lstm(8, 12, 6, 0.0, &mut rng);
        let samples = (0..30)
            .map(|_| {
                let c = rng.random_range(0..6);
                let mut x = vec![0.0; 8];
                x[c] = 1.0;
                Sample::new(vec![x.clone(), x], c)
            })
            .collect();
        (model, samples)
    }

    #[test]
    fn temperature_defense_preserves_accuracy_exactly() {
        let (model, samples) = model_and_samples();
        let baseline = evaluate_top_k(&model, &samples, &[1, 3]);
        let mut defended = model.clone();
        DefenseKind::Temperature { temperature: 1e-2 }.apply(&mut defended);
        let after = evaluate_top_k(&defended, &samples, &[1, 3]);
        assert_eq!(baseline.accuracy(1), after.accuracy(1));
        assert_eq!(baseline.accuracy(3), after.accuracy(3));
    }

    #[test]
    fn noise_defense_perturbs_confidences() {
        let (model, samples) = model_and_samples();
        let mut defended = model.clone();
        DefenseKind::OutputNoise { sigma: 0.1 }.apply(&mut defended);
        let before = model.predict_proba(&samples[0].xs);
        let after = defended.predict_proba(&samples[0].xs);
        assert_ne!(before, after);
        assert!((after.iter().sum::<f32>() - 1.0).abs() < 1e-4, "still a distribution");
    }

    #[test]
    fn noise_is_deterministic_per_query() {
        let (model, samples) = model_and_samples();
        let mut defended = model.clone();
        DefenseKind::OutputNoise { sigma: 0.1 }.apply(&mut defended);
        let a = defended.predict_proba(&samples[0].xs);
        let b = defended.predict_proba(&samples[0].xs);
        assert_eq!(a, b, "repeating a query must not let the adversary average the noise away");
        let other = samples
            .iter()
            .find(|s| s.xs != samples[0].xs)
            .expect("samples contain at least two distinct inputs");
        let c = defended.predict_proba(&other.xs);
        assert_ne!(a, c, "different queries draw different noise");
    }

    #[test]
    fn rounding_coarsens_confidences() {
        let (model, samples) = model_and_samples();
        let mut defended = model.clone();
        DefenseKind::Rounding { decimals: 1 }.apply(&mut defended);
        let p = defended.predict_proba(&samples[0].xs);
        // After rounding to one decimal, at most 11 distinct raw values
        // exist (0.0, 0.1, …, 1.0); renormalization rescales but cannot
        // increase the number of distinct confidence levels.
        let mut distinct: Vec<u32> = p.iter().map(|v| v.to_bits()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 11, "rounding must coarsen the confidence alphabet");
        let baseline = model.predict_proba(&samples[0].xs);
        assert_ne!(baseline, p, "defense must actually change the outputs");
    }

    #[test]
    fn ranking_preservation_flags() {
        assert!(DefenseKind::None.preserves_ranking());
        assert!(DefenseKind::Temperature { temperature: 1e-3 }.preserves_ranking());
        assert!(!DefenseKind::OutputNoise { sigma: 0.1 }.preserves_ranking());
        assert!(!DefenseKind::Rounding { decimals: 1 }.preserves_ranking());
    }

    #[test]
    fn apply_none_clears_previous_defense() {
        let (model, samples) = model_and_samples();
        let mut m = model.clone();
        DefenseKind::OutputNoise { sigma: 0.3 }.apply(&mut m);
        DefenseKind::None.apply(&mut m);
        assert_eq!(m.predict_proba(&samples[0].xs), model.predict_proba(&samples[0].xs));
    }
}

//! The Pelican privacy enhancement (§V-B): inference-time confidence
//! sharpening.
//!
//! The attack of [`pelican_attacks`] thrives on graded confidence scores:
//! each enumerated candidate is scored by how confident the model is in the
//! observed output. Pelican inserts a temperature layer between the linear
//! head and the softmax *at inference only*: dividing logits by a
//! temperature `T → 0` drives the top confidence toward 1 and the rest
//! toward 0, so candidates become indistinguishable and the attack
//! degenerates to the adversary's prior — while the *ranking* of
//! confidences, and hence the service's top-k accuracy, is unchanged
//! (up to floating-point precision).

use serde::{Deserialize, Serialize};

use pelican_nn::SequenceModel;

/// A user-chosen privacy setting: the temperature applied at inference.
///
/// The paper frames the temperature as a *privacy tuner* the user controls
/// and keeps secret from the service provider; smaller values mean more
/// privacy. `PrivacyLayer::default()` uses the paper's strongest evaluated
/// setting, `T = 1e-3`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyLayer {
    temperature: f32,
}

impl PrivacyLayer {
    /// Creates a privacy layer with the given temperature.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < temperature <= 1` — temperatures above 1 would
    /// *flatten* confidences, leaking relative ordering more readily, and
    /// are never what the defense wants.
    pub fn new(temperature: f32) -> Self {
        assert!(
            temperature > 0.0 && temperature <= 1.0 && temperature.is_finite(),
            "privacy temperature must be in (0, 1], got {temperature}"
        );
        Self { temperature }
    }

    /// The configured temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Installs the layer into a model (mutating its inference behaviour).
    pub fn apply(&self, model: &mut SequenceModel) {
        model.set_temperature(self.temperature);
    }

    /// Removes any privacy scaling from a model.
    pub fn remove(model: &mut SequenceModel) {
        model.set_temperature(1.0);
    }

    /// The paper's evaluated temperature sweep (Fig. 5b).
    pub fn paper_sweep() -> [PrivacyLayer; 5] {
        [
            PrivacyLayer::new(1e-1),
            PrivacyLayer::new(1e-2),
            PrivacyLayer::new(1e-3),
            PrivacyLayer::new(1e-4),
            PrivacyLayer::new(1e-5),
        ]
    }
}

impl Default for PrivacyLayer {
    /// The paper's default evaluated setting, `T = 1e-3`.
    fn default() -> Self {
        Self::new(1e-3)
    }
}

/// Percentage reduction in privacy leakage (the y-axis of Fig. 5):
/// `100 · (before − after) / before`, clamped below at 0.
///
/// `before` and `after` are attack accuracies (in `[0, 1]`) without and
/// with the defense. Returns 0 when `before` is 0 (nothing leaked to begin
/// with).
pub fn reduction_in_leakage(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        return 0.0;
    }
    (100.0 * (before - after) / before).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn apply_sets_model_temperature() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = SequenceModel::general_lstm(6, 8, 4, 0.0, &mut rng);
        PrivacyLayer::new(1e-2).apply(&mut model);
        assert_eq!(model.temperature(), 1e-2);
        PrivacyLayer::remove(&mut model);
        assert_eq!(model.temperature(), 1.0);
    }

    #[test]
    fn sharpening_preserves_top1_and_concentrates_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = SequenceModel::general_lstm(6, 8, 4, 0.0, &mut rng);
        let xs = vec![vec![0.4; 6], vec![-0.1; 6]];
        let before = model.predict_proba(&xs);
        PrivacyLayer::default().apply(&mut model);
        let after = model.predict_proba(&xs);
        assert_eq!(pelican_tensor::argmax(&before), pelican_tensor::argmax(&after));
        let max_after = after.iter().cloned().fold(0.0f32, f32::max);
        assert!(max_after > 0.999, "defense concentrates confidence, got {max_after}");
    }

    #[test]
    fn reduction_formula_matches_paper_units() {
        assert_eq!(reduction_in_leakage(0.8, 0.4), 50.0);
        assert_eq!(reduction_in_leakage(0.0, 0.5), 0.0);
        assert_eq!(reduction_in_leakage(0.5, 0.7), 0.0, "clamped at zero");
        assert!((reduction_in_leakage(0.776, 0.19) - 75.515).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "privacy temperature")]
    fn rejects_flattening_temperatures() {
        let _ = PrivacyLayer::new(2.0);
    }

    #[test]
    fn paper_sweep_is_descending() {
        let sweep = PrivacyLayer::paper_sweep();
        for pair in sweep.windows(2) {
            assert!(pair[0].temperature() > pair[1].temperature());
        }
    }
}

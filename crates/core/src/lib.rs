//! **Pelican**: privacy-preserving personalization of next-location models
//! for distributed mobile services.
//!
//! This crate is the top of the workspace reproducing *Atrey, Shenoy &
//! Jensen, "Preserving Privacy in Personalized Models for Distributed
//! Mobile Services" (ICDCS 2021)*. It assembles the substrates — the
//! [`pelican_nn`] LSTM stack, the [`pelican_mobility`] campus simulator and
//! the [`pelican_attacks`] inversion attacks — into the paper's end-to-end
//! system (Fig. 4):
//!
//! 1. **Cloud-based initial training** ([`CloudTrainer`]): a general
//!    next-location LSTM trained on many contributors' trajectories.
//! 2. **Device-based personalization** ([`DevicePersonalizer`]): the
//!    general model is downloaded to the user's device and adapted to the
//!    user's private history by transfer learning — feature extraction or
//!    fine tuning ([`PersonalizationMethod`]) — without the raw data ever
//!    leaving the device.
//! 3. **Model deployment** ([`Deployment`]): on-device or cloud-hosted
//!    black-box serving.
//! 4. **Model updates**: re-invoking transfer learning as new personal data
//!    accumulates.
//!
//! The privacy enhancement (§V-B) is an inference-time temperature layer
//! ([`privacy::PrivacyLayer`]) that sharpens confidence scores, starving
//! inversion attacks of signal while preserving top-k rankings.
//!
//! # Quickstart
//!
//! ```
//! use pelican::workbench::Scenario;
//! use pelican_mobility::{Scale, SpatialLevel};
//!
//! // Builds a tiny campus, trains a general model and personalizes it for
//! // one user (sizes kept minimal for the doc test).
//! let scenario = Scenario::builder(Scale::Tiny, SpatialLevel::Building)
//!     .seed(7)
//!     .personal_users(1)
//!     .build();
//! let user = &scenario.personal[0];
//! assert!(user.model.output_dim() > 0);
//! ```

pub mod defenses;
pub mod personalize;
pub mod platform;
pub mod privacy;
pub mod stats;
pub mod system;
pub mod workbench;

pub use defenses::DefenseKind;
pub use personalize::{personalize, prepare, PersonalizationConfig, PersonalizationMethod};
pub use platform::{usage_of, ComputeTier, NetworkLink, ResourceUsage};
pub use privacy::{reduction_in_leakage, PrivacyLayer};
pub use system::{CloudTrainer, Deployment, DevicePersonalizer, PelicanService, ServiceError};

//! Benchmark harness regenerating every table and figure of the Pelican
//! paper's evaluation (§IV and §V-C).
//!
//! Each experiment is a library function returning a structured result plus
//! a formatted report, driven by the `repro` binary:
//!
//! ```text
//! repro table2|table3|table4|fig2a|fig2b|fig2c|fig3a|fig3b|fig3c|fig5a|fig5b|fig5c|overhead|all
//!       [--scale tiny|small|paper] [--seed N] [--users N] [--instances N]
//! ```
//!
//! Scales trade fidelity for runtime; the *shape* of every result (who
//! wins, by what factor, where crossovers fall) is preserved at `small`,
//! which is the default. `paper` matches the paper's population sizes and
//! takes correspondingly long on a laptop.

pub mod experiments;
pub mod report;

use pelican_mobility::Scale;

/// Common knobs shared by every experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Problem-size preset.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Cap on personalization users (None = scale default).
    pub users: Option<usize>,
    /// Attack instances sampled per user.
    pub instances_per_user: usize,
    /// Device population override for fleet-scale experiments
    /// (None = the experiment's default population ladder).
    pub devices: Option<usize>,
    /// Lockstep cohort size for the training pipeline (None = the
    /// experiment's default; 0/1 = sequential per-job dispatch).
    pub cohort: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            seed: 42,
            users: None,
            instances_per_user: 8,
            devices: None,
            cohort: None,
        }
    }
}

impl RunConfig {
    /// Personalization-user cap appropriate for this scale: enough users
    /// for stable aggregates without hour-long runs.
    pub fn personal_users(&self) -> usize {
        self.users.unwrap_or(match self.scale {
            Scale::Tiny => 4,
            Scale::Small => 12,
            Scale::Paper => 100,
        })
    }

    /// Instance cap for the brutally expensive brute-force enumeration.
    pub fn brute_instances(&self) -> usize {
        match self.scale {
            Scale::Tiny => 2,
            Scale::Small => 2,
            Scale::Paper => 4,
        }
    }
}

/// Parses `repro`-style CLI arguments (everything after the experiment
/// name). Unknown flags produce an error message listing valid options.
pub fn parse_args(args: &[String]) -> Result<RunConfig, String> {
    let mut config = RunConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--scale" => {
                let v = take("--scale")?;
                config.scale = Scale::parse(v)
                    .ok_or_else(|| format!("unknown scale '{v}' (tiny|small|paper)"))?;
            }
            "--seed" => {
                let v = take("--seed")?;
                config.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--users" => {
                let v = take("--users")?;
                config.users = Some(v.parse().map_err(|_| format!("bad user count '{v}'"))?);
            }
            "--instances" => {
                let v = take("--instances")?;
                config.instances_per_user =
                    v.parse().map_err(|_| format!("bad instance count '{v}'"))?;
            }
            "--devices" => {
                let v = take("--devices")?;
                let n: usize = v.parse().map_err(|_| format!("bad device count '{v}'"))?;
                if n == 0 {
                    return Err("--devices must be positive".to_string());
                }
                config.devices = Some(n);
            }
            "--cohort" => {
                let v = take("--cohort")?;
                config.cohort = Some(v.parse().map_err(|_| format!("bad cohort size '{v}'"))?);
            }
            other => {
                return Err(format!(
                    "unknown flag '{other}' (valid: --scale --seed --users --instances --devices \
                     --cohort)"
                ))
            }
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let c = parse_args(&[]).unwrap();
        assert_eq!(c.scale, Scale::Small);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn parse_all_flags() {
        let c =
            parse_args(&s(&["--scale", "tiny", "--seed", "7", "--users", "3", "--instances", "5"]))
                .unwrap();
        assert_eq!(c.scale, Scale::Tiny);
        assert_eq!(c.seed, 7);
        assert_eq!(c.users, Some(3));
        assert_eq!(c.instances_per_user, 5);
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--scale", "huge"])).is_err());
        assert!(parse_args(&s(&["--seed"])).is_err());
    }

    #[test]
    fn parse_devices() {
        let c = parse_args(&s(&["--devices", "10000"])).unwrap();
        assert_eq!(c.devices, Some(10_000));
        assert!(parse_args(&s(&["--devices", "0"])).is_err());
        assert!(parse_args(&s(&["--devices", "lots"])).is_err());
    }

    #[test]
    fn parse_cohort() {
        let c = parse_args(&s(&["--cohort", "8"])).unwrap();
        assert_eq!(c.cohort, Some(8));
        assert_eq!(parse_args(&[]).unwrap().cohort, None);
        assert_eq!(parse_args(&s(&["--cohort", "0"])).unwrap().cohort, Some(0));
        assert!(parse_args(&s(&["--cohort", "many"])).is_err());
    }
}

//! Ablations of the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! * `defense_compare` — Pelican's temperature layer vs output noise vs
//!   rounding: leakage reduction *and* service-accuracy cost per defense.
//! * `interest_threshold` — the 1% locations-of-interest cutoff: search
//!   space saved vs attack accuracy lost.
//! * `gd_config` — gradient-descent attack sensitivity to its projection
//!   temperature and iteration budget.
//! * `freeze_depth` — fine-tuning with different freeze boundaries.

use pelican::{personalize, DefenseKind, PersonalizationConfig, PersonalizationMethod};
use pelican_attacks::{
    evaluate_attack, interest_locations, Adversary, AttackMethod, GradientDescent, PriorKind,
    TimeBased,
};
use pelican_mobility::SpatialLevel;
use pelican_nn::metrics::evaluate_top_k;
use pelican_nn::{Layer, TrainConfig};

use crate::report::{pct, Table};
use crate::RunConfig;

/// Defense comparison: attack top-3 with each defense deployed, leakage
/// reduction, and the defense's top-3 service-accuracy cost.
pub fn defense_compare(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut baseline_attack = 0.0;
    let mut rows: Vec<(String, f64, f64, bool)> = Vec::new();
    for defense in DefenseKind::comparison_suite() {
        let mut attack_hits = 0.0;
        let mut service_acc = 0.0;
        let mut total = 0.0;
        for user in &scenario.personal {
            let eval = scenario.attack_user_defended(
                user,
                Adversary::A1,
                &method,
                PriorKind::True,
                &[3],
                config.instances_per_user,
                defense,
            );
            attack_hits += eval.accuracy(3) * eval.total as f64;
            total += eval.total as f64;
            let mut defended = user.model.clone();
            defense.apply(&mut defended);
            // Ranking-preserving defenses (temperature) serve from the
            // exact logit ordering — the paper's "appropriate precision"
            // assumption; perturbation defenses are measured on the
            // perturbed confidences they actually export.
            let hits = user
                .test
                .iter()
                .filter(|s| {
                    let top = if defense.preserves_ranking() {
                        defended.predict_top_k(&s.xs, 3)
                    } else {
                        pelican_tensor::top_k(&defended.predict_proba(&s.xs), 3)
                    };
                    top.contains(&s.target)
                })
                .count();
            service_acc += hits as f64 / user.test.len().max(1) as f64;
        }
        let attack = attack_hits / total.max(1.0);
        let service = service_acc / scenario.personal.len().max(1) as f64;
        if matches!(defense, DefenseKind::None) {
            baseline_attack = attack;
        }
        rows.push((defense.name(), attack, service, defense.preserves_ranking()));
    }
    let mut t = Table::new(&[
        "defense",
        "attack top-3 (%)",
        "leakage reduction (%)",
        "service top-3 (%)",
        "ranking preserved",
    ]);
    for (name, attack, service, preserved) in rows {
        t.row(&[
            name,
            pct(attack),
            format!("{:.1}", pelican::reduction_in_leakage(baseline_attack, attack)),
            pct(service),
            if preserved { "yes".into() } else { "no".into() },
        ]);
    }
    t
}

/// Interest-threshold ablation: sweep the locations-of-interest confidence
/// cutoff and report search-space size vs attack accuracy.
pub fn interest_threshold(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut t =
        Table::new(&["threshold", "mean interest size", "queries/instance", "attack top-3 (%)"]);
    for threshold in [0.0f32, 0.001, 0.01, 0.05, 0.2] {
        let mut eval_total = pelican_attacks::AttackEvaluation::empty(&[3]);
        let mut interest_sum = 0usize;
        for user in &scenario.personal {
            let mut model = user.model.clone();
            let prior = scenario.prior(user, PriorKind::True);
            let probes = pelican_attacks::prior::random_probes(
                &scenario.dataset.space,
                24,
                scenario.seed ^ 0x1f,
            );
            let interest = interest_locations(&model, &probes, threshold);
            interest_sum += interest.len();
            let instances =
                scenario.attack_instances(user, Adversary::A1, config.instances_per_user);
            let eval = evaluate_attack(
                &method,
                &mut model,
                &scenario.dataset.space,
                &prior,
                &interest,
                &instances,
                &[3],
            );
            eval_total.merge(&eval);
        }
        t.row(&[
            format!("{threshold}"),
            format!("{:.1}", interest_sum as f64 / scenario.personal.len().max(1) as f64),
            format!("{:.0}", eval_total.queries_per_instance()),
            pct(eval_total.accuracy(3)),
        ]);
    }
    t
}

/// Gradient-descent attack ablation: projection temperature × iterations.
pub fn gd_config(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let mut t = Table::new(&["iterations", "projection T", "attack top-3 (%)"]);
    for iterations in [20usize, 60, 150] {
        for temperature in [0.1f32, 0.5, 1.0] {
            let method =
                AttackMethod::GradientDescent(GradientDescent { iterations, lr: 2.0, temperature });
            let eval = scenario.attack_all(
                Adversary::A1,
                &method,
                PriorKind::True,
                &[3],
                config.instances_per_user,
                None,
            );
            t.row(&[iterations.to_string(), format!("{temperature}"), pct(eval.accuracy(3))]);
        }
    }
    t
}

/// Freeze-depth ablation for fine tuning: which suffix of the general
/// model is retrained on personal data.
pub fn freeze_depth(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let personalization = PersonalizationConfig {
        train: TrainConfig { epochs: 8, batch_size: 16, ..TrainConfig::default() },
        hidden_dim: 32,
        dropout: 0.1,
        seed: scenario.seed ^ 0xF0,
    };
    let mut t = Table::new(&["retrained suffix", "mean train top-1 (%)", "mean test top-3 (%)"]);
    // Depth 0 = linear head only; 1 = second LSTM + head (the paper's
    // Fig. 1c choice); 2 = everything (no freezing).
    for (label, unfreeze_from_lstm) in
        [("head only", usize::MAX), ("lstm2 + head", 2), ("all layers", 1)]
    {
        let mut train_acc = 0.0;
        let mut test_acc = 0.0;
        let mut counted = 0usize;
        for user in &scenario.personal {
            let (mut model, _) = personalize(
                &scenario.general,
                &user.train,
                PersonalizationMethod::Reuse,
                &personalization,
            );
            // Custom freeze pattern on a fresh copy of the general model.
            model.freeze_all();
            let mut lstm_seen = 0usize;
            let n_layers = model.layers_mut().len();
            for (i, layer) in model.layers_mut().iter_mut().enumerate() {
                if matches!(layer, Layer::Lstm(_)) {
                    lstm_seen += 1;
                }
                let unfreeze = if unfreeze_from_lstm == usize::MAX {
                    i + 1 == n_layers // linear head only
                } else {
                    lstm_seen >= unfreeze_from_lstm
                };
                if unfreeze {
                    layer.set_trainable(true);
                }
            }
            let report = pelican_nn::fit(&mut model, &user.train, &personalization.train);
            assert!(report.steps > 0);
            train_acc += evaluate_top_k(&model, &user.train, &[1]).accuracy(1);
            test_acc += evaluate_top_k(&model, &user.test, &[3]).accuracy(3);
            counted += 1;
        }
        let n = counted.max(1) as f64;
        t.row(&[label.to_string(), pct(train_acc / n), pct(test_acc / n)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: Scale::Tiny,
            users: Some(1),
            instances_per_user: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn defense_compare_has_all_defenses() {
        let rendered = defense_compare(&tiny()).render();
        for d in ["none", "temperature", "noise", "round"] {
            assert!(rendered.contains(d), "missing defense {d}");
        }
    }

    #[test]
    fn interest_threshold_sweeps() {
        let rendered = interest_threshold(&tiny()).render();
        assert!(rendered.contains("0.01"));
        assert!(rendered.contains("0.2"));
    }

    #[test]
    fn freeze_depth_covers_three_patterns() {
        let rendered = freeze_depth(&tiny()).render();
        for l in ["head only", "lstm2 + head", "all layers"] {
            assert!(rendered.contains(l), "missing {l}");
        }
    }
}

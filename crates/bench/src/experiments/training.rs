//! Fleet-training experiment (`train-report`): drives the `pelican-train`
//! pipeline over a cohort at several trainer-pool widths and tabulates
//! throughput, parallel speedup, audit-gate outcomes and enroll latency.
//!
//! The training-side counterpart of `serve-report`: where that experiment
//! scales Fig. 4 step 3 (serving), this one scales steps 2 and 4
//! (personalization + updates) and the pre-release privacy audit. Wall
//! clock here is *host* time — parallel speedup is exactly the quantity
//! simulated time cannot show — so the speedup column depends on the
//! machine's core count, while every published model and audit verdict is
//! bit-identical across rows (asserted on every run).

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::SpatialLevel;
use pelican_nn::{ModelEnvelope, TrainConfig};
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_train::{cohort_jobs, AuditConfig, FleetTrainer, PipelineConfig, TrainReport};

use crate::report::Table;
use crate::RunConfig;

/// Trainer-pool widths swept by the experiment.
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One pipeline run at a fixed worker count, plus the envelope bytes it
/// published (used to assert cross-width determinism).
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Trainer-pool width of the run.
    pub workers: usize,
    /// The pipeline's report.
    pub report: TrainReport,
    /// Published envelope bytes, in job order.
    pub envelopes: Vec<Vec<u8>>,
}

/// Runs the worker-count sweep over one cohort.
///
/// The scenario is built with *zero* sequentially personalized users —
/// the pipeline itself does all per-user training — and the same job list
/// is replayed at every pool width.
///
/// # Panics
///
/// Panics if any width publishes weights that differ from the 1-worker
/// reference (the determinism contract).
pub fn run(config: &RunConfig) -> Vec<TrainOutcome> {
    let sizing = ScenarioSizing::for_scale(config.scale);
    let scenario: Scenario = Scenario::builder(config.scale, SpatialLevel::Building)
        .seed(config.seed)
        .personal_users(0)
        .build();
    let cohort_start = scenario.first_personal_user;
    // Clamp like Scenario::builder does: a --users override larger than
    // the personal-user pool must shrink the cohort, not index past it.
    let cohort_end = (cohort_start + config.personal_users()).min(scenario.dataset.users.len());
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_end, 0.8);

    let pipeline = |workers: usize| PipelineConfig {
        workers,
        base_seed: config.seed,
        personalization: PersonalizationConfig {
            train: TrainConfig {
                epochs: sizing.personal_epochs,
                batch_size: 16,
                ..TrainConfig::default()
            },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig {
            max_instances: config.instances_per_user,
            seed: config.seed ^ 0xA0D1,
            ..AuditConfig::default()
        },
        ..PipelineConfig::default()
    };

    let outcomes: Vec<TrainOutcome> = WORKER_SWEEP
        .into_iter()
        .map(|workers| {
            let registry =
                ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
            let report = FleetTrainer::new(pipeline(workers)).run(
                &scenario.general,
                &scenario.dataset.space,
                &jobs,
                &registry,
            );
            let envelopes = jobs
                .iter()
                .map(|job| {
                    let (model, _) = registry.get(job.user_id).expect("published model decodes");
                    ModelEnvelope::encode(&model).as_bytes().to_vec()
                })
                .collect();
            TrainOutcome { workers, report, envelopes }
        })
        .collect();

    let reference = &outcomes[0];
    for outcome in &outcomes[1..] {
        assert_eq!(
            reference.envelopes, outcome.envelopes,
            "{}-worker run published different weights than sequential",
            outcome.workers
        );
    }
    outcomes
}

/// Main metrics table: one row per pool width.
pub fn table(outcomes: &[TrainOutcome]) -> Table {
    let mut t = Table::new(&[
        "workers",
        "models",
        "wall(ms)",
        "models/s",
        "speedup",
        "passed",
        "escalated",
        "exhausted",
        "p50-enroll(ms)",
        "audit-queries",
    ]);
    let baseline = outcomes.first().map_or(0.0, |o| o.report.wall.as_secs_f64());
    for outcome in outcomes {
        let r = &outcome.report;
        let wall = r.wall.as_secs_f64();
        let speedup = if wall == 0.0 { 0.0 } else { baseline / wall };
        t.row(&[
            outcome.workers.to_string(),
            r.outcomes.len().to_string(),
            format!("{:.0}", wall * 1e3),
            format!("{:.2}", r.models_per_sec()),
            format!("{speedup:.2}x"),
            r.passed().to_string(),
            r.escalated().to_string(),
            r.exhausted().to_string(),
            format!("{:.1}", r.enroll_latency_p50().as_secs_f64() * 1e3),
            r.audit_queries().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    #[test]
    fn train_report_runs_at_tiny_scale() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(2),
            instances_per_user: 2,
            ..RunConfig::default()
        };
        let outcomes = run(&config);
        assert_eq!(outcomes.len(), WORKER_SWEEP.len());
        for outcome in &outcomes {
            assert_eq!(outcome.report.outcomes.len(), 2, "both users published");
            assert_eq!(
                outcome.report.passed() + outcome.report.escalated() + outcome.report.exhausted(),
                2
            );
        }
        // Audit verdicts, like weights, are schedule-independent (weights
        // are asserted inside run()).
        for outcome in &outcomes[1..] {
            for (a, b) in outcomes[0].report.outcomes.iter().zip(&outcome.report.outcomes) {
                assert_eq!(a.gate, b.gate);
            }
        }
        let rendered = table(&outcomes).render();
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("1.00x"), "the 1-worker row is its own baseline");
    }

    #[test]
    fn oversized_user_override_shrinks_the_cohort_instead_of_panicking() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(1_000),
            instances_per_user: 1,
            ..RunConfig::default()
        };
        let outcomes = run(&config);
        let published = outcomes[0].report.outcomes.len();
        assert!(published > 0, "clamped cohort still trains");
        assert!(published < 1_000, "cohort is capped at the personal-user pool");
    }
}

//! Fleet-training experiment (`train-report`): drives the `pelican-train`
//! pipeline over a cohort at several trainer-pool widths and tabulates
//! throughput, parallel speedup, audit-gate outcomes and enroll latency.
//!
//! The training-side counterpart of `serve-report`: where that experiment
//! scales Fig. 4 step 3 (serving), this one scales steps 2 and 4
//! (personalization + updates) and the pre-release privacy audit. Wall
//! clock here is *host* time — parallel speedup is exactly the quantity
//! simulated time cannot show — so the speedup column depends on the
//! machine's core count, while every published model and audit verdict is
//! bit-identical across rows (asserted on every run).

use std::time::{Duration, Instant};

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::SpatialLevel;
use pelican_nn::{ModelEnvelope, TrainConfig};
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_tensor::{thread_batched_flops_now, ThreadFlopGuard};
use pelican_train::{
    cohort_jobs, form_cohorts, AuditConfig, FleetTrainer, PipelineConfig, TrainJob, TrainReport,
};

use crate::report::Table;
use crate::RunConfig;

/// Trainer-pool widths swept by the experiment.
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Lockstep cohort sizes swept by the batched experiment (0 = the
/// sequential per-job dispatch, the baseline row).
pub const COHORT_SWEEP: [usize; 5] = [0, 2, 4, 8, 16];

/// One pipeline run at a fixed worker count, plus the envelope bytes it
/// published (used to assert cross-width determinism).
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Trainer-pool width of the run.
    pub workers: usize,
    /// The pipeline's report.
    pub report: TrainReport,
    /// Published envelope bytes, in job order.
    pub envelopes: Vec<Vec<u8>>,
}

/// Runs the worker-count sweep over one cohort.
///
/// The scenario is built with *zero* sequentially personalized users —
/// the pipeline itself does all per-user training — and the same job list
/// is replayed at every pool width.
///
/// # Panics
///
/// Panics if any width publishes weights that differ from the 1-worker
/// reference (the determinism contract).
pub fn run(config: &RunConfig) -> Vec<TrainOutcome> {
    let sizing = ScenarioSizing::for_scale(config.scale);
    let scenario: Scenario = Scenario::builder(config.scale, SpatialLevel::Building)
        .seed(config.seed)
        .personal_users(0)
        .build();
    let cohort_start = scenario.first_personal_user;
    // Clamp like Scenario::builder does: a --users override larger than
    // the personal-user pool must shrink the cohort, not index past it.
    let cohort_end = (cohort_start + config.personal_users()).min(scenario.dataset.users.len());
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_end, 0.8);

    let cohort = config.cohort.unwrap_or(0);
    let pipeline = |workers: usize| PipelineConfig {
        workers,
        base_seed: config.seed,
        cohort,
        personalization: PersonalizationConfig {
            train: TrainConfig {
                epochs: sizing.personal_epochs,
                batch_size: 16,
                ..TrainConfig::default()
            },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig {
            max_instances: config.instances_per_user,
            seed: config.seed ^ 0xA0D1,
            ..AuditConfig::default()
        },
        ..PipelineConfig::default()
    };

    let outcomes: Vec<TrainOutcome> = WORKER_SWEEP
        .into_iter()
        .map(|workers| {
            let registry =
                ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
            let report = FleetTrainer::new(pipeline(workers)).run(
                &scenario.general,
                &scenario.dataset.space,
                &jobs,
                &registry,
            );
            let envelopes = jobs
                .iter()
                .map(|job| {
                    let (model, _) = registry.get(job.user_id).expect("published model decodes");
                    ModelEnvelope::encode(&model).as_bytes().to_vec()
                })
                .collect();
            TrainOutcome { workers, report, envelopes }
        })
        .collect();

    let reference = &outcomes[0];
    for outcome in &outcomes[1..] {
        assert_eq!(
            reference.envelopes, outcome.envelopes,
            "{}-worker run published different weights than sequential",
            outcome.workers
        );
        // FLOP-count parity: with identical work per row, the speedup
        // column is FLOP-normalized by construction.
        assert_eq!(
            reference.report.flops, outcome.report.flops,
            "{}-worker run performed a different FLOP count than sequential",
            outcome.workers
        );
    }
    outcomes
}

/// Main metrics table: one row per pool width.
pub fn table(outcomes: &[TrainOutcome]) -> Table {
    let mut t = Table::new(&[
        "workers",
        "models",
        "wall(ms)",
        "models/s",
        "Gflop/s",
        "speedup",
        "passed",
        "escalated",
        "exhausted",
        "p50-enroll(ms)",
        "audit-queries",
    ]);
    let baseline = outcomes.first().map_or(0.0, |o| o.report.wall.as_secs_f64());
    for outcome in outcomes {
        let r = &outcome.report;
        let wall = r.wall.as_secs_f64();
        // Every row performs the identical FLOP count (asserted in
        // `run`), so the wall-clock speedup *is* the FLOP-normalized
        // speedup; the Gflop/s column makes the normalization visible.
        let speedup = if wall == 0.0 { 0.0 } else { baseline / wall };
        let gflops = if wall == 0.0 { 0.0 } else { r.flops as f64 / wall / 1e9 };
        t.row(&[
            outcome.workers.to_string(),
            r.outcomes.len().to_string(),
            format!("{:.0}", wall * 1e3),
            format!("{:.2}", r.models_per_sec()),
            format!("{gflops:.2}"),
            format!("{speedup:.2}x"),
            r.passed().to_string(),
            r.escalated().to_string(),
            r.exhausted().to_string(),
            format!("{:.1}", r.enroll_latency_p50().as_secs_f64() * 1e3),
            r.audit_queries().to_string(),
        ]);
    }
    t
}

/// One single-core training-stage run at a fixed lockstep cohort size.
#[derive(Debug, Clone)]
pub struct BatchedOutcome {
    /// Lockstep cohort size (0 = sequential per-job dispatch).
    pub cohort: usize,
    /// Wall clock of the training stage (envelope decode, warm-start
    /// prep, epoch loop) over the whole fleet at this cohort size.
    pub wall: Duration,
    /// This thread's total FLOPs for the stage (identical across rows).
    pub flops: u64,
    /// FLOPs recorded by the fused batched kernels (0 for the baseline).
    pub fused_flops: u64,
    /// Mean cohort fill: jobs divided by `cohorts × B` (1.0 when B ≤ 1).
    pub fill: f64,
    /// Trained-model envelope bytes, in job order.
    pub envelopes: Vec<Vec<u8>>,
}

/// The batched-cohort sweep: per-epoch throughput and fused-kernel share
/// vs. cohort size, all on one worker.
#[derive(Debug, Clone)]
pub struct BatchedRun {
    /// Master seed of the run.
    pub seed: u64,
    /// Jobs in the fleet.
    pub jobs: usize,
    /// Training epochs per job.
    pub epochs: usize,
    /// One outcome per [`COHORT_SWEEP`] entry.
    pub outcomes: Vec<BatchedOutcome>,
}

/// Runs the lockstep cohort sweep over one fleet's *training stage*,
/// single-core.
///
/// Every row trains the same fleet at a different cohort size on one
/// thread, timing only the training stage — envelope decode, warm-start
/// prep and the epoch loop — which is the stage lockstep dispatch
/// accelerates. The pipeline's audit and publication stages execute
/// identical code in both dispatch modes (and at fleet scale dominate
/// the end-to-end wall), so they are excluded: epoch throughput here is
/// the per-trainer metric, and the ratio isolates the fused-kernel win
/// (cache locality + GEMM-shaped chunk steps) from thread-level
/// parallelism. Trained weights and FLOP counts are asserted
/// bit-identical across rows.
///
/// # Panics
///
/// Panics if any cohort size trains different weights or performs a
/// different FLOP count than the sequential baseline.
pub fn run_batched(config: &RunConfig) -> BatchedRun {
    let sizing = ScenarioSizing::for_scale(config.scale);
    let scenario: Scenario = Scenario::builder(config.scale, SpatialLevel::Building)
        .seed(config.seed)
        .personal_users(0)
        .build();
    let cohort_start = scenario.first_personal_user;
    let cohort_end = (cohort_start + config.personal_users()).min(scenario.dataset.users.len());
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_end, 0.8);

    // Unlike `run`, the mini-batch size stays at the `TrainConfig`
    // default (32): the chunk is the unit the fused kernels batch over,
    // and the default is the fleet's deployed configuration.
    let trainer = FleetTrainer::new(PipelineConfig {
        workers: 1,
        base_seed: config.seed,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: sizing.personal_epochs, ..TrainConfig::default() },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig {
            max_instances: config.instances_per_user,
            seed: config.seed ^ 0xA0D1,
            ..AuditConfig::default()
        },
        ..PipelineConfig::default()
    });
    let general = ModelEnvelope::encode(&scenario.general);

    let outcomes: Vec<BatchedOutcome> = COHORT_SWEEP
        .into_iter()
        .map(|cohort| {
            // The stage runs inline on this thread, so the per-thread
            // counters capture it exactly even with concurrent test
            // threads. Envelope encoding happens after the clock stops —
            // both dispatch modes would pay it equally.
            let guard = ThreadFlopGuard::start();
            let fused_before = thread_batched_flops_now();
            let start = Instant::now();
            let mut models = Vec::with_capacity(jobs.len());
            if cohort <= 1 {
                for job in &jobs {
                    models.push(trainer.train_candidate(&general, job).0);
                }
            } else {
                for range in form_cohorts(&jobs, cohort, |_: &TrainJob| 0) {
                    for (model, _, _) in trainer.train_candidates_lockstep(&general, &jobs[range]) {
                        models.push(model);
                    }
                }
            }
            let wall = start.elapsed();
            let fused_flops = thread_batched_flops_now().wrapping_sub(fused_before);
            let flops = guard.stop();
            let fill = if cohort <= 1 {
                1.0
            } else {
                let n = form_cohorts(&jobs, cohort, |_: &TrainJob| 0).len();
                jobs.len() as f64 / (n * cohort) as f64
            };
            let envelopes = models
                .iter()
                .map(|model| ModelEnvelope::encode(model).as_bytes().to_vec())
                .collect();
            BatchedOutcome { cohort, wall, flops, fused_flops, fill, envelopes }
        })
        .collect();

    let baseline = &outcomes[0];
    assert_eq!(baseline.fused_flops, 0, "sequential dispatch must not touch fused kernels");
    for outcome in &outcomes[1..] {
        assert_eq!(
            baseline.envelopes, outcome.envelopes,
            "cohort-{} run trained different weights than sequential",
            outcome.cohort
        );
        assert_eq!(
            baseline.flops, outcome.flops,
            "cohort-{} run performed a different FLOP count than sequential",
            outcome.cohort
        );
        assert!(outcome.fused_flops > 0, "cohort-{} run never hit a fused kernel", outcome.cohort);
    }
    BatchedRun { seed: config.seed, jobs: jobs.len(), epochs: sizing.personal_epochs, outcomes }
}

/// Metrics table of the batched sweep: one row per cohort size.
pub fn batched_table(run: &BatchedRun) -> Table {
    let mut t =
        Table::new(&["cohort", "jobs", "train-wall(ms)", "epochs/s", "speedup", "fused%", "fill%"]);
    let baseline = run.outcomes.first().map_or(0.0, |o| o.wall.as_secs_f64());
    for outcome in &run.outcomes {
        let wall = outcome.wall.as_secs_f64();
        let speedup = if wall == 0.0 { 0.0 } else { baseline / wall };
        let epochs_per_sec = if wall == 0.0 { 0.0 } else { (run.jobs * run.epochs) as f64 / wall };
        let fused = if outcome.flops == 0 {
            0.0
        } else {
            100.0 * outcome.fused_flops as f64 / outcome.flops as f64
        };
        t.row(&[
            if outcome.cohort == 0 { "seq".to_string() } else { outcome.cohort.to_string() },
            run.jobs.to_string(),
            format!("{:.0}", wall * 1e3),
            format!("{epochs_per_sec:.1}"),
            format!("{speedup:.2}x"),
            format!("{fused:.1}"),
            format!("{:.0}", outcome.fill * 100.0),
        ]);
    }
    t
}

/// Serializes the batched sweep as the tracked `BENCH_train_batched.json`
/// schema: training-stage epoch throughput and cohort fill rate vs.
/// cohort size, plus the bit-identity and FLOP-parity verdicts CI gates
/// on.
pub fn to_json(run: &BatchedRun) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"train-batched\",\n");
    out.push_str("  \"stage\": \"train\",\n");
    out.push_str(&format!("  \"seed\": {},\n", run.seed));
    out.push_str(&format!("  \"jobs\": {},\n", run.jobs));
    out.push_str(&format!("  \"epochs_per_job\": {},\n", run.epochs));
    out.push_str(&format!(
        "  \"flops_per_run\": {},\n",
        run.outcomes.first().map_or(0, |o| o.flops)
    ));
    out.push_str("  \"bit_identical\": true,\n");
    out.push_str("  \"flop_parity\": true,\n");
    out.push_str("  \"cohorts\": [\n");
    let baseline = run.outcomes.first().map_or(0.0, |o| o.wall.as_secs_f64());
    for (i, outcome) in run.outcomes.iter().enumerate() {
        let wall = outcome.wall.as_secs_f64();
        let epochs_per_sec = if wall == 0.0 { 0.0 } else { (run.jobs * run.epochs) as f64 / wall };
        out.push_str(&format!(
            "    {{\"cohort\": {}, \"wall_ms\": {:.3}, \"epochs_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"fused_flop_fraction\": {:.4}, \"fill\": {:.4}}}{}\n",
            outcome.cohort,
            wall * 1e3,
            epochs_per_sec,
            if wall == 0.0 { 0.0 } else { baseline / wall },
            if outcome.flops == 0 {
                0.0
            } else {
                outcome.fused_flops as f64 / outcome.flops as f64
            },
            outcome.fill,
            if i + 1 < run.outcomes.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    #[test]
    fn train_report_runs_at_tiny_scale() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(2),
            instances_per_user: 2,
            ..RunConfig::default()
        };
        let outcomes = run(&config);
        assert_eq!(outcomes.len(), WORKER_SWEEP.len());
        for outcome in &outcomes {
            assert_eq!(outcome.report.outcomes.len(), 2, "both users published");
            assert_eq!(
                outcome.report.passed() + outcome.report.escalated() + outcome.report.exhausted(),
                2
            );
        }
        // Audit verdicts, like weights, are schedule-independent (weights
        // are asserted inside run()).
        for outcome in &outcomes[1..] {
            for (a, b) in outcomes[0].report.outcomes.iter().zip(&outcome.report.outcomes) {
                assert_eq!(a.gate, b.gate);
            }
        }
        let rendered = table(&outcomes).render();
        assert!(rendered.contains("speedup"));
        assert!(rendered.contains("1.00x"), "the 1-worker row is its own baseline");
    }

    #[test]
    fn batched_sweep_is_bit_identical_and_serializes() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(3),
            instances_per_user: 2,
            ..RunConfig::default()
        };
        // Bit-identity and FLOP parity across the sweep are asserted
        // inside run_batched; here we pin the derived outputs.
        let run = run_batched(&config);
        assert_eq!(run.outcomes.len(), COHORT_SWEEP.len());
        assert_eq!(run.jobs, 3);
        for outcome in &run.outcomes[1..] {
            assert!(outcome.fill > 0.0 && outcome.fill <= 1.0);
        }
        let rendered = batched_table(&run).render();
        assert!(rendered.contains("seq"), "baseline row labeled");
        assert!(rendered.contains("fused%"));
        let json = to_json(&run);
        assert!(json.contains("\"experiment\": \"train-batched\""));
        assert!(json.contains("\"flop_parity\": true"));
        assert!(json.contains("\"cohort\": 16"));
    }

    #[test]
    fn train_report_honors_a_cohort_override() {
        // `repro train-report --cohort 8` must run the width sweep in
        // lockstep mode and still publish sequential-identical bits (the
        // asserts live inside run()).
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(2),
            instances_per_user: 2,
            cohort: Some(8),
            ..RunConfig::default()
        };
        let outcomes = run(&config);
        assert_eq!(outcomes.len(), WORKER_SWEEP.len());
        for outcome in &outcomes {
            assert_eq!(outcome.report.outcomes.len(), 2);
        }
    }

    #[test]
    fn oversized_user_override_shrinks_the_cohort_instead_of_panicking() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(1_000),
            instances_per_user: 1,
            ..RunConfig::default()
        };
        let outcomes = run(&config);
        let published = outcomes[0].report.outcomes.len();
        assert!(published > 0, "clamped cohort still trains");
        assert!(published < 1_000, "cohort is capped at the personal-user pool");
    }
}

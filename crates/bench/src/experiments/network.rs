//! Fleet-network experiment (`net-report`): replay one fleet-training
//! run through the `pelican-sim` discrete-event simulator across a
//! link-mix × retry-policy sweep, plus the cloud-serving round-trip path.
//!
//! Two contracts are asserted on every run, not just in tests:
//!
//! * **Determinism** — the pipeline is run at two trainer-pool widths;
//!   both replays must produce bit-identical event traces and latency
//!   breakdowns (per-job simulated compute comes from exact per-thread
//!   FLOP counts, so pool width is invisible to the network).
//! * **Contention** — a shared cloud uplink must yield strictly higher
//!   p95 enroll latency than the uncontended per-device baseline, with
//!   real queueing (non-zero p95 queue component).

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::SpatialLevel;
use pelican_nn::{ModelEnvelope, TrainConfig};
use pelican_serve::{run_fleet, CloudNetwork, FleetConfig, RegistryConfig, ShardedRegistry};
use pelican_sim::{Discipline, LinkMix, LinkProfile, RetryPolicy, StragglerConfig, TransferPolicy};
use pelican_train::{
    cohort_jobs, simulate_fleet_network, AuditConfig, FleetTrainer, NetComponent, NetTrainReport,
    NetworkConfig, PipelineConfig, TrainReport, UplinkMode,
};

use crate::report::Table;
use crate::RunConfig;

/// One sweep cell: a link mix × retry policy, simulated over the same
/// training run.
#[derive(Debug, Clone)]
pub struct NetOutcome {
    /// Link-mix row label.
    pub mix: &'static str,
    /// Retry-policy column label.
    pub retry: &'static str,
    /// The simulated fleet network report.
    pub report: NetTrainReport,
}

/// Everything `net-report` produces.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// The training report the simulations replay (width-1 reference).
    pub train: TrainReport,
    /// General-envelope download size (bytes).
    pub general_bytes: u64,
    /// The link-mix × retry-policy sweep.
    pub sweep: Vec<NetOutcome>,
    /// Uncontended per-device baseline (all-wifi).
    pub baseline: NetTrainReport,
    /// Same fleet on a shared FIFO wifi uplink.
    pub contended: NetTrainReport,
}

/// The sweep's link mixes. Stragglers ride along in every row so the
/// straggler column is meaningful.
fn mixes() -> Vec<(&'static str, LinkMix)> {
    let stragglers = StragglerConfig { fraction: 0.15, slowdown: 8.0 };
    vec![
        ("all-wifi", LinkMix::all_wifi().with_stragglers(stragglers)),
        ("campus", LinkMix::campus().with_stragglers(stragglers)),
        ("cellular", LinkMix::cellular_heavy().with_stragglers(stragglers)),
    ]
}

/// The sweep's retry policies, applied to *both* transfers of every
/// device. The `retry` column bounds each attempt to 500 ms with
/// exponential backoff — generous for a healthy link, hopeless for an
/// 8× straggler's download on cellular, so the timed-out column fills.
fn retries() -> Vec<(&'static str, TransferPolicy)> {
    vec![
        ("none", TransferPolicy::default()),
        (
            "timeout+backoff",
            TransferPolicy {
                timeout_us: Some(500_000),
                retry: RetryPolicy::exponential(3, 100_000, 2.0),
            },
        ),
    ]
}

/// Runs the experiment: trains one cohort (at two pool widths, asserting
/// network-level determinism), then sweeps link mixes × retry policies.
///
/// # Panics
///
/// Panics if the two pool widths produce different event traces or
/// latency breakdowns, or if the contended uplink fails to raise p95
/// strictly above the per-device baseline (the acceptance contract).
pub fn run(config: &RunConfig) -> NetworkRun {
    let sizing = ScenarioSizing::for_scale(config.scale);
    let scenario: Scenario = Scenario::builder(config.scale, SpatialLevel::Building)
        .seed(config.seed)
        .personal_users(0)
        .build();
    let cohort_start = scenario.first_personal_user;
    let cohort_end = (cohort_start + config.personal_users()).min(scenario.dataset.users.len());
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_end, 0.8);
    let general_bytes = ModelEnvelope::encode(&scenario.general).len() as u64;

    let pipeline = |workers: usize| PipelineConfig {
        workers,
        base_seed: config.seed,
        personalization: PersonalizationConfig {
            train: TrainConfig {
                epochs: sizing.personal_epochs,
                batch_size: 16,
                ..TrainConfig::default()
            },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig {
            max_instances: config.instances_per_user,
            seed: config.seed ^ 0xA0D1,
            ..AuditConfig::default()
        },
        ..PipelineConfig::default()
    };
    let train_at = |workers: usize| {
        let registry = ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
        FleetTrainer::new(pipeline(workers)).run(
            &scenario.general,
            &scenario.dataset.space,
            &jobs,
            &registry,
        )
    };

    // Acceptance contract 1: different trainer-pool widths replay to
    // bit-identical traces and breakdowns.
    let train = train_at(1);
    let train_wide = train_at(2);
    let net_config = NetworkConfig { seed: config.seed ^ 0x11E7, ..NetworkConfig::default() };
    let narrow = simulate_fleet_network(&train, general_bytes, &net_config);
    let wide = simulate_fleet_network(&train_wide, general_bytes, &net_config);
    assert_eq!(
        narrow.sim.trace, wide.sim.trace,
        "1- and 2-worker runs must replay bit-identical event traces"
    );
    assert_eq!(narrow.fingerprint(), wide.fingerprint());
    assert_eq!(narrow.enrolls, wide.enrolls, "latency breakdowns must match across widths");

    // Acceptance contract 2: shared-uplink contention strictly raises
    // p95 over the uncontended per-device baseline (same link class, so
    // the difference is pure queueing).
    let wifi = |uplink| NetworkConfig {
        mix: LinkMix::all_wifi(),
        uplink,
        seed: config.seed ^ 0x11E7,
        ..NetworkConfig::default()
    };
    let baseline = simulate_fleet_network(&train, general_bytes, &wifi(UplinkMode::PerDevice));
    let contended = simulate_fleet_network(
        &train,
        general_bytes,
        &wifi(UplinkMode::Shared { profile: LinkProfile::wifi(), discipline: Discipline::Fifo }),
    );
    assert!(
        contended.enroll_percentile_us(0.95) > baseline.enroll_percentile_us(0.95),
        "shared uplink must strictly raise p95: {} vs {} µs",
        contended.enroll_percentile_us(0.95),
        baseline.enroll_percentile_us(0.95)
    );
    if jobs.len() >= 2 {
        assert!(
            contended.component_percentile_us(NetComponent::Queue, 0.95) > 0,
            "a shared uplink with simultaneous releases must queue"
        );
    }

    let sweep = mixes()
        .into_iter()
        .flat_map(|(mix_name, mix)| {
            retries()
                .into_iter()
                .map(move |(retry_name, policy)| (mix_name, mix, retry_name, policy))
        })
        .map(|(mix_name, mix, retry_name, policy)| {
            let cell = NetworkConfig {
                mix,
                download: policy,
                upload: policy,
                seed: config.seed ^ 0x11E7,
                ..NetworkConfig::default()
            };
            NetOutcome {
                mix: mix_name,
                retry: retry_name,
                report: simulate_fleet_network(&train, general_bytes, &cell),
            }
        })
        .collect();

    NetworkRun { train, general_bytes, sweep, baseline, contended }
}

/// Main sweep table: one row per link-mix × retry-policy cell.
pub fn table(run: &NetworkRun) -> Table {
    let mut t = Table::new(&[
        "mix",
        "retry",
        "p50(ms)",
        "p95(ms)",
        "queue-p95",
        "xfer-p95",
        "train-p95",
        "audit-p95",
        "stragglers",
        "strag-p95(ms)",
        "timed-out",
    ]);
    let ms = |us: u64| format!("{:.1}", us as f64 / 1e3);
    for cell in &run.sweep {
        let r = &cell.report;
        t.row(&[
            cell.mix.to_string(),
            cell.retry.to_string(),
            ms(r.enroll_percentile_us(0.50)),
            ms(r.enroll_percentile_us(0.95)),
            ms(r.component_percentile_us(NetComponent::Queue, 0.95)),
            ms(r.component_percentile_us(NetComponent::Transfer, 0.95)),
            ms(r.component_percentile_us(NetComponent::Train, 0.95)),
            ms(r.component_percentile_us(NetComponent::Audit, 0.95)),
            r.stragglers().to_string(),
            ms(r.straggler_p95_us()),
            r.timed_out().to_string(),
        ]);
    }
    t
}

/// Contention table: the uncontended baseline vs. the shared uplink.
pub fn contention_table(run: &NetworkRun) -> Table {
    let mut t = Table::new(&["uplink", "p50(ms)", "p95(ms)", "queue-p95(ms)", "trace"]);
    let ms = |us: u64| format!("{:.1}", us as f64 / 1e3);
    for (name, report) in [("per-device", &run.baseline), ("shared-fifo", &run.contended)] {
        t.row(&[
            name.to_string(),
            ms(report.enroll_percentile_us(0.50)),
            ms(report.enroll_percentile_us(0.95)),
            ms(report.component_percentile_us(NetComponent::Queue, 0.95)),
            format!("{:016x}", report.fingerprint()),
        ]);
    }
    t
}

/// Cloud-serving round trips: on-device vs. cloud-deployed (same
/// traffic, same registry shape).
pub fn cloud_table(config: &RunConfig) -> Table {
    let scenario: Scenario = super::scenario(config, SpatialLevel::Building);
    let fleet = |cloud| FleetConfig {
        traffic: pelican_serve::TrafficConfig {
            requests: 2_000,
            seed: config.seed,
            ..pelican_serve::TrafficConfig::default()
        },
        unenrolled_clients: scenario.personal.len().max(2),
        cloud,
        ..FleetConfig::default()
    };
    let on_device = run_fleet(&scenario, &fleet(None)).expect("envelopes decode");
    let cloud = run_fleet(
        &scenario,
        &fleet(Some(CloudNetwork { seed: config.seed ^ 0xC10D, ..CloudNetwork::default() })),
    )
    .expect("envelopes decode");

    let mut t = Table::new(&[
        "deployment",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "uplink-wait-p95",
        "egress-wait-p95",
        "dropped",
    ]);
    let ms = |us: u64| format!("{:.2}", us as f64 / 1e3);
    t.row(&[
        "on-device".into(),
        ms(on_device.report.p50_us),
        ms(on_device.report.p95_us),
        ms(on_device.report.p99_us),
        "-".into(),
        "-".into(),
        "0".into(),
    ]);
    let rtt = cloud.network.expect("cloud path produces a round-trip summary");
    t.row(&[
        "cloud".into(),
        ms(rtt.rtt_p50_us),
        ms(rtt.rtt_p95_us),
        ms(rtt.rtt_p99_us),
        ms(rtt.uplink_wait_p95_us),
        ms(rtt.egress_wait_p95_us),
        rtt.dropped.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: Scale::Tiny,
            users: Some(3),
            instances_per_user: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn net_report_runs_and_holds_its_contracts_at_tiny_scale() {
        // run() itself asserts determinism across widths and strict p95
        // contention — reaching the table is the test.
        let run = run(&tiny());
        assert_eq!(run.sweep.len(), 6, "3 mixes x 2 retry policies");
        assert!(run.general_bytes > 0);
        for cell in &run.sweep {
            assert_eq!(cell.report.enrolls.len(), run.train.outcomes.len());
        }
        let rendered = table(&run).render();
        assert!(rendered.contains("all-wifi") && rendered.contains("timeout+backoff"));
        assert!(contention_table(&run).render().contains("shared-fifo"));
    }

    #[test]
    fn cloud_serving_table_has_both_deployments() {
        let rendered = cloud_table(&tiny()).render();
        assert!(rendered.contains("on-device"));
        assert!(rendered.contains("cloud"));
    }
}

//! Fleet-serving experiment (`serve-report`): drives the `pelican-serve`
//! subsystem against a scenario population and tabulates throughput,
//! batching, cache behaviour and simulated latency per compute tier.
//!
//! This is the serving-side counterpart of the §V-C2 overhead experiment:
//! the same FLOP-accounted simulation, applied to query traffic instead
//! of training.

use pelican::platform::ComputeTier;
use pelican::workbench::Scenario;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_serve::{
    run_fleet, FleetConfig, FleetOutcome, RegistryConfig, SchedulerConfig, TrafficConfig,
};

use crate::report::Table;
use crate::RunConfig;

/// Requests driven per scale: enough for stable percentiles without
/// making `tiny` (the CI scale) slow.
fn requests_for(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2_000,
        Scale::Small => 10_000,
        Scale::Paper => 100_000,
    }
}

/// One serving run per compute tier (same traffic, same registry shape).
///
/// The full fleet is deliberately re-executed per tier rather than
/// re-costing one run's FLOPs: `measure` attributes work to a tier at
/// execution time, keeping the latency pipeline identical to what the
/// engine really does, and even at `paper` scale the second run costs
/// only a few extra seconds.
pub fn run(config: &RunConfig) -> Vec<FleetOutcome> {
    let scenario: Scenario = super::scenario(config, SpatialLevel::Building);
    let fleet = |tier: ComputeTier| FleetConfig {
        registry: RegistryConfig { shards: 8, hot_capacity: 4 },
        scheduler: SchedulerConfig { max_batch: 16, max_delay_us: 2_000 },
        traffic: TrafficConfig {
            requests: requests_for(config.scale),
            seed: config.seed,
            ..TrafficConfig::default()
        },
        tier,
        unenrolled_clients: scenario.personal.len().max(2),
        queries_per_user: 32,
        ..FleetConfig::default()
    };
    [ComputeTier::Cloud, ComputeTier::Device]
        .into_iter()
        .map(|tier| run_fleet(&scenario, &fleet(tier)).expect("registry envelopes decode"))
        .collect()
}

/// Main metrics table: one row per tier.
pub fn table(outcomes: &[FleetOutcome]) -> Table {
    let mut t = Table::new(&[
        "tier",
        "requests",
        "batches",
        "mean-batch",
        "qps(sim)",
        "hit-%",
        "fallback-%",
        "p50(us)",
        "p95(us)",
        "p99(us)",
    ]);
    for outcome in outcomes {
        let r = &outcome.report;
        t.row(&[
            r.tier.to_string(),
            r.requests.to_string(),
            r.batches.to_string(),
            format!("{:.2}", r.mean_batch),
            format!("{:.0}", r.throughput_qps),
            format!("{:.1}", outcome.stats.hit_rate() * 100.0),
            format!("{:.1}", r.fallback_share * 100.0),
            r.p50_us.to_string(),
            r.p95_us.to_string(),
            r.p99_us.to_string(),
        ]);
    }
    t
}

/// Batch-size histogram of the first outcome (batching is identical
/// across tiers — only simulated compute time differs).
pub fn histogram_table(outcomes: &[FleetOutcome]) -> Table {
    let mut t = Table::new(&["batch-size", "batches"]);
    if let Some(first) = outcomes.first() {
        for &(size, count) in &first.report.batch_histogram {
            t.row(&[size.to_string(), count.to_string()]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_report_runs_at_tiny_scale() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(2),
            instances_per_user: 2,
            ..RunConfig::default()
        };
        let outcomes = run(&config);
        assert_eq!(outcomes.len(), 2, "one run per tier");
        assert_eq!(outcomes[0].report.requests, requests_for(Scale::Tiny));
        // Same traffic, same batching; only simulated time differs.
        assert_eq!(outcomes[0].report.batches, outcomes[1].report.batches);
        assert!(
            outcomes[0].report.p95_us <= outcomes[1].report.p95_us,
            "cloud tier must not be slower than device tier"
        );
        let rendered = table(&outcomes).render();
        assert!(rendered.contains("cloud") && rendered.contains("device"));
        assert!(!histogram_table(&outcomes).render().is_empty());
    }
}

//! Closed-loop co-simulation experiment (`cosim-report`): the open-loop
//! replay and the closed-loop co-simulation of the same two-round
//! training run, plus the sim-driven serving scheduler, all on one
//! virtual clock.
//!
//! Four contracts are asserted on every run, not just in tests:
//!
//! * **Agreement** — on a configuration with zero timeouts, the open and
//!   closed loops produce bit-identical event traces: with nothing to
//!   feed back, co-simulation *is* replay.
//! * **Divergence** — on a configuration that injects download timeouts,
//!   the loops diverge, and exactly as the closed loop says they should:
//!   the timed-out device's next round is absent from the closed-loop
//!   timeline while the open-loop replay still prices it.
//! * **Width invariance** — the closed-loop trace fingerprint is
//!   identical whether the underlying rounds were trained by a 1-, 2- or
//!   8-worker pool.
//! * **Scheduler fidelity** — the sim-driven batch scheduler reproduces
//!   the legacy offline `coalesce` compositions exactly when there is no
//!   network, and produces *different* compositions once uplink jitter
//!   shifts ingress times.

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican::PersonalizationConfig;
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, SequenceModel, TrainConfig};
use pelican_serve::{
    batch_compositions, simulate_serving, BatchScheduler, CloudNetwork, RegistryConfig, Request,
    SchedulerConfig, ShardedRegistry, SimServeConfig, SimServeOutcome, TrafficConfig,
    TrafficGenerator,
};
use pelican_sim::{LinkMix, LinkProfile, RetryPolicy, StragglerConfig, TransferPolicy};
use pelican_train::{
    cohort_jobs, cosimulate_fleet, AuditConfig, CosimReport, FleetTrainer, LoopMode, NetworkConfig,
    PipelineConfig, TrainJob, TrainReport, UplinkMode,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;
use crate::RunConfig;

/// Everything `cosim-report` produces.
#[derive(Debug, Clone)]
pub struct CosimRun {
    /// General-envelope download size (bytes).
    pub general_bytes: u64,
    /// Open-loop replay on the clean (no-timeout) network.
    pub clean_open: CosimReport,
    /// Closed-loop co-simulation on the clean network (bit-identical to
    /// the open loop, asserted).
    pub clean_closed: CosimReport,
    /// Open-loop replay on the failure-injecting network.
    pub failed_open: CosimReport,
    /// Closed-loop co-simulation on the failure-injecting network
    /// (diverges from the open loop, asserted).
    pub failed_closed: CosimReport,
    /// `(workers, closed-loop fingerprint)` per trainer-pool width — all
    /// fingerprints equal, asserted.
    pub width_fingerprints: Vec<(usize, u64)>,
    /// Sim-driven scheduler without a network (matches legacy, asserted).
    pub serve_quiet: SimServeOutcome,
    /// Sim-driven scheduler under uplink jitter (compositions differ
    /// from quiet, asserted).
    pub serve_jitter: SimServeOutcome,
}

/// Trains the two rounds (fresh, then warm-start from the published
/// envelopes) at the given pool width. Every deterministic field of both
/// reports is bit-identical across widths — the property the width
/// sweep leans on.
fn rounds_at(
    scenario: &Scenario,
    jobs: &[TrainJob],
    config: &RunConfig,
    workers: usize,
) -> (TrainReport, TrainReport) {
    let sizing = ScenarioSizing::for_scale(config.scale);
    let pipeline = PipelineConfig {
        workers,
        base_seed: config.seed,
        personalization: PersonalizationConfig {
            train: TrainConfig {
                epochs: sizing.personal_epochs,
                batch_size: 16,
                ..TrainConfig::default()
            },
            hidden_dim: sizing.hidden_dim,
            ..PersonalizationConfig::default()
        },
        audit: AuditConfig {
            max_instances: config.instances_per_user,
            seed: config.seed ^ 0xA0D1,
            ..AuditConfig::default()
        },
        ..PipelineConfig::default()
    };
    let registry = ShardedRegistry::new(scenario.general.clone(), RegistryConfig::default());
    let trainer = FleetTrainer::new(pipeline);
    let fresh = trainer.run(&scenario.general, &scenario.dataset.space, jobs, &registry);
    let warm_jobs: Vec<TrainJob> = jobs
        .iter()
        .map(|j| {
            let model = registry.get(j.user_id).expect("published envelopes decode").0;
            j.clone().into_warm(ModelEnvelope::encode(&model))
        })
        .collect();
    let warm = trainer.run(&scenario.general, &scenario.dataset.space, &warm_jobs, &registry);
    (fresh, warm)
}

/// The failure-injecting network: half the fleet straggles at 50x, and
/// the download timeout sits at twice the healthy wifi transfer time —
/// guaranteed fatal for a straggler (its propagation latency alone
/// exceeds it), guaranteed harmless for everyone else. The fleet seed is
/// scanned (deterministically) until the dealt fleet contains both kinds.
fn failing_network(config: &RunConfig, jobs: &[TrainJob], general_bytes: u64) -> NetworkConfig {
    let mix =
        LinkMix::all_wifi().with_stragglers(StragglerConfig { fraction: 0.5, slowdown: 50.0 });
    let seed = (0u64..)
        .map(|k| config.seed ^ 0xFA11 ^ (k << 8))
        .find(|&s| {
            let dealt: Vec<bool> =
                jobs.iter().map(|j| mix.assign(s, j.user_id as u64).straggler).collect();
            dealt.iter().any(|&x| x) && dealt.iter().any(|&x| !x)
        })
        .expect("some seed deals a mixed fleet");
    NetworkConfig {
        mix,
        uplink: UplinkMode::PerDevice,
        download: TransferPolicy {
            timeout_us: Some(LinkProfile::wifi().transfer_us(general_bytes) * 2),
            retry: RetryPolicy::none(),
        },
        seed,
        ..NetworkConfig::default()
    }
}

/// Scheduler-fidelity leg: a synthetic registry under seeded traffic,
/// scheduled offline, sim-driven without a network, and sim-driven under
/// heavy uplink jitter.
fn serve_side(config: &RunConfig) -> (SimServeOutcome, SimServeOutcome) {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5E12);
    let general = SequenceModel::single_lstm(6, 8, 4, 0.0, &mut rng);
    let registry = ShardedRegistry::new(general, RegistryConfig { shards: 4, hot_capacity: 8 });
    for uid in 0..12 {
        let personalized = SequenceModel::single_lstm(6, 8, 4, 0.0, &mut rng);
        registry.enroll(uid, &personalized);
    }
    let requests: usize = match config.scale {
        Scale::Tiny => 400,
        Scale::Small => 2_000,
        Scale::Paper => 10_000,
    };
    let traffic =
        TrafficConfig { requests, users: 12, seed: config.seed, ..TrafficConfig::default() };
    let requests: Vec<Request> = TrafficGenerator::new(traffic)
        .enumerate()
        .map(|(id, arrival)| Request {
            id,
            user_id: arrival.user_index,
            arrival_us: arrival.at_us,
            xs: vec![vec![0.1; 6]; 3],
        })
        .collect();
    let scheduler = SchedulerConfig { max_batch: 8, max_delay_us: 1_733 };
    let sim_config = |network| SimServeConfig {
        scheduler,
        tier: pelican::platform::ComputeTier::Cloud,
        network,
    };
    let quiet = simulate_serving(&registry, &requests, &sim_config(None))
        .expect("registry envelopes decode");
    let legacy = BatchScheduler::new(scheduler, registry.shard_count()).coalesce(requests.clone());
    assert_eq!(
        quiet.compositions(),
        batch_compositions(&legacy),
        "jitter-free sim-driven batching must match the legacy coalesce output"
    );
    let jitter = CloudNetwork {
        mix: LinkMix::cellular_heavy()
            .with_stragglers(StragglerConfig { fraction: 0.3, slowdown: 6.0 }),
        seed: config.seed ^ 0x1177,
        ..CloudNetwork::default()
    };
    let shaken = simulate_serving(&registry, &requests, &sim_config(Some(jitter)))
        .expect("registry envelopes decode");
    assert_ne!(
        quiet.compositions(),
        shaken.compositions(),
        "uplink jitter must change the batch compositions"
    );
    (quiet, shaken)
}

/// Runs the experiment: trains a two-round cohort at three pool widths,
/// co-simulates open vs. closed on clean and failure-injecting networks,
/// and drives the sim-driven scheduler with and without jitter.
///
/// # Panics
///
/// Panics if any of the four contracts in the module docs fails.
pub fn run(config: &RunConfig) -> CosimRun {
    let scenario: Scenario = Scenario::builder(config.scale, SpatialLevel::Building)
        .seed(config.seed)
        .personal_users(0)
        .build();
    let cohort_start = scenario.first_personal_user;
    let cohort_end = (cohort_start + config.personal_users()).min(scenario.dataset.users.len());
    let jobs = cohort_jobs(&scenario.dataset, cohort_start..cohort_end, 0.8);
    let general_bytes = ModelEnvelope::encode(&scenario.general).len() as u64;

    let (fresh, warm) = rounds_at(&scenario, &jobs, config, 1);
    let rounds = [&fresh, &warm];

    // Contract 1: no failures ⇒ the loops are bit-identical.
    let clean = NetworkConfig { seed: config.seed ^ 0xC051, ..NetworkConfig::default() };
    let clean_open = cosimulate_fleet(&rounds, general_bytes, &clean, LoopMode::Open);
    let clean_closed = cosimulate_fleet(&rounds, general_bytes, &clean, LoopMode::Closed);
    assert_eq!(clean_open.timed_out(), 0, "the clean network must not time anything out");
    assert_eq!(
        clean_open.sim.trace, clean_closed.sim.trace,
        "zero timeouts ⇒ open and closed loops must be bit-identical"
    );
    assert_eq!(clean_open.fingerprint(), clean_closed.fingerprint());

    // Contract 2: injected timeouts ⇒ divergence, and the timed-out
    // device's warm round is absent from the closed loop only.
    let failing = failing_network(config, &jobs, general_bytes);
    let failed_open = cosimulate_fleet(&rounds, general_bytes, &failing, LoopMode::Open);
    let failed_closed = cosimulate_fleet(&rounds, general_bytes, &failing, LoopMode::Closed);
    assert!(failed_closed.timed_out() > 0, "the failing network must time out a straggler");
    assert_ne!(
        failed_open.fingerprint(),
        failed_closed.fingerprint(),
        "timeouts must diverge the closed loop from the open replay"
    );
    assert_eq!(failed_open.skipped(), 0, "the open loop prices every round regardless");
    assert!(failed_closed.skipped() > 0, "the closed loop must drop the failed device's round");
    for record in failed_closed.records.iter().filter(|r| !r.completed) {
        let user = record.user_id;
        assert!(
            !failed_closed.records.iter().any(|r| r.user_id == user && r.round > record.round),
            "closed loop: user {user} must have no rounds after its failure"
        );
        assert!(
            failed_open.records.iter().any(|r| r.user_id == user && r.round == record.round + 1),
            "open loop: user {user}'s next round must still be priced"
        );
    }

    // Contract 3: the closed-loop fingerprint ignores trainer-pool width.
    let width_fingerprints: Vec<(usize, u64)> = [1usize, 2, 8]
        .into_iter()
        .map(|workers| {
            let (f, w) = if workers == 1 {
                (fresh.clone(), warm.clone())
            } else {
                rounds_at(&scenario, &jobs, config, workers)
            };
            (
                workers,
                cosimulate_fleet(&[&f, &w], general_bytes, &failing, LoopMode::Closed)
                    .fingerprint(),
            )
        })
        .collect();
    for &(workers, fingerprint) in &width_fingerprints {
        assert_eq!(
            fingerprint,
            failed_closed.fingerprint(),
            "closed-loop fingerprint must be identical at {workers} workers"
        );
    }

    // Contract 4: scheduler fidelity (asserts inside).
    let (serve_quiet, serve_jitter) = serve_side(config);

    CosimRun {
        general_bytes,
        clean_open,
        clean_closed,
        failed_open,
        failed_closed,
        width_fingerprints,
        serve_quiet,
        serve_jitter,
    }
}

/// Open vs. closed table over both network conditions.
pub fn table(run: &CosimRun) -> Table {
    let mut t = Table::new(&[
        "network",
        "loop",
        "scheduled",
        "skipped",
        "timed-out",
        "r0-published",
        "r1-published",
        "r1-p95(ms)",
        "trace",
    ]);
    let rows: [(&str, &str, &CosimReport); 4] = [
        ("clean", "open", &run.clean_open),
        ("clean", "closed", &run.clean_closed),
        ("failing", "open", &run.failed_open),
        ("failing", "closed", &run.failed_closed),
    ];
    for (network, mode, report) in rows {
        t.row(&[
            network.to_string(),
            mode.to_string(),
            report.scheduled().to_string(),
            report.skipped().to_string(),
            report.timed_out().to_string(),
            report.completed_in_round(0).to_string(),
            report.completed_in_round(1).to_string(),
            format!("{:.1}", report.round_percentile_us(1, 0.95) as f64 / 1e3),
            format!("{:016x}", report.fingerprint()),
        ]);
    }
    t
}

/// Width-invariance table: one row per trainer-pool width.
pub fn width_table(run: &CosimRun) -> Table {
    let mut t = Table::new(&["workers", "closed-loop trace"]);
    for &(workers, fingerprint) in &run.width_fingerprints {
        t.row(&[workers.to_string(), format!("{fingerprint:016x}")]);
    }
    t
}

/// Scheduler-fidelity table: the sim-driven scheduler with and without
/// uplink jitter.
pub fn serve_table(run: &CosimRun) -> Table {
    let mut t = Table::new(&[
        "network",
        "batches",
        "mean-batch",
        "queue-p95(us)",
        "dropped",
        "matches-legacy",
    ]);
    for (name, outcome, matches) in
        [("none", &run.serve_quiet, "yes"), ("jittery", &run.serve_jitter, "no (reacts)")]
    {
        let served: usize = outcome.batches.iter().map(|b| b.requests.len()).sum();
        let mean = if outcome.batches.is_empty() {
            0.0
        } else {
            served as f64 / outcome.batches.len() as f64
        };
        let mut queues: Vec<u64> =
            outcome.completions.iter().flat_map(|cs| cs.iter().map(|c| c.queue_us)).collect();
        queues.sort_unstable();
        t.row(&[
            name.to_string(),
            outcome.batches.len().to_string(),
            format!("{mean:.2}"),
            pelican_tensor::nearest_rank(&queues, 0.95).unwrap_or(0).to_string(),
            outcome.dropped.to_string(),
            matches.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosim_report_runs_and_holds_its_contracts_at_tiny_scale() {
        // run() itself asserts agreement, divergence, width invariance
        // and scheduler fidelity — reaching the tables is the test.
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(4),
            instances_per_user: 2,
            ..RunConfig::default()
        };
        let run = run(&config);
        assert!(run.general_bytes > 0);
        assert_eq!(run.width_fingerprints.len(), 3);
        let rendered = table(&run).render();
        assert!(rendered.contains("failing") && rendered.contains("closed"));
        assert!(width_table(&run).render().contains("8"));
        assert!(serve_table(&run).render().contains("jittery"));
    }
}

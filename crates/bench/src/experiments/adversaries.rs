//! Fig. 2b (adversarial knowledge) and Fig. 2c (nature of the prior).

use pelican_attacks::{Adversary, AttackMethod, PriorKind, TimeBased};
use pelican_mobility::SpatialLevel;

use crate::report::{pct, Table};
use crate::RunConfig;

/// Top-k grid for Fig. 2b.
pub const KS_2B: [usize; 4] = [1, 3, 5, 7];

/// Top-k grid for Fig. 2c (the paper plots k = 1..10).
pub const KS_2C: [usize; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Fig. 2b: time-based attack accuracy for adversaries A1/A2/A3.
pub fn fig2b(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut t = Table::new(&["adversary", "top-1", "top-3", "top-5", "top-7"]);
    for adversary in [Adversary::A1, Adversary::A2, Adversary::A3] {
        let eval = scenario.attack_all(
            adversary,
            &method,
            PriorKind::True,
            &KS_2B,
            config.instances_per_user,
            None,
        );
        let mut cells = vec![adversary.to_string()];
        for &k in &KS_2B {
            cells.push(pct(eval.accuracy(k)));
        }
        t.row(&cells);
    }
    t
}

/// Fig. 2c: impact of how the adversary obtained its prior
/// (true / none / predict / estimate) under A1.
pub fn fig2c(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut header = vec!["prior".to_string()];
    header.extend(KS_2C.iter().map(|k| format!("top-{k}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for prior in [PriorKind::True, PriorKind::None, PriorKind::Predict, PriorKind::Estimate] {
        let eval = scenario.attack_all(
            Adversary::A1,
            &method,
            prior,
            &KS_2C,
            config.instances_per_user,
            None,
        );
        let mut cells = vec![prior.to_string()];
        for &k in &KS_2C {
            cells.push(pct(eval.accuracy(k)));
        }
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: Scale::Tiny,
            users: Some(1),
            instances_per_user: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn fig2b_covers_three_adversaries() {
        let rendered = fig2b(&tiny()).render();
        for a in ["A1", "A2", "A3"] {
            assert!(rendered.contains(a), "missing adversary {a}");
        }
    }

    #[test]
    fn fig2c_covers_four_priors() {
        let rendered = fig2c(&tiny()).render();
        for p in ["true", "none", "predict", "estimate"] {
            assert!(rendered.contains(p), "missing prior {p}");
        }
    }
}

//! Durable model-store report: log throughput, compression, compaction
//! reclaim, exhaustive crash-recovery probing, and the rollback-under-
//! traffic study on the simulation's virtual clock.
//!
//! Three sections:
//!
//! 1. **Log throughput** — envelope publications appended through the
//!    write-ahead commit path, with and without LZSS compression, plus
//!    what compaction reclaims once version history piles up.
//! 2. **Crash recovery** — a small log is torn at *every* byte offset;
//!    each truncation is reopened and checked against the
//!    committed-prefix contract (the same exhaustive loop as the
//!    `crash-recovery` test suite, summarized as a count).
//! 3. **Rollback under traffic** — [`pelican_train::rollback`]'s study:
//!    a regressed fleet publication is canary-detected and rolled back
//!    over a contended egress link while queries keep flowing; the
//!    staleness window is the headline number.

use std::sync::Arc;
use std::time::Instant;

use pelican_nn::ModelEnvelope;
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{run_rollback_study, RollbackConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::report::Table;
use crate::RunConfig;

/// One log-throughput measurement row.
#[derive(Debug, Clone)]
pub struct LogRun {
    /// Whether LZSS compression was on.
    pub compress: bool,
    /// Publications appended.
    pub appends: u64,
    /// Appends per wall-clock second.
    pub appends_per_sec: f64,
    /// stored/raw byte ratio across live payloads (1.0 = incompressible).
    pub compression_ratio: f64,
    /// Bytes reclaimed by compacting down to the retention policy.
    pub reclaimed_bytes: u64,
}

/// The whole experiment's results.
#[derive(Debug, Clone)]
pub struct StoreResult {
    /// Throughput rows (compression off, then on).
    pub log_runs: Vec<LogRun>,
    /// Crash-recovery probe: byte offsets torn (== log length + 1).
    pub crash_points: u64,
    /// Crash points where the reopened store served exactly the last
    /// committed version (must equal `crash_points`).
    pub crash_points_correct: u64,
    /// The rollback-under-traffic study report.
    pub rollback: pelican_train::RollbackReport,
}

/// Envelope payloads that look like model bytes: mostly structured
/// (quantized weights repeat) with a noisy tail, so compression has
/// something real to chew on.
fn payload(rng: &mut StdRng, bytes: usize) -> ModelEnvelope {
    let body: Vec<u8> = (0..bytes)
        .map(|i| if i % 32 == 0 { (rng.random::<u32>() & 0xFF) as u8 } else { (i % 251) as u8 })
        .collect();
    ModelEnvelope::from_bytes(body)
}

/// Runs all three sections at the config's scale.
pub fn run(config: &RunConfig) -> StoreResult {
    let users = config.personal_users().max(4) as u64;
    let versions_per_user = 6u64;
    let payload_bytes = 4 * 1024;

    // Section 1: append throughput, compression off and on.
    let log_runs = [false, true]
        .into_iter()
        .map(|compress| {
            let store = EnvelopeStore::open(
                Arc::new(MemBackend::new()),
                StoreConfig {
                    shards: 4,
                    compress,
                    compaction: pelican_store::CompactionPolicy { retain_versions: 2 },
                    ..StoreConfig::default()
                },
            )
            .expect("fresh backend opens");
            let mut rng = StdRng::seed_from_u64(config.seed ^ compress as u64);
            let started = Instant::now();
            let mut version = 0;
            for _ in 0..versions_per_user {
                for user in 0..users {
                    version += 1;
                    store
                        .append(user, version, &payload(&mut rng, payload_bytes))
                        .expect("append succeeds");
                }
            }
            let elapsed = started.elapsed().as_secs_f64();
            let stats = store.stats();
            let reclaimed = store.compact().expect("compaction succeeds");
            LogRun {
                compress,
                appends: stats.appended_records,
                appends_per_sec: stats.appended_records as f64 / elapsed.max(1e-9),
                compression_ratio: stats.compression_ratio(),
                reclaimed_bytes: reclaimed,
            }
        })
        .collect();

    // Section 2: exhaustive crash probe over a 3-version log.
    let (crash_points, crash_points_correct) = crash_probe(config.seed);

    // Section 3: the rollback study, fleet size tied to the scale.
    let rollback = run_rollback_study(&RollbackConfig {
        users: (users as usize).clamp(4, 24),
        seed: config.seed,
        ..RollbackConfig::default()
    })
    .report;

    StoreResult { log_runs, crash_points, crash_points_correct, rollback }
}

/// Tears a 3-version single-shard log at every byte offset and counts
/// the truncations whose reopened store served exactly the newest
/// version committed inside the cut.
fn crash_probe(seed: u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let disk = MemBackend::new();
    let config = StoreConfig { shards: 1, ..StoreConfig::default() };
    let store = EnvelopeStore::open(Arc::new(disk.clone()), config).expect("open");
    let mut ends = Vec::new();
    let mut payloads = Vec::new();
    for v in 1..=3u64 {
        let envelope = payload(&mut rng, 512);
        let entry = store.append(7, v, &envelope).expect("append");
        ends.push(entry.offset + entry.stored_len as u64);
        payloads.push(envelope);
    }
    drop(store);

    use pelican_store::StorageBackend;
    let segment = "shard0000-seg00000000.plog";
    let full = disk.size(segment).expect("segment exists");
    let mut correct = 0u64;
    for cut in 0..=full {
        let crash = disk.snapshot();
        crash.truncate(segment, cut).expect("truncate");
        let Ok(recovered) = EnvelopeStore::open(Arc::new(crash), config) else { continue };
        let committed = ends.iter().filter(|&&end| end <= cut).count() as u64;
        let ok = match committed {
            0 => recovered.latest_version(7).is_none(),
            v => {
                recovered.latest_version(7) == Some(v)
                    && recovered
                        .fetch(7, v)
                        .map(|e| e.as_bytes() == payloads[v as usize - 1].as_bytes())
                        .unwrap_or(false)
            }
        };
        correct += ok as u64;
    }
    (full + 1, correct)
}

/// The log-throughput and crash-probe table.
pub fn table(result: &StoreResult) -> Table {
    let mut table =
        Table::new(&["compress", "appends", "appends/s", "stored/raw", "compaction reclaimed"]);
    for run in &result.log_runs {
        table.row(&[
            if run.compress { "lzss" } else { "off" }.to_string(),
            run.appends.to_string(),
            format!("{:.0}", run.appends_per_sec),
            format!("{:.3}", run.compression_ratio),
            format!("{} B", run.reclaimed_bytes),
        ]);
    }
    table
}

//! Fig. 2a (attack accuracy per method) and Table II (attack runtimes).

use pelican_attacks::{Adversary, AttackMethod, BruteForce, GradientDescent, PriorKind, TimeBased};
use pelican_mobility::SpatialLevel;

use crate::report::{pct, Table};
use crate::RunConfig;

/// Result of the attack-method comparison.
#[derive(Debug)]
pub struct MethodComparison {
    /// `(method name, k, accuracy)` series — Fig. 2a.
    pub accuracy: Vec<(String, usize, f64)>,
    /// `(method name, mean queries/instance, mean host ms/instance)` —
    /// Table II's cost axis.
    pub cost: Vec<(String, f64, f64)>,
}

/// The paper's top-k grid for Fig. 2a.
pub const KS: [usize; 4] = [1, 3, 5, 7];

/// Runs brute-force, gradient-descent and time-based attacks under
/// adversary A1 with the true prior (the paper's defaults) and reports
/// accuracy by top-k plus per-instance cost.
pub fn run(config: &RunConfig) -> MethodComparison {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let methods: Vec<(AttackMethod, usize)> = vec![
        (AttackMethod::BruteForce(BruteForce::default()), config.brute_instances()),
        (AttackMethod::GradientDescent(GradientDescent::default()), config.instances_per_user),
        (AttackMethod::TimeBased(TimeBased::default()), config.instances_per_user),
    ];
    let mut accuracy = Vec::new();
    let mut cost = Vec::new();
    for (method, instances) in &methods {
        let eval =
            scenario.attack_all(Adversary::A1, method, PriorKind::True, &KS, *instances, None);
        for &k in &KS {
            accuracy.push((method.name().to_string(), k, eval.accuracy(k)));
        }
        let ms = eval.elapsed.as_secs_f64() * 1e3 / eval.total.max(1) as f64;
        cost.push((method.name().to_string(), eval.queries_per_instance(), ms));
    }
    MethodComparison { accuracy, cost }
}

/// Formats Fig. 2a as a table (methods × top-k accuracy, %).
pub fn fig2a_table(result: &MethodComparison) -> Table {
    let mut t = Table::new(&["attack method", "top-1", "top-3", "top-5", "top-7"]);
    for name in ["brute force", "gradient descent", "time-based"] {
        let mut cells = vec![name.to_string()];
        for &k in &KS {
            let acc = result
                .accuracy
                .iter()
                .find(|(n, kk, _)| n == name && *kk == k)
                .map(|(_, _, a)| *a)
                .unwrap_or(0.0);
            cells.push(pct(acc));
        }
        t.row(&cells);
    }
    t
}

/// Formats Table II: per-instance cost and the relative runtime factor
/// against the time-based method (the paper reports 82.18 h / 6.27 h /
/// 0.68 h for 100 users; we report the machine-independent query counts and
/// the measured factor).
pub fn table2(result: &MethodComparison) -> Table {
    let time_based_ms = result
        .cost
        .iter()
        .find(|(n, _, _)| n == "time-based")
        .map(|(_, _, ms)| *ms)
        .unwrap_or(1.0)
        .max(1e-9);
    let mut t = Table::new(&["method", "queries/instance", "ms/instance", "x time-based"]);
    for (name, q, ms) in &result.cost {
        t.row(&[
            name.clone(),
            format!("{q:.0}"),
            format!("{ms:.1}"),
            format!("{:.1}", ms / time_based_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    #[test]
    fn tiny_run_produces_all_series() {
        let config = RunConfig {
            scale: Scale::Tiny,
            users: Some(1),
            instances_per_user: 2,
            ..RunConfig::default()
        };
        let r = run(&config);
        assert_eq!(r.accuracy.len(), 3 * KS.len());
        assert_eq!(r.cost.len(), 3);
        let rendered = fig2a_table(&r).render();
        assert!(rendered.contains("time-based"));
        let t2 = table2(&r).render();
        assert!(t2.contains("queries/instance"));
    }
}

//! Streaming personalization loop: retrain latency and staleness on the
//! virtual clock, width invariance at 1/2/8 pool workers, zero-cost
//! re-audit sweeps, and the quiescent-case equivalence gate.
//!
//! Three contracts are **asserted** before any number is reported:
//!
//! * the loop's fingerprint is bit-identical for every pool width in
//!   [`WIDTHS`] — host scheduling must never leak into the virtual
//!   timeline;
//! * re-audit sweeps of unchanged candidates pay **zero** forward passes
//!   (every oracle query answers from a warm logit cache);
//! * with a drift trigger that can never fire, the loop reduces exactly
//!   to the one-shot pipeline plus serving pass: same durable envelope
//!   bytes per user, same serving-trace fingerprint.
//!
//! Results go to stdout and to `BENCH_live_loop.json`; the CI
//! `live-report` step parses the JSON and fails on any contract flag.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use pelican::platform::ComputeTier;
use pelican::PersonalizationConfig;
use pelican_live::{
    bootstrap_jobs, live_stream, run_live, DriftConfig, DriftMetric, LiveConfig, LiveOutcome,
};
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, SpatialLevel};
use pelican_nn::{SequenceModel, TrainConfig};
use pelican_serve::{
    simulate_serving, RegistryConfig, SchedulerConfig, ShardedRegistry, SimServeConfig,
};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{run_pipeline, AuditConfig, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;
use crate::RunConfig;

/// Trainer-pool widths every run is checked across.
pub const WIDTHS: [usize; 3] = [1, 2, 8];
/// Registry/store shards (fixed; shard invariance is sim-scale's job).
const SHARDS: usize = 4;

/// One `(pool width)` timed run of the drifting loop.
#[derive(Debug, Clone, Copy)]
pub struct WidthRun {
    /// Trainer-pool workers.
    pub workers: usize,
    /// Host wall-clock of the whole `run_live` call, in milliseconds.
    pub wall_ms: f64,
    /// Loop fingerprint (must match the other widths).
    pub fingerprint: u64,
    /// Publications this run produced (must match the other widths).
    pub retrains: usize,
}

/// A finished live-report sweep.
#[derive(Debug)]
pub struct LiveReportRun {
    /// Master seed.
    pub seed: u64,
    /// Cohort size.
    pub users: usize,
    /// The width-1 outcome all other widths were checked against.
    pub outcome: LiveOutcome,
    /// Per-width timings.
    pub runs: Vec<WidthRun>,
    /// Whether the quiescent loop matched the one-shot pipeline
    /// byte-for-byte (asserted, so always true in a returned value).
    pub quiescent_equivalent: bool,
    /// Queries the quiescent loop served while staying quiescent.
    pub quiescent_served: usize,
}

/// The benchmark setting: a seeded campus, a general model, and the
/// cohort of personalized users (the tail of the population).
fn setting(config: &RunConfig) -> (MobilityDataset, SequenceModel, Range<usize>) {
    let dataset = DatasetBuilder::new(CampusConfig::for_scale(config.scale), config.seed)
        .build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 12, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    let cohort = config.personal_users().min(n);
    (dataset, general, (n - cohort)..n)
}

fn store_backed_registry(general: &SequenceModel) -> ShardedRegistry {
    let store = EnvelopeStore::open(
        Arc::new(MemBackend::new()),
        StoreConfig { shards: SHARDS, ..StoreConfig::default() },
    )
    .expect("open empty store");
    ShardedRegistry::with_store(
        general.clone(),
        RegistryConfig { shards: SHARDS, hot_capacity: 16 },
        Arc::new(store),
    )
}

/// The loop configuration: a compact virtual timeline (1 ms per
/// mobility minute), one bootstrap week, one live week, and a small
/// warm-start training budget — the experiment measures loop mechanics,
/// not model quality.
fn live_config(workers: usize, metric: DriftMetric) -> LiveConfig {
    LiveConfig {
        pipeline: PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
            ..PipelineConfig::default()
        },
        serve: SimServeConfig {
            scheduler: SchedulerConfig { max_batch: 4, max_delay_us: 900 },
            tier: ComputeTier::Cloud,
            network: None,
        },
        drift: DriftConfig { metric, min_new_samples: 4, window: 6 },
        us_per_minute: 1_000,
        bootstrap_minutes: 7 * 24 * 60,
        horizon_minutes: 14 * 24 * 60,
        train_fraction: 0.8,
        round_interval_us: 200_000,
        rollback_tolerance: 0.5,
    }
}

/// An always-stale trigger: agreement never reaches 1.01, so every user
/// re-trains each time `min_new_samples` fresh sessions accumulate —
/// the worst-case retrain load for the latency/staleness columns.
fn eager() -> DriftMetric {
    DriftMetric::TopKAgreement { k: 1, min_agreement: 1.01 }
}

/// A trigger that can never fire: finite loss never exceeds +inf.
fn quiescent() -> DriftMetric {
    DriftMetric::Loss { max_loss: f64::INFINITY }
}

/// Runs the sweep: the drifting loop at every width in [`WIDTHS`], then
/// the quiescent loop against the one-shot reference.
///
/// # Panics
///
/// Panics if any width's fingerprint diverges, if a re-audit sweep ran
/// a forward pass, or if the quiescent loop differs from the one-shot
/// pipeline — the loop's contracts are preconditions of the perf
/// numbers, not soft metrics.
pub fn run(config: &RunConfig) -> LiveReportRun {
    let (dataset, general, cohort) = setting(config);

    let mut runs: Vec<WidthRun> = Vec::new();
    let mut outcome: Option<LiveOutcome> = None;
    for workers in WIDTHS {
        let registry = store_backed_registry(&general);
        let started = Instant::now();
        let live =
            run_live(&dataset, cohort.clone(), &registry, &general, &live_config(workers, eager()))
                .expect("live run");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        runs.push(WidthRun {
            workers,
            wall_ms,
            fingerprint: live.fingerprint(),
            retrains: live.retrains.len(),
        });
        if let Some(reference) = &outcome {
            assert_eq!(
                live.fingerprint(),
                reference.fingerprint(),
                "{workers}-worker loop fingerprint diverged from 1-worker"
            );
            assert_eq!(live.retrains.len(), reference.retrains.len());
        } else {
            assert!(!live.retrains.is_empty(), "the eager trigger must re-train");
            assert_eq!(live.reaudit.misses, 0, "a re-audit sweep ran a forward pass");
            assert!(live.reaudit.hits > 0, "re-audit sweeps must replay warm caches");
            outcome = Some(live);
        }
    }
    let outcome = outcome.expect("at least one width ran");

    // Quiescent gate: an impossible trigger must reduce the loop to the
    // unmodified one-shot pipeline plus serving pass.
    let loop_registry = store_backed_registry(&general);
    let quiet_config = live_config(WIDTHS[0], quiescent());
    let quiet = run_live(&dataset, cohort.clone(), &loop_registry, &general, &quiet_config)
        .expect("quiescent run");
    assert!(quiet.retrains.is_empty(), "an impossible trigger scheduled a re-train");
    let reference_registry = store_backed_registry(&general);
    let jobs = bootstrap_jobs(&dataset, cohort.clone(), &quiet_config);
    run_pipeline(
        quiet_config.pipeline.clone(),
        &general,
        &dataset.space,
        &jobs,
        &reference_registry,
    );
    let stream = live_stream(&dataset, cohort.clone(), &quiet_config);
    let serve = simulate_serving(&reference_registry, &stream.requests, &quiet_config.serve)
        .expect("envelopes decode");
    assert_eq!(
        quiet.serve.fingerprint(),
        serve.fingerprint(),
        "quiescent serving trace diverged from the one-shot pipeline"
    );
    let loop_store = loop_registry.store().expect("store-backed");
    let reference_store = reference_registry.store().expect("store-backed");
    assert_eq!(loop_store.max_version(), reference_store.max_version());
    for job in &jobs {
        let a = loop_store.fetch_latest(job.user_id as u64).unwrap().expect("published");
        let b = reference_store.fetch_latest(job.user_id as u64).unwrap().expect("published");
        assert_eq!(a.as_bytes(), b.as_bytes(), "user {} envelope differs", job.user_id);
    }

    LiveReportRun {
        seed: config.seed,
        users: cohort.len(),
        outcome,
        runs,
        quiescent_equivalent: true,
        quiescent_served: quiet.serve.served.len(),
    }
}

/// The stdout table: one row per pool width.
pub fn table(run: &LiveReportRun) -> Table {
    let mut t = Table::new(&["workers", "wall ms", "retrains", "rollbacks", "fingerprint"]);
    for r in &run.runs {
        t.row(&[
            r.workers.to_string(),
            format!("{:.1}", r.wall_ms),
            r.retrains.to_string(),
            run.outcome.rollbacks().to_string(),
            format!("{:#018x}", r.fingerprint),
        ]);
    }
    t
}

/// Serializes the sweep to the documented `BENCH_live_loop.json` schema.
/// Fingerprints are hex strings (u64 does not survive JSON doubles).
pub fn to_json(run: &LiveReportRun) -> String {
    let o = &run.outcome;
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"live-report\",\n");
    out.push_str(&format!("  \"seed\": {},\n", run.seed));
    out.push_str(&format!("  \"users\": {},\n", run.users));
    out.push_str(&format!("  \"widths\": [{}],\n", WIDTHS.map(|w| w.to_string()).join(", ")));
    out.push_str(&format!("  \"fingerprint\": \"{:#018x}\",\n", o.fingerprint()));
    out.push_str("  \"fingerprints_match\": true,\n");
    out.push_str(&format!("  \"served\": {},\n", o.serve.served.len()));
    out.push_str(&format!("  \"retrains\": {},\n", o.retrains.len()));
    out.push_str(&format!("  \"rollbacks\": {},\n", o.rollbacks()));
    out.push_str(&format!("  \"drift_marks\": {},\n", o.drift_marks));
    out.push_str(&format!("  \"pending_at_end\": {},\n", o.pending_at_end));
    out.push_str(&format!(
        "  \"retrain_latency_us\": {{\"p50\": {}, \"p95\": {}}},\n",
        o.retrain_latency_p50_us(),
        o.retrain_latency_p95_us(),
    ));
    out.push_str(&format!(
        "  \"staleness_us\": {{\"p50\": {}, \"p95\": {}}},\n",
        o.staleness_p50_us(),
        o.staleness_p95_us(),
    ));
    out.push_str(&format!(
        "  \"reaudit\": {{\"audits\": {}, \"queries\": {}, \"hits\": {}, \"misses\": {}}},\n",
        o.reaudit.audits, o.reaudit.queries, o.reaudit.hits, o.reaudit.misses,
    ));
    out.push_str(&format!("  \"retrain_forward_passes\": {},\n", o.retrain_forward_passes()));
    out.push_str(&format!("  \"forward_passes_saved\": {},\n", o.forward_passes_saved()));
    out.push_str(&format!("  \"quiescent_equivalent\": {},\n", run.quiescent_equivalent));
    out.push_str(&format!("  \"quiescent_served\": {},\n", run.quiescent_served));
    out.push_str("  \"runs\": [\n");
    for (i, r) in run.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"retrains\": {}, \
             \"fingerprint\": \"{:#018x}\"}}{}\n",
            r.workers,
            r.wall_ms,
            r.retrains,
            r.fingerprint,
            if i + 1 < run.runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    #[test]
    fn tiny_sweep_holds_every_contract_and_serializes() {
        let config = RunConfig { scale: Scale::Tiny, users: Some(3), ..RunConfig::default() };
        let run = run(&config);
        assert_eq!(run.users, 3);
        assert_eq!(run.runs.len(), WIDTHS.len());
        let fp = run.outcome.fingerprint();
        assert!(run.runs.iter().all(|r| r.fingerprint == fp));
        assert!(run.quiescent_equivalent);
        assert!(run.quiescent_served > 0);
        let json = to_json(&run);
        assert!(json.contains("\"experiment\": \"live-report\""));
        assert!(json.contains("\"fingerprints_match\": true"));
        assert!(json.contains("\"misses\": 0"));
        assert!(json.contains("\"quiescent_equivalent\": true"));
        assert!(json.contains(&format!("{fp:#018x}")));
        // Balanced braces/brackets — a cheap well-formedness check; CI
        // parses the file for real.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(table(&run).render().contains("workers"));
    }
}

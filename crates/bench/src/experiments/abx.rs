//! Closed-loop A/B experimentation of defense rungs under live traffic:
//! the `ab-report` experiment drives [`run_abx`] end-to-end and asserts
//! its contracts before reporting a single number.
//!
//! Four contracts are **asserted** on every run:
//!
//! * the cohort split is a disjoint, exhaustive partition of the
//!   enrolled users, and it is seed-stable — every width, the A/A
//!   control, and a fresh [`CohortSplitter`] all reproduce the exact
//!   same cohorts;
//! * an A/A control (both arms serving the *same* rung) decides
//!   [`Verdict::Null`] and moves nobody — the verdict engine cannot
//!   manufacture a winner out of cohort-composition noise;
//! * the experiment fingerprint is bit-identical across 1/2/8
//!   trainer-pool workers — host scheduling never leaks into the
//!   virtual timeline;
//! * zero losing-rung responses after a flip lands
//!   (`degraded_after_swap == 0`) — the durable hot-swap contract holds
//!   while the verdict rolls out under live queries.
//!
//! The treatment comparison is the ladder's extremes — an undefended
//! arm A against a hard-temperature arm B — attacked strictly through
//! the serving interface (top-k truncated answers over a shared WAN
//! uplink). Results go to stdout and `BENCH_ab_leakage.json`; the CI
//! `ab-report` step parses the JSON and fails on any contract flag.

use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use pelican::platform::ComputeTier;
use pelican::{DefenseKind, PersonalizationConfig};
use pelican_abx::{run_abx, AbxConfig, AbxOutcome, CohortSplitter};
use pelican_mobility::{CampusConfig, DatasetBuilder, MobilityDataset, Scale, SpatialLevel};
use pelican_nn::{SequenceModel, TrainConfig};
use pelican_serve::{RegistryConfig, SchedulerConfig, ShardedRegistry, SimServeConfig};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use pelican_train::{AuditConfig, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::Table;
use crate::RunConfig;

/// Trainer-pool widths every experiment is checked across.
pub const WIDTHS: [usize; 3] = [1, 2, 8];
/// Registry/store shards (must agree; shard invariance is sim-scale's job).
const SHARDS: usize = 2;
/// The treatment comparison: undefended vs. the ladder's hard rung.
const TREATMENT: [DefenseKind; 2] =
    [DefenseKind::None, DefenseKind::Temperature { temperature: 1e-5 }];
/// The A/A control rung, served by both arms.
const CONTROL: DefenseKind = DefenseKind::Temperature { temperature: 1e-3 };

/// One `(pool width)` timed A/B run.
#[derive(Debug, Clone, Copy)]
pub struct WidthRun {
    /// Trainer-pool workers.
    pub workers: usize,
    /// Host wall-clock of the whole `run_abx` call, in milliseconds.
    pub wall_ms: f64,
    /// Experiment fingerprint (must match the other widths).
    pub fingerprint: u64,
}

/// A finished ab-report sweep.
#[derive(Debug)]
pub struct AbReportRun {
    /// Master seed.
    pub seed: u64,
    /// Enrolled users (the union of all three cohorts).
    pub enrolled: usize,
    /// The width-1 A/B outcome all other widths were checked against.
    pub outcome: AbxOutcome,
    /// Per-width timings.
    pub runs: Vec<WidthRun>,
    /// The A/A control's advantage gap (inside the null margin).
    pub aa_delta: f64,
    /// Whether the A/A control decided null (asserted, so always true
    /// in a returned value).
    pub aa_null: bool,
}

/// The benchmark setting: a seeded campus, a general model, and the
/// enrolled cohort — the whole campus population by default (an A/B
/// verdict wants cohorts, not a handful of users); `--users` caps it.
fn setting(config: &RunConfig) -> (MobilityDataset, SequenceModel, Range<usize>) {
    let dataset = DatasetBuilder::new(CampusConfig::for_scale(config.scale), config.seed)
        .build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 12, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    let cohort = config.users.map_or(n, |u| u.min(n));
    (dataset, general, (n - cohort)..n)
}

fn store_backed_registry(general: &SequenceModel) -> ShardedRegistry {
    let store = EnvelopeStore::open(
        Arc::new(MemBackend::new()),
        StoreConfig { shards: SHARDS, ..StoreConfig::default() },
    )
    .expect("open empty store");
    ShardedRegistry::with_store(
        general.clone(),
        RegistryConfig { shards: SHARDS, ..RegistryConfig::default() },
        Arc::new(store),
    )
}

/// The experiment configuration: a compact virtual timeline (1 ms per
/// mobility minute), a warm-start training budget, and the audit gate's
/// red-team knobs pinned — the experiment measures the decision loop,
/// not model quality. The null margin is calibrated against the A/A
/// control: composition noise at these cohort sizes stays under it
/// while the undefended-vs-hard-rung effect clears it.
fn abx_config(workers: usize, arms: [DefenseKind; 2], scale: Scale) -> AbxConfig {
    AbxConfig {
        pipeline: PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 1, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 8, probe_count: 8, ..AuditConfig::default() },
            ..PipelineConfig::default()
        },
        serve: SimServeConfig {
            scheduler: SchedulerConfig { max_batch: 4, max_delay_us: 900 },
            tier: ComputeTier::Cloud,
            network: None,
        },
        arms,
        fractions: (0.34, 0.33),
        attacked_per_arm: match scale {
            Scale::Tiny => 4,
            Scale::Small | Scale::Paper => 16,
        },
        us_per_minute: 1_000,
        horizon_minutes: 9 * 24 * 60,
        checkpoint_interval_us: 50_000_000,
        // Calibrated against the A/A control at both bundled scales:
        // composition noise lands at |Δ| ≈ 0.00 (tiny) / 0.08 (small)
        // while the undefended-vs-hard-rung effect clears +0.12 at
        // either scale.
        null_margin: 0.10,
        ..AbxConfig::default()
    }
}

/// Runs the sweep: the treatment A/B at every width in [`WIDTHS`], the
/// seed-stability re-split, then the A/A control.
///
/// # Panics
///
/// Panics if any contract fails: a non-partition or seed-unstable
/// split, a width-divergent fingerprint, a stale post-flip response, or
/// an A/A run that promotes a winner. The contracts are preconditions
/// of the reported numbers, not soft metrics.
pub fn run(config: &RunConfig) -> AbReportRun {
    let (dataset, general, cohort) = setting(config);

    let mut runs: Vec<WidthRun> = Vec::new();
    let mut outcome: Option<AbxOutcome> = None;
    for workers in WIDTHS {
        let registry = store_backed_registry(&general);
        let started = Instant::now();
        let abx = run_abx(
            &dataset,
            cohort.clone(),
            &registry,
            &general,
            &abx_config(workers, TREATMENT, config.scale),
        )
        .expect("A/B run");
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        abx.split.assert_partitions(abx.publications.iter().map(|p| p.user_id));
        assert_eq!(abx.degraded_after_swap, 0, "a losing-rung response landed after its flip");
        runs.push(WidthRun { workers, wall_ms, fingerprint: abx.fingerprint() });
        if let Some(reference) = &outcome {
            assert_eq!(
                abx.fingerprint(),
                reference.fingerprint(),
                "{workers}-worker experiment fingerprint diverged from 1-worker"
            );
            assert_eq!(abx.split, reference.split, "the cohort split drifted between runs");
        } else {
            assert!(!abx.attacks.is_empty(), "the front-door red team must attack");
            outcome = Some(abx);
        }
    }
    let outcome = outcome.expect("at least one width ran");

    // Seed stability: a fresh splitter over the same enrolled set
    // reproduces the partition exactly.
    let treatment_config = abx_config(WIDTHS[0], TREATMENT, config.scale);
    let resplit = CohortSplitter::new(
        treatment_config.split_seed,
        treatment_config.fractions.0,
        treatment_config.fractions.1,
    )
    .split(outcome.publications.iter().map(|p| p.user_id));
    assert_eq!(resplit, outcome.split, "the split is not a pure function of (seed, users)");

    // A/A control: identical rungs must read null and move nobody, and
    // the arms under test must not perturb the split itself.
    let registry = store_backed_registry(&general);
    let aa = run_abx(
        &dataset,
        cohort.clone(),
        &registry,
        &general,
        &abx_config(WIDTHS[0], [CONTROL; 2], config.scale),
    )
    .expect("A/A run");
    assert!(aa.verdict.is_null(), "identical rungs must be indistinguishable: {}", aa.verdict);
    assert!(aa.swaps.is_empty(), "a null verdict moves nobody");
    assert_eq!(aa.exposed_responses, 0);
    assert_eq!(aa.split, outcome.split, "the rungs under test leaked into the split");

    AbReportRun {
        seed: config.seed,
        enrolled: outcome.publications.len(),
        outcome,
        runs,
        aa_delta: aa.verdict.delta(),
        aa_null: true,
    }
}

/// The stdout table: one row per pool width.
pub fn table(run: &AbReportRun) -> Table {
    let o = &run.outcome;
    let mut t =
        Table::new(&["workers", "wall ms", "verdict", "flips", "promotions", "fingerprint"]);
    for r in &run.runs {
        t.row(&[
            r.workers.to_string(),
            format!("{:.1}", r.wall_ms),
            o.verdict.to_string(),
            o.flip_backs().to_string(),
            o.promotions().to_string(),
            format!("{:#018x}", r.fingerprint),
        ]);
    }
    t
}

/// Serializes the sweep to the documented `BENCH_ab_leakage.json`
/// schema. Fingerprints are hex strings (u64 does not survive JSON
/// doubles).
pub fn to_json(run: &AbReportRun) -> String {
    let o = &run.outcome;
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"ab-report\",\n");
    out.push_str(&format!("  \"seed\": {},\n", run.seed));
    out.push_str(&format!("  \"enrolled\": {},\n", run.enrolled));
    out.push_str(&format!("  \"widths\": [{}],\n", WIDTHS.map(|w| w.to_string()).join(", ")));
    out.push_str(&format!("  \"fingerprint\": \"{:#018x}\",\n", o.fingerprint()));
    out.push_str("  \"fingerprints_match\": true,\n");
    out.push_str(&format!(
        "  \"cohorts\": {{\"a\": {}, \"b\": {}, \"holdout\": {}, \"disjoint\": true, \
         \"seed_stable\": true}},\n",
        o.split.a.len(),
        o.split.b.len(),
        o.split.holdout.len(),
    ));
    out.push_str("  \"arms\": [\n");
    for (i, (name, s)) in [("A", &o.arms[0]), ("B", &o.arms[1])].into_iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"cohort\": {}, \"attacked\": {}, \
             \"wire_queries\": {}, \"leakage\": {:.6}, \"baseline\": {:.6}, \
             \"advantage\": {:.6}, \"served\": {}, \"latency_p95_us\": {}, \
             \"queue_p95_us\": {}, \"service_p95_us\": {}}}{}\n",
            s.cohort,
            s.attacked,
            s.wire_queries,
            s.leakage,
            s.baseline,
            s.advantage,
            s.served,
            s.latency_p95_us,
            s.queue_p95_us,
            s.service_p95_us,
            if i == 0 { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"verdict\": {{\"winner\": {}, \"delta\": {:.6}, \"decided_us\": {}, \
         \"checkpoints\": {}}},\n",
        o.verdict.winner().map_or("null".to_string(), |w| format!("\"{}\"", w.name())),
        o.verdict.delta(),
        o.verdict_us,
        o.checkpoints,
    ));
    out.push_str(&format!(
        "  \"rollout\": {{\"flip_backs\": {}, \"promotions\": {}, \"staleness_us\": {}, \
         \"exposed_responses\": {}, \"degraded_after_swap\": {}}},\n",
        o.flip_backs(),
        o.promotions(),
        o.flip_window.as_ref().map_or("null".to_string(), |w| w.staleness_us().to_string()),
        o.exposed_responses,
        o.degraded_after_swap,
    ));
    out.push_str(&format!(
        "  \"aa\": {{\"null\": {}, \"delta\": {:.6}}},\n",
        run.aa_null, run.aa_delta,
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in run.runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"fingerprint\": \"{:#018x}\"}}{}\n",
            r.workers,
            r.wall_ms,
            r.fingerprint,
            if i + 1 < run.runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_holds_every_contract_and_serializes() {
        let config = RunConfig { scale: Scale::Tiny, ..RunConfig::default() };
        let run = run(&config);
        assert!(run.enrolled > 0);
        assert_eq!(run.runs.len(), WIDTHS.len());
        let fp = run.outcome.fingerprint();
        assert!(run.runs.iter().all(|r| r.fingerprint == fp));
        assert!(run.aa_null && run.aa_delta.abs() <= 0.10);
        assert_eq!(run.outcome.degraded_after_swap, 0);
        // At the bundled seed the undefended arm loses to the hard rung
        // and the rollout path actually runs: the losing cohort flips
        // back and the holdout adopts the winner.
        assert_eq!(run.outcome.verdict.winner(), Some(pelican_abx::Arm::B));
        assert_eq!(run.outcome.flip_backs(), run.outcome.split.a.len());
        assert_eq!(run.outcome.promotions(), run.outcome.split.holdout.len());
        let json = to_json(&run);
        assert!(json.contains("\"experiment\": \"ab-report\""));
        assert!(json.contains("\"fingerprints_match\": true"));
        assert!(json.contains("\"disjoint\": true"));
        assert!(json.contains("\"seed_stable\": true"));
        assert!(json.contains("\"null\": true"));
        assert!(json.contains("\"degraded_after_swap\": 0"));
        assert!(json.contains(&format!("{fp:#018x}")));
        // Balanced braces/brackets — a cheap well-formedness check; CI
        // parses the file for real.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(table(&run).render().contains("verdict"));
    }
}

//! One module per group of paper experiments.
//!
//! | module | regenerates |
//! |---|---|
//! | [`attack_methods`] | Fig. 2a, Table II |
//! | [`adversaries`] | Fig. 2b, Fig. 2c |
//! | [`spatial`] | Fig. 3a, Fig. 3b, Fig. 3c |
//! | [`personalization`] | Table III, Table IV, §V-C2 overhead |
//! | [`defense`] | Fig. 5a, Fig. 5b, Fig. 5c |
//! | [`ablation`] | defense comparison, interest threshold, GD config, freeze depth |
//! | [`serving`] | fleet-serving throughput/latency (beyond the paper; ROADMAP north star) |
//! | [`training`] | fleet-training pipeline: parallel personalization + audit gate; lockstep batched-cohort sweep (beyond the paper) |
//! | [`network`] | device↔cloud network simulation: link-mix × retry sweep, contention, cloud RTT (beyond the paper) |
//! | [`cosim`] | closed-loop network/compute co-simulation: open vs. closed loops, width invariance, sim-driven scheduler fidelity (beyond the paper) |
//! | [`sim_scale`] | sim-core scaling: timer-wheel events/sec, memory and shard invariance at 10⁴–10⁶ devices (beyond the paper) |
//! | [`store`] | durable model store: log throughput, crash-recovery probe, rollback-under-traffic staleness (beyond the paper) |
//! | [`live`] | streaming personalization loop: retrain latency/staleness, width invariance, zero-cost re-audits (beyond the paper) |
//! | [`abx`] | closed-loop A/B experimentation of defense rungs: served-interface leakage verdicts, A/A null, flip-back rollout (beyond the paper) |
//!
//! Every experiment registers in the [`Experiment`] registry:
//! [`experiments`] enumerates them (driving `repro --list`) and
//! [`find`] resolves a CLI name to its runner.

pub mod ablation;
pub mod abx;
pub mod adversaries;
pub mod attack_methods;
pub mod cosim;
pub mod defense;
pub mod live;
pub mod network;
pub mod personalization;
pub mod serving;
pub mod sim_scale;
pub mod spatial;
pub mod store;
pub mod training;

use pelican::workbench::Scenario;
use pelican::PersonalizationMethod;
use pelican_mobility::SpatialLevel;

use crate::RunConfig;

/// A runnable, self-describing experiment: everything the `repro`
/// binary needs to list it and run it.
pub trait Experiment {
    /// CLI name (`repro <name>`).
    fn name(&self) -> &'static str;
    /// One-line description for `repro --list` and the usage screen.
    fn description(&self) -> &'static str;
    /// Runs the experiment and prints its report to stdout.
    fn run(&self, config: &RunConfig);
}

/// A registry row: static metadata plus the runner function. Keeping
/// rows as plain data lets the whole registry live in one `static`.
struct Entry {
    name: &'static str,
    description: &'static str,
    run: fn(&RunConfig),
}

impl Experiment for Entry {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn run(&self, config: &RunConfig) {
        (self.run)(config)
    }
}

/// Paper figures/tables in paper order — what `repro all` runs.
pub const PAPER_SET: [&str; 13] = [
    "fig2a", "table2", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c", "table3", "table4", "overhead",
    "fig5a", "fig5b", "fig5c",
];

static REGISTRY: &[Entry] = &[
    Entry {
        name: "fig2a",
        description: "attack accuracy by method (brute force / gradient descent / time-based)",
        run: run_fig2a,
    },
    Entry {
        name: "table2",
        description: "attack cost by method (queries + runtime)",
        run: run_table2,
    },
    Entry { name: "fig2b", description: "attack accuracy by adversary (A1/A2/A3)", run: run_fig2b },
    Entry {
        name: "fig2c",
        description: "attack accuracy by prior (true/none/predict/estimate)",
        run: run_fig2c,
    },
    Entry {
        name: "fig3a",
        description: "attack accuracy by spatial level (building vs AP)",
        run: run_fig3a,
    },
    Entry {
        name: "fig3b",
        description: "degree of mobility vs attack accuracy (+ correlation)",
        run: run_fig3b,
    },
    Entry {
        name: "fig3c",
        description: "mobility predictability vs attack accuracy (+ correlation)",
        run: run_fig3c,
    },
    Entry {
        name: "table3",
        description: "personalization accuracy (Reuse/LSTM/TL FE/TL FT, both levels)",
        run: run_table3,
    },
    Entry {
        name: "table4",
        description: "personalization accuracy vs training-data size (2/4/6/8 weeks)",
        run: run_table4,
    },
    Entry {
        name: "overhead",
        description: "cloud training vs device personalization compute",
        run: run_overhead,
    },
    Entry {
        name: "fig5a",
        description: "defense: leakage reduction by personalization method",
        run: run_fig5a,
    },
    Entry {
        name: "fig5b",
        description: "defense: leakage reduction vs privacy temperature",
        run: run_fig5b,
    },
    Entry {
        name: "fig5c",
        description: "defense: leakage reduction by spatial level",
        run: run_fig5c,
    },
    Entry {
        name: "serve-report",
        description: "fleet serving: throughput, batching, cache and latency per tier",
        run: run_serve_report,
    },
    Entry {
        name: "train-report",
        description: "fleet training: parallel personalization, audit gate, enroll latency",
        run: run_train_report,
    },
    Entry {
        name: "train-batched",
        description: "lockstep batched training: epoch throughput vs cohort size, fused share",
        run: run_train_batched,
    },
    Entry {
        name: "net-report",
        description: "fleet network: link-mix x retry sweep, uplink contention, cloud RTT",
        run: run_net_report,
    },
    Entry {
        name: "cosim-report",
        description:
            "closed-loop co-simulation: open vs closed loops, width invariance, sim scheduler",
        run: run_cosim_report,
    },
    Entry {
        name: "sim-scale",
        description:
            "sim-core scaling: events/sec, RSS and shard invariance at 10k/100k/1M devices",
        run: run_sim_scale,
    },
    Entry {
        name: "store-report",
        description:
            "durable model store: log throughput, crash-recovery probe, rollback staleness",
        run: run_store_report,
    },
    Entry {
        name: "live-report",
        description:
            "streaming personalization loop: width invariance, retrain latency, free re-audits",
        run: run_live_report,
    },
    Entry {
        name: "ab-report",
        description:
            "closed-loop A/B of defense rungs: served-interface verdict, A/A null, flip rollout",
        run: run_ab_report,
    },
    Entry {
        name: "ablate-defenses",
        description: "compare temperature vs output-noise vs rounding defenses",
        run: run_ablate_defenses,
    },
    Entry {
        name: "ablate-interest",
        description: "locations-of-interest threshold sweep",
        run: run_ablate_interest,
    },
    Entry {
        name: "ablate-gd",
        description: "gradient-descent attack hyperparameter sweep",
        run: run_ablate_gd,
    },
    Entry {
        name: "ablate-freeze",
        description: "fine-tuning freeze-depth sweep",
        run: run_ablate_freeze,
    },
];

/// Every registered experiment, in registry (≈ paper) order.
pub fn experiments() -> impl Iterator<Item = &'static dyn Experiment> {
    REGISTRY.iter().map(|e| e as &'static dyn Experiment)
}

/// Resolves a CLI experiment name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().find(|e| e.name == name).map(|e| e as &'static dyn Experiment)
}

fn banner(title: &str, config: &RunConfig) {
    println!();
    println!("=== {title} (scale={}, seed={}) ===", config.scale, config.seed);
}

fn run_fig2a(config: &RunConfig) {
    banner("Fig. 2a — attack accuracy by method (%)", config);
    let result = attack_methods::run(config);
    println!("{}", attack_methods::fig2a_table(&result).render());
}

fn run_table2(config: &RunConfig) {
    banner("Table II — attack cost by method", config);
    let result = attack_methods::run(config);
    println!("{}", attack_methods::table2(&result).render());
    println!(
        "(paper: brute force 82.18 h, gradient descent 6.27 h, time-based 0.68 h for 100 users)"
    );
}

fn run_fig2b(config: &RunConfig) {
    banner("Fig. 2b — attack accuracy by adversary (%)", config);
    println!("{}", adversaries::fig2b(config).render());
}

fn run_fig2c(config: &RunConfig) {
    banner("Fig. 2c — attack accuracy by prior (%)", config);
    println!("{}", adversaries::fig2c(config).render());
}

fn run_fig3a(config: &RunConfig) {
    banner("Fig. 3a — attack accuracy by spatial level (%)", config);
    println!("{}", spatial::fig3a(config).render());
}

fn run_fig3b(config: &RunConfig) {
    banner("Fig. 3b — degree of mobility vs attack accuracy", config);
    for reg in spatial::fig3b(config) {
        let (table, summary) = spatial::regression_table(&reg);
        println!("{}", table.render());
        println!("{summary}");
        println!("(paper: r = 0.337 building, r = 0.107 AP — weak effect)\n");
    }
}

fn run_fig3c(config: &RunConfig) {
    banner("Fig. 3c — mobility predictability vs attack accuracy", config);
    for reg in spatial::fig3c(config) {
        let (table, summary) = spatial::regression_table(&reg);
        println!("{}", table.render());
        println!("{summary}");
        println!("(paper: r = 0.804 building — strong; r = 0.078 AP — weak)\n");
    }
}

fn run_table3(config: &RunConfig) {
    banner("Table III — personalization train/test accuracy (%)", config);
    println!("{}", personalization::table3(config).render());
}

fn run_table4(config: &RunConfig) {
    banner("Table IV — accuracy vs training-data size (%)", config);
    println!("{}", personalization::table4(config).render());
}

fn run_overhead(config: &RunConfig) {
    banner("§V-C2 — cloud vs device compute overhead", config);
    println!("{}", personalization::overhead(config).render());
    println!("(paper: ~43,000e9 cycles / 4.55 h cloud vs ~15e9 cycles / ~6.6 s device)");
}

fn run_fig5a(config: &RunConfig) {
    banner("Fig. 5a — leakage reduction by personalization method (%)", config);
    println!("{}", defense::fig5a(config).render());
}

fn run_fig5b(config: &RunConfig) {
    banner("Fig. 5b — leakage reduction vs privacy temperature", config);
    println!("{}", defense::fig5b(config).render());
}

fn run_fig5c(config: &RunConfig) {
    banner("Fig. 5c — leakage reduction by spatial level (%)", config);
    println!("{}", defense::fig5c(config).render());
}

fn run_serve_report(config: &RunConfig) {
    banner("Fleet serving — batched registry throughput & latency", config);
    let outcomes = serving::run(config);
    println!("{}", serving::table(&outcomes).render());
    println!("batch-size histogram (identical across tiers):");
    println!("{}", serving::histogram_table(&outcomes).render());
}

fn run_train_report(config: &RunConfig) {
    banner("Fleet training — parallel personalization & privacy audit", config);
    let outcomes = training::run(config);
    println!("{}", training::table(&outcomes).render());
    println!("(published weights and audit verdicts verified bit-identical across widths;");
    println!(" speedup is host wall clock, so it reflects this machine's core count)");
}

fn run_train_batched(config: &RunConfig) {
    banner("Lockstep batched training — fused cohorts vs sequential dispatch", config);
    let run = training::run_batched(config);
    println!("trained weights and FLOP counts verified bit-identical across cohort sizes;");
    println!("wall clock covers the training stage only (audit and publication run identical");
    println!("code in both dispatch modes); single worker, so speedup is the fused-kernel win\n");
    println!("{}", training::batched_table(&run).render());
    let json = training::to_json(&run);
    match std::fs::write("BENCH_train_batched.json", &json) {
        Ok(()) => println!("wrote BENCH_train_batched.json"),
        Err(e) => eprintln!("could not write BENCH_train_batched.json: {e}"),
    }
}

fn run_net_report(config: &RunConfig) {
    banner("Fleet network — simulated device↔cloud contention", config);
    let run = network::run(config);
    println!(
        "general envelope {} kB; determinism and contention contracts verified",
        run.general_bytes / 1024,
    );
    println!("\nlink-mix × retry-policy sweep (enroll latency, simulated):");
    println!("{}", network::table(&run).render());
    println!("shared-uplink contention vs. per-device baseline:");
    println!("{}", network::contention_table(&run).render());
    println!("cloud-deployed serving round trips:");
    println!("{}", network::cloud_table(config).render());
}

fn run_cosim_report(config: &RunConfig) {
    banner("Closed-loop co-simulation — one virtual clock for the fleet", config);
    let run = cosim::run(config);
    println!(
        "general envelope {} kB; agreement, divergence, width-invariance and \
         scheduler-fidelity contracts verified",
        run.general_bytes / 1024,
    );
    println!("\nopen-loop replay vs. closed-loop co-simulation (two training rounds):");
    println!("{}", cosim::table(&run).render());
    println!("closed-loop trace fingerprint by trainer-pool width:");
    println!("{}", cosim::width_table(&run).render());
    println!("sim-driven batch scheduler vs. network jitter:");
    println!("{}", cosim::serve_table(&run).render());
}

fn run_store_report(config: &RunConfig) {
    banner("Durable model store — log throughput, recovery, rollback", config);
    let result = store::run(config);
    println!("\nappend throughput and compaction (envelope log):");
    println!("{}", store::table(&result).render());
    println!(
        "crash probe: {}/{} torn offsets recovered to the exact committed prefix",
        result.crash_points_correct, result.crash_points
    );
    assert_eq!(
        result.crash_points_correct, result.crash_points,
        "a crash point violated the committed-prefix contract"
    );
    println!();
    println!("{}", result.rollback.render());
}

fn run_sim_scale(config: &RunConfig) {
    banner("Sim-core scaling — timer-wheel engine at fleet population", config);
    let run = sim_scale::run(config);
    println!("fingerprints bit-identical across 1/2/8 shards at every population\n");
    println!("{}", sim_scale::table(&run).render());
    let json = sim_scale::to_json(&run);
    match std::fs::write("BENCH_sim_scale.json", &json) {
        Ok(()) => println!("wrote BENCH_sim_scale.json"),
        Err(e) => eprintln!("could not write BENCH_sim_scale.json: {e}"),
    }
}

fn run_live_report(config: &RunConfig) {
    banner("Live loop — streaming personalization on the virtual clock", config);
    let run = live::run(config);
    println!(
        "fingerprints bit-identical across {:?}-worker pools; re-audit sweeps ran zero \
         forward passes;\nquiescent case reduced byte-for-byte to the one-shot pipeline\n",
        live::WIDTHS,
    );
    println!("{}", live::table(&run).render());
    print!("{}", run.outcome.render());
    let json = live::to_json(&run);
    match std::fs::write("BENCH_live_loop.json", &json) {
        Ok(()) => println!("wrote BENCH_live_loop.json"),
        Err(e) => eprintln!("could not write BENCH_live_loop.json: {e}"),
    }
}

fn run_ab_report(config: &RunConfig) {
    banner("A/B experiment — defense rungs under live traffic", config);
    let run = abx::run(config);
    println!(
        "fingerprints bit-identical across {:?}-worker pools; cohorts disjoint and \
         seed-stable;\nA/A control decided null (Δ {:+.3}); zero degraded responses after \
         any flip\n",
        abx::WIDTHS,
        run.aa_delta,
    );
    println!("{}", abx::table(&run).render());
    print!("{}", run.outcome.render());
    let json = abx::to_json(&run);
    match std::fs::write("BENCH_ab_leakage.json", &json) {
        Ok(()) => println!("wrote BENCH_ab_leakage.json"),
        Err(e) => eprintln!("could not write BENCH_ab_leakage.json: {e}"),
    }
}

fn run_ablate_defenses(config: &RunConfig) {
    banner("Ablation — defense comparison (Table V alternatives)", config);
    println!("{}", ablation::defense_compare(config).render());
}

fn run_ablate_interest(config: &RunConfig) {
    banner("Ablation — locations-of-interest threshold", config);
    println!("{}", ablation::interest_threshold(config).render());
}

fn run_ablate_gd(config: &RunConfig) {
    banner("Ablation — gradient-descent attack configuration", config);
    println!("{}", ablation::gd_config(config).render());
}

fn run_ablate_freeze(config: &RunConfig) {
    banner("Ablation — fine-tuning freeze-depth sweep", config);
    println!("{}", ablation::freeze_depth(config).render());
}

/// Builds the standard experimental scenario for a run configuration:
/// TL-feature-extraction personalization (the paper's §IV default) at the
/// requested spatial level.
pub fn scenario(config: &RunConfig, level: SpatialLevel) -> Scenario {
    scenario_with(config, level, PersonalizationMethod::TlFeatureExtract)
}

/// Builds a scenario with an explicit personalization method.
pub fn scenario_with(
    config: &RunConfig,
    level: SpatialLevel,
    method: PersonalizationMethod,
) -> Scenario {
    Scenario::builder(config.scale, level)
        .seed(config.seed)
        .personal_users(config.personal_users())
        .method(method)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    #[test]
    fn tiny_scenario_builds() {
        let config = RunConfig { scale: Scale::Tiny, users: Some(1), ..RunConfig::default() };
        let s = scenario(&config, SpatialLevel::Building);
        assert_eq!(s.personal.len(), 1);
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names: Vec<&str> = experiments().map(|e| e.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate experiment name");
        for name in &names {
            assert!(find(name).is_some());
            assert!(!find(name).unwrap().description().is_empty());
        }
        assert!(find("sim-scale").is_some(), "sim-scale registers like the rest");
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn paper_set_is_registered() {
        for name in PAPER_SET {
            assert!(find(name).is_some(), "'{name}' in PAPER_SET but not registered");
        }
    }
}

//! One module per group of paper experiments.
//!
//! | module | regenerates |
//! |---|---|
//! | [`attack_methods`] | Fig. 2a, Table II |
//! | [`adversaries`] | Fig. 2b, Fig. 2c |
//! | [`spatial`] | Fig. 3a, Fig. 3b, Fig. 3c |
//! | [`personalization`] | Table III, Table IV, §V-C2 overhead |
//! | [`defense`] | Fig. 5a, Fig. 5b, Fig. 5c |
//! | [`ablation`] | defense comparison, interest threshold, GD config, freeze depth |
//! | [`serving`] | fleet-serving throughput/latency (beyond the paper; ROADMAP north star) |
//! | [`training`] | fleet-training pipeline: parallel personalization + audit gate (beyond the paper) |
//! | [`network`] | device↔cloud network simulation: link-mix × retry sweep, contention, cloud RTT (beyond the paper) |
//! | [`cosim`] | closed-loop network/compute co-simulation: open vs. closed loops, width invariance, sim-driven scheduler fidelity (beyond the paper) |

pub mod ablation;
pub mod adversaries;
pub mod attack_methods;
pub mod cosim;
pub mod defense;
pub mod network;
pub mod personalization;
pub mod serving;
pub mod spatial;
pub mod training;

use pelican::workbench::Scenario;
use pelican::PersonalizationMethod;
use pelican_mobility::SpatialLevel;

use crate::RunConfig;

/// Builds the standard experimental scenario for a run configuration:
/// TL-feature-extraction personalization (the paper's §IV default) at the
/// requested spatial level.
pub fn scenario(config: &RunConfig, level: SpatialLevel) -> Scenario {
    scenario_with(config, level, PersonalizationMethod::TlFeatureExtract)
}

/// Builds a scenario with an explicit personalization method.
pub fn scenario_with(
    config: &RunConfig,
    level: SpatialLevel,
    method: PersonalizationMethod,
) -> Scenario {
    Scenario::builder(config.scale, level)
        .seed(config.seed)
        .personal_users(config.personal_users())
        .method(method)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    #[test]
    fn tiny_scenario_builds() {
        let config = RunConfig { scale: Scale::Tiny, users: Some(1), ..RunConfig::default() };
        let s = scenario(&config, SpatialLevel::Building);
        assert_eq!(s.personal.len(), 1);
    }
}

//! Table III (personalization efficacy), Table IV (training-data size) and
//! the §V-C2 overhead comparison.

use pelican::workbench::Scenario;
use pelican::{personalize, PersonalizationConfig, PersonalizationMethod};
use pelican_mobility::SpatialLevel;
use pelican_nn::metrics::evaluate_top_k;
use pelican_nn::TrainConfig;

use crate::report::{pct, Table};
use crate::RunConfig;

/// Accuracy summary of one personalization method over all users.
#[derive(Debug, Clone)]
pub struct MethodAccuracy {
    /// Method evaluated.
    pub method: PersonalizationMethod,
    /// Mean top-1 accuracy on training data (overfitting indicator).
    pub train_top1: f64,
    /// Mean test accuracy at k = 1, 2, 3.
    pub test: [f64; 3],
}

/// Re-personalizes every user of `scenario` with `method` and aggregates
/// train/test accuracy — sharing one general model across all four methods
/// exactly as the paper's Table III does.
pub fn evaluate_method(
    scenario: &Scenario,
    method: PersonalizationMethod,
    weeks: Option<usize>,
) -> MethodAccuracy {
    let config = PersonalizationConfig {
        train: TrainConfig { epochs: 8, batch_size: 16, ..TrainConfig::default() },
        hidden_dim: hidden_of(scenario),
        dropout: 0.1,
        seed: scenario.seed ^ 0xABCD,
    };
    let mut train_top1 = 0.0;
    let mut test = [0.0f64; 3];
    let mut counted = 0usize;
    for user in &scenario.personal {
        let train: Vec<_> = match weeks {
            Some(w) => {
                let cutoff = (w * 7) as u32;
                user.train_triples
                    .iter()
                    .filter(|t| t[2].day < cutoff)
                    .map(|t| scenario.dataset.sample_of(t))
                    .collect()
            }
            None => user.train.clone(),
        };
        if train.is_empty() || user.test.is_empty() {
            continue;
        }
        let (model, _) = personalize(&scenario.general, &train, method, &config);
        train_top1 += evaluate_top_k(&model, &train, &[1]).accuracy(1);
        let acc = evaluate_top_k(&model, &user.test, &[1, 2, 3]);
        for (slot, &k) in [1usize, 2, 3].iter().enumerate() {
            test[slot] += acc.accuracy(k);
        }
        counted += 1;
    }
    let n = counted.max(1) as f64;
    MethodAccuracy {
        method,
        train_top1: train_top1 / n,
        test: [test[0] / n, test[1] / n, test[2] / n],
    }
}

fn hidden_of(scenario: &Scenario) -> usize {
    scenario
        .general
        .layers()
        .iter()
        .find_map(|l| match l {
            pelican_nn::Layer::Lstm(lstm) => Some(lstm.output_dim()),
            _ => None,
        })
        .expect("general model has an LSTM")
}

/// Table III: all four methods at both spatial levels.
pub fn table3(config: &RunConfig) -> Table {
    let mut t = Table::new(&[
        "location",
        "method",
        "train top-1",
        "test top-1",
        "test top-2",
        "test top-3",
    ]);
    for level in [SpatialLevel::Building, SpatialLevel::Ap] {
        let scenario = super::scenario(config, level);
        for method in PersonalizationMethod::all() {
            let acc = evaluate_method(&scenario, method, None);
            t.row(&[
                level.to_string(),
                method.name().to_string(),
                pct(acc.train_top1),
                pct(acc.test[0]),
                pct(acc.test[1]),
                pct(acc.test[2]),
            ]);
        }
    }
    t
}

/// Table IV: training-data size sweep (2/4/6/8 weeks) at building level
/// for the three trained methods.
pub fn table4(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let mut t = Table::new(&[
        "train weeks",
        "method",
        "train top-1",
        "test top-1",
        "test top-2",
        "test top-3",
    ]);
    for weeks in [2usize, 4, 6, 8] {
        for method in [
            PersonalizationMethod::Lstm,
            PersonalizationMethod::TlFeatureExtract,
            PersonalizationMethod::TlFineTune,
        ] {
            let acc = evaluate_method(&scenario, method, Some(weeks));
            t.row(&[
                weeks.to_string(),
                method.name().to_string(),
                pct(acc.train_top1),
                pct(acc.test[0]),
                pct(acc.test[1]),
                pct(acc.test[2]),
            ]);
        }
    }
    t
}

/// §V-C2: cloud training vs device personalization overhead, in simulated
/// cycles (the paper reports ~43,000 billion vs ~15 billion).
pub fn overhead(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let mut t = Table::new(&["phase", "tier", "cycles (1e9)", "simulated time", "flops"]);
    t.row(&[
        "general training".into(),
        "cloud".into(),
        format!("{:.2}", scenario.general_usage.cycles_billions()),
        format!("{:.2?}", scenario.general_usage.simulated),
        scenario.general_usage.flops.to_string(),
    ]);
    let mut personal = pelican::ResourceUsage::zero();
    for user in &scenario.personal {
        personal.accumulate(&user.usage);
    }
    let n = scenario.personal.len().max(1) as f64;
    t.row(&[
        format!("personalization (mean of {})", scenario.personal.len()),
        "device".into(),
        format!("{:.3}", personal.cycles_billions() / n),
        format!("{:.2?}", personal.simulated.div_f64(n)),
        format!("{:.0}", personal.flops as f64 / n),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: Scale::Tiny,
            users: Some(1),
            instances_per_user: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn method_evaluation_reports_sane_accuracies() {
        let scenario = super::super::scenario(&tiny(), SpatialLevel::Building);
        let acc = evaluate_method(&scenario, PersonalizationMethod::Reuse, None);
        assert!((0.0..=1.0).contains(&acc.train_top1));
        assert!(acc.test.iter().all(|a| (0.0..=1.0).contains(a)));
        assert!(acc.test[0] <= acc.test[2], "top-k accuracy is monotone");
    }

    #[test]
    fn overhead_shows_cloud_dominates() {
        let t = overhead(&tiny()).render();
        assert!(t.contains("general training"));
        assert!(t.contains("personalization"));
    }
}

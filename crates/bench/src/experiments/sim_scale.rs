//! Sim-core scaling: events/sec, memory and tail latency of the
//! timer-wheel engine at 10⁴–10⁶ devices, with shard invariance checked
//! at every population.
//!
//! The fleet under test mirrors the paper's topology at population
//! scale: every device owns a FIFO last-hop link and shares a
//! fair-share WAN uplink with its 64-device group, and every device runs
//! one download → train → upload enrollment job. Each population is
//! simulated at 1, 2 and 8 shards with [`TraceLevel::Fingerprint`] (the
//! hash streams, events are not retained); the run **asserts** that all
//! three fingerprints are bit-identical before any number is reported —
//! a perf figure from a nondeterministic engine would be worthless.
//!
//! Results go to stdout as a table and to `BENCH_sim_scale.json` in the
//! working directory. The JSON schema is documented in the repository
//! README under "Scaling & perf baseline"; the CI `sim-scale` step
//! parses it and fails on fingerprint divergence.

use std::time::Instant;

use pelican_sim::{
    completion_percentile, JobSpec, LinkMix, LinkProfile, LinkSpec, Passive, Simulator, Stage,
    TraceLevel, TransferPolicy,
};

use crate::report::Table;
use crate::RunConfig;

/// Devices per shared fair-share uplink group.
const GROUP: usize = 64;
/// Shard counts every population is checked across.
pub const SHARDS: [usize; 3] = [1, 2, 8];
/// Default population ladder (overridden by `--devices`).
pub const POPULATIONS: [usize; 3] = [10_000, 100_000, 1_000_000];

/// One `(population, shards)` timed run.
#[derive(Debug, Clone, Copy)]
pub struct ShardRun {
    /// Shard count of this run.
    pub shards: usize,
    /// Wall-clock time of the `Simulator::run` call, in milliseconds.
    pub wall_ms: f64,
    /// Simulator events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Trace fingerprint (must match the population's other runs).
    pub fingerprint: u64,
}

/// One population's measurements.
#[derive(Debug, Clone)]
pub struct PopulationResult {
    /// Device count.
    pub devices: usize,
    /// Events processed (identical across shard counts).
    pub events: u64,
    /// The shared fingerprint all shard counts agreed on.
    pub fingerprint: u64,
    /// p95 job round trip (release → end) in µs of virtual time.
    pub p95_rtt_us: u64,
    /// Jobs that timed out (0 for this workload).
    pub timed_out: usize,
    /// Process peak RSS in kB (`VmHWM`) after this population ran.
    /// Populations run ascending, so the delta against the previous
    /// entry bounds the population's own footprint.
    pub peak_rss_kb: u64,
    /// Per-shard-count timings.
    pub runs: Vec<ShardRun>,
}

/// A finished sim-scale sweep.
#[derive(Debug, Clone)]
pub struct SimScaleRun {
    /// Master seed (link-mix assignment).
    pub seed: u64,
    /// Populations measured, ascending.
    pub populations: Vec<PopulationResult>,
}

/// The scaling fleet: per-device FIFO last-hop links, one fair-share WAN
/// uplink per 64-device group, one three-stage enrollment job per
/// device with releases spread over ~250 ms of virtual time.
fn fleet(devices: usize, seed: u64) -> (Vec<LinkSpec>, Vec<JobSpec>) {
    let groups = devices.div_ceil(GROUP);
    let mix = LinkMix::campus();
    let mut links: Vec<LinkSpec> =
        (0..devices).map(|d| LinkSpec::fifo(mix.assign(seed, d as u64).profile)).collect();
    links.extend((0..groups).map(|_| LinkSpec::fair(LinkProfile::wan())));
    let specs = (0..devices)
        .map(|d| {
            let uplink = devices + d / GROUP;
            JobSpec {
                id: d as u64,
                release_us: (d as u64 % 997) * 250,
                stages: vec![
                    Stage::Transfer {
                        label: "download",
                        link: uplink,
                        bytes: 120_000,
                        policy: TransferPolicy::default(),
                    },
                    Stage::Compute { label: "train", duration_us: 4_000 + (d as u64 % 37) * 300 },
                    Stage::Transfer {
                        label: "upload",
                        link: d,
                        bytes: 40_000 + (d as u64 % 11) * 2_000,
                        policy: TransferPolicy::default(),
                    },
                ],
            }
        })
        .collect();
    (links, specs)
}

/// Process peak RSS (`VmHWM`) in kB, or 0 where `/proc` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Runs the sweep: every population in `--devices` (or the default
/// 10k/100k/1M ladder) at 1, 2 and 8 shards.
///
/// # Panics
///
/// Panics if any shard count's fingerprint or event count diverges from
/// the population's 1-shard run — determinism is a precondition of the
/// perf numbers, not a soft metric.
pub fn run(config: &RunConfig) -> SimScaleRun {
    let populations: Vec<usize> = match config.devices {
        Some(n) => vec![n],
        None => POPULATIONS.to_vec(),
    };
    let mut results = Vec::new();
    for &devices in &populations {
        let (links, specs) = fleet(devices, config.seed);
        let mut runs: Vec<ShardRun> = Vec::new();
        let mut baseline = None;
        for shards in SHARDS {
            let sim = Simulator::builder()
                .links(links.clone())
                .shards(shards)
                .trace(TraceLevel::Fingerprint)
                .build();
            let started = Instant::now();
            let out = sim.run(&specs, &mut Passive);
            let wall = started.elapsed();
            let wall_ms = wall.as_secs_f64() * 1e3;
            runs.push(ShardRun {
                shards,
                wall_ms,
                events_per_sec: out.events() as f64 / wall.as_secs_f64().max(1e-9),
                fingerprint: out.fingerprint(),
            });
            if let Some(prior) = &baseline {
                let prior: &pelican_sim::SimOutcome = prior;
                assert_eq!(
                    out.fingerprint(),
                    prior.fingerprint(),
                    "{devices}-device fleet: {shards}-shard fingerprint diverged from 1-shard"
                );
                assert_eq!(
                    out.events(),
                    prior.events(),
                    "{devices}-device fleet: {shards}-shard event count diverged"
                );
            } else {
                baseline = Some(out);
            }
        }
        let baseline = baseline.expect("at least one shard count ran");
        results.push(PopulationResult {
            devices,
            events: baseline.events(),
            fingerprint: baseline.fingerprint(),
            p95_rtt_us: completion_percentile(&baseline, 0.95),
            timed_out: baseline.timed_out(),
            peak_rss_kb: peak_rss_kb(),
            runs,
        });
    }
    SimScaleRun { seed: config.seed, populations: results }
}

/// The stdout table: one row per `(population, shards)` run.
pub fn table(run: &SimScaleRun) -> Table {
    let mut t = Table::new(&[
        "devices",
        "shards",
        "events",
        "wall ms",
        "events/s",
        "p95 rtt ms",
        "peak rss MB",
        "fingerprint",
    ]);
    for pop in &run.populations {
        for r in &pop.runs {
            t.row(&[
                pop.devices.to_string(),
                r.shards.to_string(),
                pop.events.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.events_per_sec),
                format!("{:.1}", pop.p95_rtt_us as f64 / 1e3),
                format!("{:.0}", pop.peak_rss_kb as f64 / 1024.0),
                format!("{:#018x}", pop.fingerprint),
            ]);
        }
    }
    t
}

/// Serializes the sweep to the documented `BENCH_sim_scale.json` schema.
/// Fingerprints are hex strings (u64 does not survive JSON doubles).
pub fn to_json(run: &SimScaleRun) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"sim-scale\",\n");
    out.push_str(&format!("  \"seed\": {},\n", run.seed));
    out.push_str(&format!("  \"shards\": [{}],\n", SHARDS.map(|s| s.to_string()).join(", ")));
    out.push_str("  \"populations\": [\n");
    for (i, pop) in run.populations.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"devices\": {},\n", pop.devices));
        out.push_str(&format!("      \"events\": {},\n", pop.events));
        out.push_str(&format!("      \"fingerprint\": \"{:#018x}\",\n", pop.fingerprint));
        out.push_str("      \"fingerprints_match\": true,\n");
        out.push_str(&format!("      \"p95_rtt_us\": {},\n", pop.p95_rtt_us));
        out.push_str(&format!("      \"timed_out\": {},\n", pop.timed_out));
        out.push_str(&format!("      \"peak_rss_kb\": {},\n", pop.peak_rss_kb));
        out.push_str("      \"runs\": [\n");
        for (j, r) in pop.runs.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"shards\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.1}, \
                 \"fingerprint\": \"{:#018x}\"}}{}\n",
                r.shards,
                r.wall_ms,
                r.events_per_sec,
                r.fingerprint,
                if j + 1 < pop.runs.len() { "," } else { "" },
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if i + 1 < run.populations.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_deterministic_and_serializes() {
        let config = RunConfig { devices: Some(600), ..RunConfig::default() };
        let run = run(&config);
        assert_eq!(run.populations.len(), 1);
        let pop = &run.populations[0];
        assert_eq!(pop.devices, 600);
        assert_eq!(pop.runs.len(), SHARDS.len());
        assert!(pop.runs.iter().all(|r| r.fingerprint == pop.fingerprint));
        assert!(pop.events > 0);
        assert_eq!(pop.timed_out, 0);
        assert!(pop.p95_rtt_us > 0);
        let json = to_json(&run);
        assert!(json.contains("\"devices\": 600"));
        assert!(json.contains("\"fingerprints_match\": true"));
        assert!(json.contains(&format!("{:#018x}", pop.fingerprint)));
        // Balanced braces/brackets — a cheap well-formedness check; CI
        // parses the file for real.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        let table = table(&run).render();
        assert!(table.contains("600"));
    }
}

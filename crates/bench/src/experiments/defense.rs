//! Fig. 5: efficacy of the Pelican privacy layer.

use pelican::reduction_in_leakage;
use pelican::PersonalizationMethod;
use pelican_attacks::{Adversary, AttackMethod, PriorKind, TimeBased};
use pelican_mobility::SpatialLevel;

use crate::report::Table;
use crate::RunConfig;

/// The paper's strongest evaluated temperature.
pub const DEFENSE_T: f32 = 1e-3;

/// Top-k grid for Fig. 5a (the paper plots k = 1..9).
pub const KS_5A: [usize; 5] = [1, 3, 5, 7, 9];

/// Top-k grid for Fig. 5c (k = 1..10).
pub const KS_5C: [usize; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Fig. 5a: reduction in privacy leakage for the two transfer-learning
/// personalization methods, by top-k.
pub fn fig5a(config: &RunConfig) -> Table {
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut header = vec!["personalization".to_string()];
    header.extend(KS_5A.iter().map(|k| format!("top-{k}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for pm in [PersonalizationMethod::TlFeatureExtract, PersonalizationMethod::TlFineTune] {
        let scenario = super::scenario_with(config, SpatialLevel::Building, pm);
        let before = scenario.attack_all(
            Adversary::A1,
            &method,
            PriorKind::True,
            &KS_5A,
            config.instances_per_user,
            None,
        );
        let after = scenario.attack_all(
            Adversary::A1,
            &method,
            PriorKind::True,
            &KS_5A,
            config.instances_per_user,
            Some(DEFENSE_T),
        );
        let mut cells = vec![pm.name().to_string()];
        for &k in &KS_5A {
            cells.push(format!(
                "{:.1}",
                reduction_in_leakage(before.accuracy(k), after.accuracy(k))
            ));
        }
        t.row(&cells);
    }
    t
}

/// Fig. 5b: reduction in leakage (top-3) as the privacy temperature is
/// swept from 1e-1 down to 1e-5.
pub fn fig5b(config: &RunConfig) -> Table {
    let scenario = super::scenario(config, SpatialLevel::Building);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let before = scenario.attack_all(
        Adversary::A1,
        &method,
        PriorKind::True,
        &[3],
        config.instances_per_user,
        None,
    );
    let mut t = Table::new(&["temperature", "attack top-3 (%)", "reduction (%)"]);
    for temperature in [1e-1f32, 1e-2, 1e-3, 1e-4, 1e-5] {
        let after = scenario.attack_all(
            Adversary::A1,
            &method,
            PriorKind::True,
            &[3],
            config.instances_per_user,
            Some(temperature),
        );
        t.row(&[
            format!("{temperature:.0e}"),
            format!("{:.1}", after.accuracy(3) * 100.0),
            format!("{:.1}", reduction_in_leakage(before.accuracy(3), after.accuracy(3))),
        ]);
    }
    t
}

/// Fig. 5c: reduction in leakage by spatial level, by top-k.
pub fn fig5c(config: &RunConfig) -> Table {
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut header = vec!["level".to_string()];
    header.extend(KS_5C.iter().map(|k| format!("top-{k}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for level in [SpatialLevel::Ap, SpatialLevel::Building] {
        let scenario = super::scenario(config, level);
        let before = scenario.attack_all(
            Adversary::A1,
            &method,
            PriorKind::True,
            &KS_5C,
            config.instances_per_user,
            None,
        );
        let after = scenario.attack_all(
            Adversary::A1,
            &method,
            PriorKind::True,
            &KS_5C,
            config.instances_per_user,
            Some(DEFENSE_T),
        );
        let mut cells = vec![level.to_string()];
        for &k in &KS_5C {
            cells.push(format!(
                "{:.1}",
                reduction_in_leakage(before.accuracy(k), after.accuracy(k))
            ));
        }
        t.row(&cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: Scale::Tiny,
            users: Some(1),
            instances_per_user: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn fig5b_sweeps_five_temperatures() {
        let rendered = fig5b(&tiny()).render();
        assert_eq!(rendered.lines().count(), 2 + 5);
        assert!(rendered.contains("1e-5"));
    }

    #[test]
    fn fig5c_covers_both_levels() {
        let rendered = fig5c(&tiny()).render();
        assert!(rendered.contains("ap"));
        assert!(rendered.contains("bldg"));
    }
}

//! Fig. 3: spatial scales, degree of mobility, and mobility predictability.

use pelican::stats::{pearson, pearson_p_value};
use pelican_attacks::{Adversary, AttackMethod, PriorKind, TimeBased};
use pelican_mobility::SpatialLevel;

use crate::report::{pct, Table};
use crate::RunConfig;

/// Top-k grid for Fig. 3a.
pub const KS_3A: [usize; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];

/// Fig. 3a: attack accuracy by spatial level (building vs AP).
pub fn fig3a(config: &RunConfig) -> Table {
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut header = vec!["level".to_string()];
    header.extend(KS_3A.iter().map(|k| format!("top-{k}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for level in [SpatialLevel::Ap, SpatialLevel::Building] {
        let scenario = super::scenario(config, level);
        let eval = scenario.attack_all(
            Adversary::A1,
            &method,
            PriorKind::True,
            &KS_3A,
            config.instances_per_user,
            None,
        );
        let mut cells = vec![level.to_string()];
        for &k in &KS_3A {
            cells.push(pct(eval.accuracy(k)));
        }
        t.row(&cells);
    }
    t
}

/// A per-user scatter point for the regression analyses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    /// User id.
    pub user_id: usize,
    /// X value (mobility degree for 3b, model accuracy for 3c).
    pub x: f64,
    /// Aggregate top-3 attack accuracy against this user.
    pub attack_accuracy: f64,
}

/// Per-level regression result (Fig. 3b / 3c).
#[derive(Debug, Clone)]
pub struct Regression {
    /// Spatial level.
    pub level: SpatialLevel,
    /// Scatter points, one per personalization user.
    pub points: Vec<ScatterPoint>,
    /// Pearson correlation coefficient.
    pub r: f64,
    /// Two-sided p-value (normal approximation).
    pub p: f64,
}

fn per_user_attack(
    config: &RunConfig,
    level: SpatialLevel,
    x_of: impl Fn(&pelican::workbench::Scenario, usize) -> f64,
) -> Regression {
    let scenario = super::scenario(config, level);
    let method = AttackMethod::TimeBased(TimeBased::default());
    let mut points = Vec::new();
    for (idx, user) in scenario.personal.iter().enumerate() {
        let eval = scenario.attack_user(
            user,
            Adversary::A1,
            &method,
            PriorKind::True,
            &[3],
            config.instances_per_user,
            None,
        );
        points.push(ScatterPoint {
            user_id: user.user_id,
            x: x_of(&scenario, idx),
            attack_accuracy: eval.accuracy(3),
        });
    }
    let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.attack_accuracy).collect();
    let r = pearson(&xs, &ys);
    let p = pearson_p_value(r, xs.len());
    Regression { level, points, r, p }
}

/// Fig. 3b: degree of mobility (distinct buildings visited) vs attack
/// accuracy, with the paper's correlation analysis.
pub fn fig3b(config: &RunConfig) -> Vec<Regression> {
    [SpatialLevel::Ap, SpatialLevel::Building]
        .into_iter()
        .map(|level| {
            per_user_attack(config, level, |scenario, idx| {
                let user = &scenario.personal[idx];
                scenario.dataset.users[user.user_id].trace.distinct_buildings() as f64
            })
        })
        .collect()
}

/// Fig. 3c: mobility predictability (proxied, as in the paper, by the
/// personalized model's top-1 test accuracy) vs attack accuracy.
pub fn fig3c(config: &RunConfig) -> Vec<Regression> {
    [SpatialLevel::Ap, SpatialLevel::Building]
        .into_iter()
        .map(|level| {
            per_user_attack(config, level, |scenario, idx| scenario.personal[idx].test_accuracy(1))
        })
        .collect()
}

/// Renders a regression result as a scatter table plus summary line.
pub fn regression_table(reg: &Regression) -> (Table, String) {
    let mut t = Table::new(&["user", "x", "attack top-3 (%)"]);
    for p in &reg.points {
        t.row(&[p.user_id.to_string(), format!("{:.3}", p.x), pct(p.attack_accuracy)]);
    }
    let summary =
        format!("level={} r={:.3} p={:.3e} n={}", reg.level, reg.r, reg.p, reg.points.len());
    (t, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::Scale;

    fn tiny() -> RunConfig {
        RunConfig {
            scale: Scale::Tiny,
            users: Some(2),
            instances_per_user: 2,
            ..RunConfig::default()
        }
    }

    #[test]
    fn fig3a_reports_both_levels() {
        let rendered = fig3a(&tiny()).render();
        assert!(rendered.contains("ap"));
        assert!(rendered.contains("bldg"));
    }

    #[test]
    fn regressions_have_points_per_user() {
        let regs = fig3b(&tiny());
        assert_eq!(regs.len(), 2);
        for reg in &regs {
            assert_eq!(reg.points.len(), 2);
            assert!((-1.0..=1.0).contains(&reg.r));
            let (t, summary) = regression_table(reg);
            assert!(t.render().contains("attack top-3"));
            assert!(summary.contains("r="));
        }
    }
}

//! Plain-text table formatting for experiment reports.

/// A simple fixed-width table builder for terminal reports.
///
/// # Example
///
/// ```
/// let mut t = pelican_bench::report::Table::new(&["method", "top-1"]);
/// t.row(&["time-based".into(), "61.2".into()]);
/// let out = t.render();
/// assert!(out.contains("time-based"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|h| h.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{cell:<w$}  "));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (comma-separated, header first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal (`0.776` → `77.6`).
pub fn pct(fraction: f64) -> String {
    format!("{:.1}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["x".into(), "1".into()]);
        t.row(&["yyyy".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("long-header"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new(&["k", "acc"]);
        t.row(&["1".into(), "0.5".into()]);
        assert_eq!(t.to_csv(), "k,acc\n1,0.5\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.776), "77.6");
        assert_eq!(pct(0.0), "0.0");
    }
}

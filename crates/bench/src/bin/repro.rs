//! `repro` — regenerates every table and figure of the Pelican paper.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|paper] [--seed N] [--users N]
//!       [--instances N] [--devices N]
//! repro --list
//! ```
//!
//! Experiments live in the [`pelican_bench::experiments`] registry; this
//! binary only parses flags, resolves the name and runs it. `all` runs
//! the paper figures/tables in paper order.

use std::process::ExitCode;

use pelican_bench::experiments::{self, PAPER_SET};
use pelican_bench::parse_args;

const USAGE: &str = "usage: repro <experiment> [--scale tiny|small|paper] [--seed N] [--users N] \
                     [--instances N] [--devices N] [--cohort B]
       repro --list    (every experiment with its description)
       repro all       (paper figures/tables in paper order)";

fn list() -> String {
    let mut out = String::from("experiments:\n");
    for exp in experiments::experiments() {
        out.push_str(&format!("  {:<17} {}\n", exp.name(), exp.description()));
    }
    out.push_str("  all               run the paper figures/tables in order");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((experiment, rest)) = args.split_first() else {
        eprintln!("{USAGE}\n\n{}", list());
        return ExitCode::FAILURE;
    };
    if experiment == "--list" || experiment == "list" {
        println!("{}", list());
        return ExitCode::SUCCESS;
    }
    let config = match parse_args(rest) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    if experiment == "all" {
        for name in PAPER_SET {
            experiments::find(name).expect("paper-set names are registered").run(&config);
        }
    } else {
        match experiments::find(experiment) {
            Some(exp) => exp.run(&config),
            None => {
                eprintln!("unknown experiment '{experiment}'\n\n{USAGE}\n\n{}", list());
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!("\n[done in {:.1?}]", started.elapsed());
    ExitCode::SUCCESS
}

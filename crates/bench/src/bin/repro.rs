//! `repro` — regenerates every table and figure of the Pelican paper.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|paper] [--seed N] [--users N] [--instances N]
//! ```
//!
//! Experiments: `table2`, `table3`, `table4`, `fig2a`, `fig2b`, `fig2c`,
//! `fig3a`, `fig3b`, `fig3c`, `fig5a`, `fig5b`, `fig5c`, `overhead`, `all`.

use std::process::ExitCode;

use pelican_bench::experiments::{
    ablation, adversaries, attack_methods, cosim, defense, network, personalization, serving,
    spatial, training,
};
use pelican_bench::{parse_args, RunConfig};

const USAGE: &str =
    "usage: repro <experiment> [--scale tiny|small|paper] [--seed N] [--users N] [--instances N]
experiments:
  fig2a     attack accuracy by method (brute force / gradient descent / time-based)
  table2    attack cost by method (queries + runtime)
  fig2b     attack accuracy by adversary (A1/A2/A3)
  fig2c     attack accuracy by prior (true/none/predict/estimate)
  fig3a     attack accuracy by spatial level (building vs AP)
  fig3b     degree of mobility vs attack accuracy (+ correlation)
  fig3c     mobility predictability vs attack accuracy (+ correlation)
  table3    personalization accuracy (Reuse/LSTM/TL FE/TL FT, both levels)
  table4    personalization accuracy vs training-data size (2/4/6/8 weeks)
  overhead  cloud training vs device personalization compute
  fig5a     defense: leakage reduction by personalization method
  fig5b     defense: leakage reduction vs privacy temperature
  fig5c     defense: leakage reduction by spatial level
  serve-report      fleet serving: throughput, batching, cache and latency per tier
  train-report      fleet training: parallel personalization, audit gate, enroll latency
  net-report        fleet network: link-mix x retry sweep, uplink contention, cloud RTT
  cosim-report      closed-loop co-simulation: open vs closed loops, width invariance, sim scheduler
  ablate-defenses   compare temperature vs output-noise vs rounding defenses
  ablate-interest   locations-of-interest threshold sweep
  ablate-gd         gradient-descent attack hyperparameter sweep
  ablate-freeze     fine-tuning freeze-depth sweep
  all       run everything above in order (paper figures only)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((experiment, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let config = match parse_args(rest) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    let ok = run_experiment(experiment, &config);
    if ok {
        eprintln!("\n[done in {:.1?}]", started.elapsed());
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown experiment '{experiment}'\n\n{USAGE}");
        ExitCode::FAILURE
    }
}

fn banner(title: &str, config: &RunConfig) {
    println!();
    println!("=== {title} (scale={}, seed={}) ===", config.scale, config.seed);
}

fn run_experiment(name: &str, config: &RunConfig) -> bool {
    match name {
        "fig2a" => {
            banner("Fig. 2a — attack accuracy by method (%)", config);
            let result = attack_methods::run(config);
            println!("{}", attack_methods::fig2a_table(&result).render());
        }
        "table2" => {
            banner("Table II — attack cost by method", config);
            let result = attack_methods::run(config);
            println!("{}", attack_methods::table2(&result).render());
            println!("(paper: brute force 82.18 h, gradient descent 6.27 h, time-based 0.68 h for 100 users)");
        }
        "fig2b" => {
            banner("Fig. 2b — attack accuracy by adversary (%)", config);
            println!("{}", adversaries::fig2b(config).render());
        }
        "fig2c" => {
            banner("Fig. 2c — attack accuracy by prior (%)", config);
            println!("{}", adversaries::fig2c(config).render());
        }
        "fig3a" => {
            banner("Fig. 3a — attack accuracy by spatial level (%)", config);
            println!("{}", spatial::fig3a(config).render());
        }
        "fig3b" => {
            banner("Fig. 3b — degree of mobility vs attack accuracy", config);
            for reg in spatial::fig3b(config) {
                let (table, summary) = spatial::regression_table(&reg);
                println!("{}", table.render());
                println!("{summary}");
                println!("(paper: r = 0.337 building, r = 0.107 AP — weak effect)\n");
            }
        }
        "fig3c" => {
            banner("Fig. 3c — mobility predictability vs attack accuracy", config);
            for reg in spatial::fig3c(config) {
                let (table, summary) = spatial::regression_table(&reg);
                println!("{}", table.render());
                println!("{summary}");
                println!("(paper: r = 0.804 building — strong; r = 0.078 AP — weak)\n");
            }
        }
        "table3" => {
            banner("Table III — personalization train/test accuracy (%)", config);
            println!("{}", personalization::table3(config).render());
        }
        "table4" => {
            banner("Table IV — accuracy vs training-data size (%)", config);
            println!("{}", personalization::table4(config).render());
        }
        "overhead" => {
            banner("§V-C2 — cloud vs device compute overhead", config);
            println!("{}", personalization::overhead(config).render());
            println!("(paper: ~43,000e9 cycles / 4.55 h cloud vs ~15e9 cycles / ~6.6 s device)");
        }
        "fig5a" => {
            banner("Fig. 5a — leakage reduction by personalization method (%)", config);
            println!("{}", defense::fig5a(config).render());
        }
        "fig5b" => {
            banner("Fig. 5b — leakage reduction vs privacy temperature", config);
            println!("{}", defense::fig5b(config).render());
        }
        "fig5c" => {
            banner("Fig. 5c — leakage reduction by spatial level (%)", config);
            println!("{}", defense::fig5c(config).render());
        }
        "serve-report" => {
            banner("Fleet serving — batched registry throughput & latency", config);
            let outcomes = serving::run(config);
            println!("{}", serving::table(&outcomes).render());
            println!("batch-size histogram (identical across tiers):");
            println!("{}", serving::histogram_table(&outcomes).render());
        }
        "train-report" => {
            banner("Fleet training — parallel personalization & privacy audit", config);
            let outcomes = training::run(config);
            println!("{}", training::table(&outcomes).render());
            println!("(published weights and audit verdicts verified bit-identical across widths;");
            println!(" speedup is host wall clock, so it reflects this machine's core count)");
        }
        "net-report" => {
            banner("Fleet network — simulated device↔cloud contention", config);
            let run = network::run(config);
            println!(
                "general envelope {} kB; determinism and contention contracts verified",
                run.general_bytes / 1024,
            );
            println!("\nlink-mix × retry-policy sweep (enroll latency, simulated):");
            println!("{}", network::table(&run).render());
            println!("shared-uplink contention vs. per-device baseline:");
            println!("{}", network::contention_table(&run).render());
            println!("cloud-deployed serving round trips:");
            println!("{}", network::cloud_table(config).render());
        }
        "cosim-report" => {
            banner("Closed-loop co-simulation — one virtual clock for the fleet", config);
            let run = cosim::run(config);
            println!(
                "general envelope {} kB; agreement, divergence, width-invariance and \
                 scheduler-fidelity contracts verified",
                run.general_bytes / 1024,
            );
            println!("\nopen-loop replay vs. closed-loop co-simulation (two training rounds):");
            println!("{}", cosim::table(&run).render());
            println!("closed-loop trace fingerprint by trainer-pool width:");
            println!("{}", cosim::width_table(&run).render());
            println!("sim-driven batch scheduler vs. network jitter:");
            println!("{}", cosim::serve_table(&run).render());
        }
        "ablate-defenses" => {
            banner("Ablation — defense comparison (Table V alternatives)", config);
            println!("{}", ablation::defense_compare(config).render());
        }
        "ablate-interest" => {
            banner("Ablation — locations-of-interest threshold", config);
            println!("{}", ablation::interest_threshold(config).render());
        }
        "ablate-gd" => {
            banner("Ablation — gradient-descent attack configuration", config);
            println!("{}", ablation::gd_config(config).render());
        }
        "ablate-freeze" => {
            banner("Ablation — fine-tuning freeze depth", config);
            println!("{}", ablation::freeze_depth(config).render());
        }
        "all" => {
            for exp in [
                "fig2a", "table2", "fig2b", "fig2c", "fig3a", "fig3b", "fig3c", "table3", "table4",
                "overhead", "fig5a", "fig5b", "fig5c",
            ] {
                run_experiment(exp, config);
            }
        }
        _ => return false,
    }
    true
}

//! Criterion bench behind lockstep batched training: epoch throughput of
//! the fused multi-model kernels vs. sequential per-job dispatch, on a
//! single worker.
//!
//! The timed region is the pipeline's *training stage* — envelope decode,
//! warm-start prep and the epoch loop — which is the stage lockstep
//! dispatch accelerates; the audit and publication stages execute
//! identical code in both dispatch modes and are excluded. Everything
//! runs at pool width 1, so the ratio between rows isolates what the
//! fused kernels buy (GEMM-shaped chunk steps and weight-matrix cache
//! reuse across the cohort) from thread-level parallelism — the
//! acceptance bar is ≥ 1.3× sequential epoch throughput at cohort ≥ 8.
//! Every cohort size trains bit-identical weights (asserted before timing
//! starts; end-to-end publication identity is covered by the pipeline's
//! determinism tests), so the cohort size is purely a throughput knob.
//!
//! The shape is the `Small` fleet's (119-dim input, hidden 64, ~250
//! samples/job, default batch 32) with the epoch count cut to keep
//! criterion iterations tractable; the `repro train-batched` experiment
//! runs the same sweep at the full epoch count.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::PersonalizationConfig;
use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, SequenceModel, TrainConfig};
use pelican_train::{cohort_jobs, form_cohorts, FleetTrainer, PipelineConfig, TrainJob};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fleet_train_batched(c: &mut Criterion) {
    let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Small), 42)
        .build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(42);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 64, dataset.n_locations(), 0.1, &mut rng);
    // 8 jobs so the cohort-8 row is one full cohort (fill 100%); ragged
    // fill is the repro experiment's territory.
    let n = dataset.users.len();
    let jobs = cohort_jobs(&dataset, n.saturating_sub(8)..n, 0.8);

    let trainer = FleetTrainer::new(PipelineConfig {
        workers: 1,
        base_seed: 42,
        personalization: PersonalizationConfig {
            train: TrainConfig { epochs: 4, ..TrainConfig::default() },
            hidden_dim: 64,
            ..PersonalizationConfig::default()
        },
        ..PipelineConfig::default()
    });
    let envelope = ModelEnvelope::encode(&general);

    // The whole point: cohort size must not change a single trained bit.
    let trained = |cohort: usize| -> Vec<Vec<u8>> {
        let mut out = Vec::with_capacity(jobs.len());
        if cohort == 0 {
            for job in &jobs {
                let (model, _) = trainer.train_candidate(&envelope, job);
                out.push(ModelEnvelope::encode(&model).as_bytes().to_vec());
            }
        } else {
            for range in form_cohorts(&jobs, cohort, |_: &TrainJob| 0) {
                for (model, _, _) in trainer.train_candidates_lockstep(&envelope, &jobs[range]) {
                    out.push(ModelEnvelope::encode(&model).as_bytes().to_vec());
                }
            }
        }
        out
    };
    let reference = trained(0);
    for cohort in [2usize, 8] {
        assert_eq!(reference, trained(cohort), "cohort size changed trained weights");
    }

    let mut group = c.benchmark_group("fleet_train_batched");
    group.sample_size(10);
    group.bench_function("cohort/seq", |b| {
        b.iter(|| {
            for job in &jobs {
                std::hint::black_box(trainer.train_candidate(&envelope, job));
            }
        })
    });
    for cohort in [2usize, 4, 8] {
        group.bench_function(format!("cohort/{cohort}"), |b| {
            b.iter(|| {
                for range in form_cohorts(&jobs, cohort, |_: &TrainJob| 0) {
                    std::hint::black_box(
                        trainer.train_candidates_lockstep(&envelope, &jobs[range]),
                    );
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_train_batched);
criterion_main!(benches);

//! Criterion bench behind the fleet-serving subsystem: fused batched
//! inference vs. one-query-at-a-time serving for the same model.
//!
//! The batched path answers B same-model queries with two matrix–matrix
//! products per timestep (weights stream through memory once per batch)
//! instead of 2·B matrix–vector products, and skips the per-step
//! activation-cache allocations of the scalar path — while returning
//! bit-identical probabilities. The gap should open from batch ≈ 8 and
//! widen with batch size and hidden width.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::workbench::{Scenario, ScenarioSizing};
use pelican_mobility::{Scale, SpatialLevel};
use pelican_nn::Sequence;

fn bench_fleet_serving(c: &mut Criterion) {
    // A wider LSTM than the Tiny default so the weight matrices outgrow
    // L1 and the batch path's cache reuse is visible.
    let scenario = Scenario::builder(Scale::Tiny, SpatialLevel::Building)
        .seed(42)
        .personal_users(1)
        .sizing(ScenarioSizing { hidden_dim: 64, general_epochs: 2, personal_epochs: 2 })
        .build();
    let user = &scenario.personal[0];
    let model = user.model.clone();
    let queries: Vec<Sequence> =
        (0..32).map(|i| user.test[i % user.test.len()].xs.clone()).collect();

    // The whole point: fused batches must not change a single bit.
    for (q, fused) in queries.iter().zip(model.predict_proba_batch(&queries)) {
        assert_eq!(model.predict_proba(q), fused, "batched serving must be bit-identical");
    }

    let mut group = c.benchmark_group("fleet_serving");
    for batch in [1usize, 8, 32] {
        let slice = &queries[..batch];
        group.bench_function(format!("unbatched/b{batch}"), |b| {
            b.iter(|| {
                for q in slice {
                    std::hint::black_box(model.predict_proba(std::hint::black_box(q)));
                }
            })
        });
        group.bench_function(format!("batched/b{batch}"), |b| {
            b.iter(|| std::hint::black_box(model.predict_proba_batch(std::hint::black_box(slice))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_serving);
criterion_main!(benches);

//! Criterion bench for the durable model store's hot paths.
//!
//! The log sits on the fleet's publication path — every audited model
//! crosses `EnvelopeStore::append` before it may serve — and recovery
//! replay bounds restart time, so both get host-time numbers:
//!
//! * `append/*` — one envelope publication through the write-ahead
//!   commit path, compression off and on (LZSS pays CPU to shrink the
//!   log; the ratio is reported by `repro store-report`).
//! * `replay/*` — `EnvelopeStore::open` over a prebuilt log: the full
//!   committed-prefix scan, CRC checks and index build.
//! * `fetch_latest` — the read-through path a registry cold miss takes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use pelican_nn::ModelEnvelope;
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};

/// A model-shaped payload: structured regions (compressible) plus a
/// varying stripe so versions differ.
fn envelope(version: u64, bytes: usize) -> ModelEnvelope {
    let body: Vec<u8> = (0..bytes)
        .map(|i| if i % 4 == 0 { (i as u64 * 31 + version * 131) as u8 } else { (i % 256) as u8 })
        .collect();
    ModelEnvelope::from_bytes(body)
}

/// A log with `users * versions` committed publications.
fn build_log(users: u64, versions: u64, bytes: usize, compress: bool) -> MemBackend {
    let disk = MemBackend::new();
    let store = EnvelopeStore::open(
        Arc::new(disk.clone()),
        StoreConfig { shards: 4, compress, ..StoreConfig::default() },
    )
    .expect("fresh backend opens");
    let mut version = 0;
    for v in 0..versions {
        for user in 0..users {
            version += 1;
            store.append(user, version, &envelope(v, bytes)).expect("append");
        }
    }
    disk
}

fn bench_store_log(c: &mut Criterion) {
    const PAYLOAD: usize = 8 * 1024;

    let mut group = c.benchmark_group("store_log");
    for compress in [false, true] {
        let label = if compress { "lzss" } else { "raw" };

        group.bench_function(format!("append/{label}"), |b| {
            let store = EnvelopeStore::open(
                Arc::new(MemBackend::new()),
                StoreConfig { shards: 4, compress, ..StoreConfig::default() },
            )
            .expect("open");
            let payload = envelope(1, PAYLOAD);
            let mut version = 0u64;
            b.iter(|| {
                version += 1;
                store.append(version % 16, version, &payload).expect("append")
            });
        });

        group.bench_function(format!("replay/{label}"), |b| {
            let disk = build_log(16, 8, PAYLOAD, compress);
            let config = StoreConfig { shards: 4, compress, ..StoreConfig::default() };
            b.iter(|| {
                let store = EnvelopeStore::open(Arc::new(disk.clone()), config).expect("replay");
                assert_eq!(store.recovery().torn_segments, 0);
                store.max_version()
            });
        });
    }

    group.bench_function("fetch_latest", |b| {
        let disk = build_log(16, 8, PAYLOAD, false);
        let store = EnvelopeStore::open(
            Arc::new(disk),
            StoreConfig { shards: 4, ..StoreConfig::default() },
        )
        .expect("open");
        let mut user = 0u64;
        b.iter(|| {
            user = (user + 1) % 16;
            store.fetch_latest(user).expect("fetch").expect("published")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_store_log);
criterion_main!(benches);

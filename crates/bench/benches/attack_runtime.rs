//! Criterion bench behind Table II: per-instance cost of each attack
//! method against the same personalized model.
//!
//! The paper reports 82.18 h (brute force), 6.27 h (gradient descent) and
//! 0.68 h (time-based) for 100 users; the machine-independent claim is the
//! ~120× gap between brute force and the time-based enumeration, which this
//! bench reproduces per instance.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::workbench::Scenario;
use pelican_attacks::{
    interest_locations, Adversary, AttackMethod, BruteForce, GradientDescent, PriorKind, TimeBased,
};
use pelican_mobility::{Scale, SpatialLevel};

fn bench_attacks(c: &mut Criterion) {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(1).build();
    let user = &scenario.personal[0];
    let prior = scenario.prior(user, PriorKind::True);
    let probes = pelican_attacks::prior::random_probes(&scenario.dataset.space, 24, 1);
    let interest = interest_locations(&user.model, &probes, 0.01);
    let instance = scenario.attack_instances(user, Adversary::A1, 1)[0].clone();

    let mut group = c.benchmark_group("attack_per_instance");
    group.sample_size(10);

    let cases = [
        ("time_based", AttackMethod::TimeBased(TimeBased::default())),
        ("gradient_descent", AttackMethod::GradientDescent(GradientDescent::default())),
        ("brute_force", AttackMethod::BruteForce(BruteForce::default())),
    ];
    for (name, method) in cases {
        let mut model = user.model.clone();
        group.bench_function(name, |b| {
            b.iter(|| {
                method.run(
                    &mut model,
                    &scenario.dataset.space,
                    &prior,
                    &interest,
                    std::hint::black_box(&instance),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);

//! Criterion bench for the reactive engine's two big consumers: the
//! closed-loop training co-simulation and the sim-driven serving
//! scheduler.
//!
//! Both sit inside experiment loops (`cosim-report` sweeps them per
//! configuration), so their host cost matters independently of the
//! training they model. Rounds are synthetic — deterministic per-device
//! durations and upload sizes — so the bench times the event engine and
//! the scheduler workload, not LSTM training. Determinism is asserted
//! before timing starts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::DefenseKind;
use pelican_nn::{FitReport, SequenceModel};
use pelican_serve::{
    simulate_serving, RegistryConfig, Request, SchedulerConfig, ShardedRegistry, SimServeConfig,
};
use pelican_sim::{LinkMix, RetryPolicy, StragglerConfig, TransferPolicy};
use pelican_train::{
    cosimulate_fleet, GateOutcome, GateVerdict, JobOutcome, LoopMode, NetworkConfig, TrainReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic training round over `n` devices.
fn synthetic_round(n: usize, salt: u64) -> TrainReport {
    let outcomes: Vec<JobOutcome> = (0..n)
        .map(|i| JobOutcome {
            user_id: 100 + i,
            version: i as u64 + 1,
            warm: salt > 0,
            gate: GateOutcome {
                verdict: GateVerdict::Passed,
                defense: DefenseKind::None,
                rungs_climbed: 0,
                initial_leakage: 0.1,
                final_leakage: 0.1,
                audits: 1,
                queries: 10,
                cached: 0,
                cache_misses: 10,
            },
            fit: FitReport { epoch_losses: vec![0.5], steps: 4, samples_per_epoch: 4 },
            enroll_latency: Duration::from_millis(5),
            train_simulated: Duration::from_millis(4 + (i as u64 + salt) % 7),
            audit_simulated: Duration::from_millis(2),
            envelope_bytes: 60_000 + (i % 5) * 1_000,
        })
        .collect();
    TrainReport::new(2, outcomes, Duration::from_millis(40), 1_000)
}

/// A retrying, straggling network that exercises timeouts and backoff.
fn network() -> NetworkConfig {
    NetworkConfig {
        mix: LinkMix::campus().with_stragglers(StragglerConfig { fraction: 0.2, slowdown: 8.0 }),
        download: TransferPolicy {
            timeout_us: Some(400_000),
            retry: RetryPolicy::exponential(3, 50_000, 2.0),
        },
        seed: 0xC051,
        ..NetworkConfig::default()
    }
}

fn bench_fleet_cosim(c: &mut Criterion) {
    // Determinism gate before timing.
    let fresh = synthetic_round(64, 0);
    let warm = synthetic_round(64, 1);
    let rounds = [&fresh, &warm];
    let a = cosimulate_fleet(&rounds, 80_000, &network(), LoopMode::Closed);
    let b = cosimulate_fleet(&rounds, 80_000, &network(), LoopMode::Closed);
    assert_eq!(a.fingerprint(), b.fingerprint());

    let mut group = c.benchmark_group("fleet_cosim");
    for devices in [64usize, 256] {
        let fresh = synthetic_round(devices, 0);
        let warm = synthetic_round(devices, 1);
        let config = network();
        group.bench_function(format!("closed-loop/{devices}"), |b| {
            b.iter(|| cosimulate_fleet(&[&fresh, &warm], 80_000, &config, LoopMode::Closed))
        });
        group.bench_function(format!("open-loop/{devices}"), |b| {
            b.iter(|| cosimulate_fleet(&[&fresh, &warm], 80_000, &config, LoopMode::Open))
        });
    }
    group.finish();

    // The sim-driven scheduler over a synthetic registry: the cost of
    // running batching on the virtual clock, fused kernels included.
    let mut rng = StdRng::seed_from_u64(7);
    let general = SequenceModel::single_lstm(6, 8, 4, 0.0, &mut rng);
    let registry = ShardedRegistry::new(general, RegistryConfig { shards: 4, hot_capacity: 8 });
    for uid in 0..16 {
        let personalized = SequenceModel::single_lstm(6, 8, 4, 0.0, &mut rng);
        registry.enroll(uid, &personalized);
    }
    let requests: Vec<Request> = (0..512)
        .map(|i| Request {
            id: i,
            user_id: i % 16,
            arrival_us: (i as u64) * 230,
            xs: vec![vec![0.1; 6]; 3],
        })
        .collect();
    let config = SimServeConfig {
        scheduler: SchedulerConfig { max_batch: 8, max_delay_us: 1_500 },
        tier: pelican::platform::ComputeTier::Cloud,
        network: None,
    };
    let mut group = c.benchmark_group("sim_serve");
    group.bench_function("no-network/512", |b| {
        b.iter(|| simulate_serving(&registry, &requests, &config).expect("envelopes decode"))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_cosim);
criterion_main!(benches);

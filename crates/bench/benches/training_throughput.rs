//! Criterion bench behind the §V-C2 overhead table: throughput of
//! cloud-style general training vs the on-device personalization methods.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::{personalize, PersonalizationConfig, PersonalizationMethod};
use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
use pelican_nn::{fit, SequenceModel, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_training(c: &mut Criterion) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 42).build(SpatialLevel::Building);
    let contributor_samples = dataset.pooled_samples(0..4);
    let user_samples = dataset.user_samples(5);
    let dim = dataset.space.dim();
    let classes = dataset.n_locations();

    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    let one_epoch = TrainConfig { epochs: 1, batch_size: 32, ..TrainConfig::default() };
    group.bench_function("general_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut model = SequenceModel::general_lstm(dim, 24, classes, 0.1, &mut rng);
            fit(&mut model, &contributor_samples, &one_epoch)
        })
    });

    let mut rng = StdRng::seed_from_u64(1);
    let general = SequenceModel::general_lstm(dim, 24, classes, 0.1, &mut rng);
    let config = PersonalizationConfig {
        train: TrainConfig { epochs: 2, batch_size: 16, ..TrainConfig::default() },
        hidden_dim: 24,
        dropout: 0.1,
        seed: 7,
    };
    for method in [
        PersonalizationMethod::TlFeatureExtract,
        PersonalizationMethod::TlFineTune,
        PersonalizationMethod::Lstm,
    ] {
        group.bench_function(format!("personalize_{}", method.name().replace(' ', "_")), |b| {
            b.iter(|| personalize(&general, &user_samples, method, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);

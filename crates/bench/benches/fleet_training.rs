//! Criterion bench behind the fleet-training subsystem: personalization
//! throughput (models/s) vs. trainer-pool width.
//!
//! Per-user personalization jobs are independent, so throughput should
//! scale with workers until the machine runs out of cores — the
//! acceptance bar is ≥ 2× single-worker throughput at 4 workers on a
//! ≥ 4-core host (a single-core box will honestly show ~1×). Every width
//! publishes bit-identical weights (asserted before timing starts), so
//! the pool width is purely a throughput knob.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::PersonalizationConfig;
use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
use pelican_nn::{ModelEnvelope, SequenceModel, TrainConfig};
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_train::{cohort_jobs, AuditConfig, FleetTrainer, PipelineConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fleet_training(c: &mut Criterion) {
    let dataset =
        DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 42).build(SpatialLevel::Building);
    let mut rng = StdRng::seed_from_u64(42);
    let general =
        SequenceModel::general_lstm(dataset.space.dim(), 24, dataset.n_locations(), 0.1, &mut rng);
    let n = dataset.users.len();
    let jobs = cohort_jobs(&dataset, n.saturating_sub(8)..n, 0.8);

    let pipeline = |workers: usize| {
        FleetTrainer::new(PipelineConfig {
            workers,
            base_seed: 42,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 4, ..TrainConfig::default() },
                hidden_dim: 24,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
            ..PipelineConfig::default()
        })
    };

    // The whole point: pool width must not change a single published bit.
    let published = |workers: usize| -> Vec<Vec<u8>> {
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        pipeline(workers).run(&general, &dataset.space, &jobs, &registry);
        jobs.iter()
            .map(|job| {
                let (model, _) = registry.get(job.user_id).expect("published model decodes");
                ModelEnvelope::encode(&model).as_bytes().to_vec()
            })
            .collect()
    };
    let reference = published(1);
    for workers in [2usize, 4] {
        assert_eq!(reference, published(workers), "pool width changed published weights");
    }

    let mut group = c.benchmark_group("fleet_training");
    for workers in [1usize, 2, 4, 8] {
        let trainer = pipeline(workers);
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter(|| {
                let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
                let report = trainer.run(&general, &dataset.space, &jobs, &registry);
                std::hint::black_box(report.outcomes.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_training);
criterion_main!(benches);

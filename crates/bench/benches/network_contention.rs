//! Criterion bench behind the `pelican-sim` engine: host cost of
//! simulating a contended fleet.
//!
//! The simulator sits inside every network-aware experiment loop, so its
//! own throughput matters: a link-mix sweep re-simulates the same cohort
//! many times. Scenarios cover the two sharing disciplines on one shared
//! uplink plus the uncontended per-device layout, at fleet sizes big
//! enough for the event queue (not setup) to dominate. Determinism is
//! asserted before timing starts: identical inputs must produce
//! bit-identical traces.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican_sim::{
    Discipline, JobSpec, LinkMix, LinkSpec, Passive, Simulator, Stage, StragglerConfig,
    TransferPolicy,
};

/// A download → train → upload fleet over `devices` devices. Uploads all
/// target link 0; device links follow.
fn fleet(devices: usize, shared_uplink: bool) -> (Simulator, Vec<JobSpec>) {
    let mix = LinkMix::campus().with_stragglers(StragglerConfig { fraction: 0.1, slowdown: 8.0 });
    let mut links = vec![LinkSpec {
        profile: pelican_sim::LinkProfile::wan(),
        discipline: Discipline::FairShare,
    }];
    links.extend((0..devices).map(|d| LinkSpec::fifo(mix.assign(17, d as u64).profile)));
    let specs = (0..devices)
        .map(|d| JobSpec {
            id: d as u64,
            release_us: 0,
            stages: vec![
                Stage::Transfer {
                    label: "download",
                    link: 1 + d,
                    bytes: 200_000,
                    policy: TransferPolicy::default(),
                },
                Stage::Compute { label: "train", duration_us: 5_000 + (d as u64 % 7) * 1_000 },
                Stage::Transfer {
                    label: "upload",
                    link: if shared_uplink { 0 } else { 1 + d },
                    bytes: 60_000,
                    policy: TransferPolicy::default(),
                },
            ],
        })
        .collect();
    (Simulator::builder().links(links).build(), specs)
}

fn bench_network_contention(c: &mut Criterion) {
    // Determinism gate: the engine must replay bit-identically before we
    // bother timing it.
    let (sim, specs) = fleet(64, true);
    assert_eq!(sim.run(&specs, &mut Passive).trace, sim.run(&specs, &mut Passive).trace);

    let mut group = c.benchmark_group("network_contention");
    for devices in [64usize, 256] {
        let (shared, shared_specs) = fleet(devices, true);
        group.bench_function(format!("shared-uplink/{devices}"), |b| {
            b.iter(|| std::hint::black_box(shared.run(&shared_specs, &mut Passive).job_count()))
        });
        let (dedicated, dedicated_specs) = fleet(devices, false);
        group.bench_function(format!("per-device/{devices}"), |b| {
            b.iter(|| {
                std::hint::black_box(dedicated.run(&dedicated_specs, &mut Passive).job_count())
            })
        });
    }
    // Discipline comparison at fixed size: fair-share pays extra
    // recheck events per membership change.
    for discipline in [Discipline::Fifo, Discipline::FairShare] {
        let flat: Vec<JobSpec> = (0..128)
            .map(|d| JobSpec {
                id: d,
                release_us: d * 200,
                stages: vec![Stage::Transfer {
                    label: "upload",
                    link: 0,
                    bytes: 60_000,
                    policy: TransferPolicy::default(),
                }],
            })
            .collect();
        let sim = Simulator::builder()
            .link(LinkSpec { profile: pelican_sim::LinkProfile::wan(), discipline })
            .build();
        group.bench_function(format!("{discipline:?}/128-uploads"), |b| {
            b.iter(|| std::hint::black_box(sim.run(&flat, &mut Passive).timed_out()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_network_contention);
criterion_main!(benches);

//! Criterion bench behind Fig. 5b's ablation: the privacy layer's
//! inference cost (none — it is a scalar divide before softmax) and its
//! effect on the attack's search space.

use criterion::{criterion_group, criterion_main, Criterion};

use pelican::workbench::Scenario;
use pelican::PrivacyLayer;
use pelican_attacks::interest_locations;
use pelican_mobility::{Scale, SpatialLevel};

fn bench_privacy(c: &mut Criterion) {
    let scenario =
        Scenario::builder(Scale::Tiny, SpatialLevel::Building).seed(42).personal_users(1).build();
    let user = &scenario.personal[0];
    let xs = user.test[0].xs.clone();

    let mut group = c.benchmark_group("privacy_layer");

    let plain = user.model.clone();
    group.bench_function("predict_no_defense", |b| {
        b.iter(|| plain.predict_proba(std::hint::black_box(&xs)))
    });

    let mut defended = user.model.clone();
    PrivacyLayer::default().apply(&mut defended);
    group.bench_function("predict_with_defense", |b| {
        b.iter(|| defended.predict_proba(std::hint::black_box(&xs)))
    });

    let probes = pelican_attacks::prior::random_probes(&scenario.dataset.space, 24, 1);
    group.bench_function("interest_set_no_defense", |b| {
        b.iter(|| interest_locations(&plain, std::hint::black_box(&probes), 0.01))
    });
    group.bench_function("interest_set_with_defense", |b| {
        b.iter(|| interest_locations(&defended, std::hint::black_box(&probes), 0.01))
    });
    group.finish();
}

criterion_group!(benches, bench_privacy);
criterion_main!(benches);

//! The three inversion-attack methods (§III-B2, Fig. 2a, Table II).

use serde::{Deserialize, Serialize};

use pelican_mobility::{entry_slot, FeatureSpace, DURATION_BINS, ENTRY_SLOTS, MINUTES_PER_DAY};
use pelican_nn::{Sequence, SequenceModel, Step};
use pelican_tensor::softmax_temperature_in_place;

use crate::adversary::Instance;
use crate::oracle::BlackBox;
use crate::prior::Prior;

/// Scores assigned by an attack to every location class, ranked descending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ranking {
    scores: Vec<(usize, f64)>,
}

impl Ranking {
    /// Builds a ranking from per-location scores.
    pub fn from_scores(scores: Vec<f64>) -> Self {
        let mut pairs: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        Self { scores: pairs }
    }

    /// The `k` best locations, descending by score.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        self.scores.iter().take(k).map(|&(l, _)| l).collect()
    }

    /// Whether `location` is among the `k` best candidates.
    pub fn hit(&self, location: usize, k: usize) -> bool {
        self.scores.iter().take(k).any(|&(l, _)| l == location)
    }

    /// The full ranked `(location, score)` list.
    pub fn as_slice(&self) -> &[(usize, f64)] {
        &self.scores
    }
}

/// Identifies the model's *locations of interest* by black-box probing:
/// query the model on `probes` and keep every location whose confidence
/// reaches `threshold` (the paper uses 1%) on some probe.
///
/// This is the search-space reduction of §III-B2 — the personalized model's
/// domain is equalized to the whole campus, but only locations the model
/// actually assigns mass to are worth enumerating. Note how the privacy
/// layer defeats it: with sharpened confidences nearly every location falls
/// below the threshold and the set collapses to the argmaxes alone.
pub fn interest_locations(
    model: &SequenceModel,
    probes: &[Sequence],
    threshold: f32,
) -> Vec<usize> {
    /// Read-only adapter: probing needs no gradients.
    struct Frozen<'a>(&'a SequenceModel);
    impl BlackBox for Frozen<'_> {
        fn output_dim(&self) -> usize {
            self.0.output_dim()
        }
        fn predict_proba(&mut self, xs: &[Step]) -> Step {
            self.0.predict_proba(xs)
        }
        fn input_gradient(&mut self, _xs: &Sequence, _target: usize) -> (f32, Sequence) {
            unreachable!("interest probing is black-box only")
        }
    }
    interest_locations_in(&mut Frozen(model), probes, threshold)
}

/// [`interest_locations`] against any [`BlackBox`] oracle — e.g. a
/// logit-cached model, so an audit gate re-probing the same weights under
/// an escalated defense pays zero forward passes.
pub fn interest_locations_in<M: BlackBox>(
    model: &mut M,
    probes: &[Sequence],
    threshold: f32,
) -> Vec<usize> {
    let n = model.output_dim();
    let mut keep = vec![false; n];
    for xs in probes {
        for (l, &p) in model.predict_proba(xs).iter().enumerate() {
            if p >= threshold {
                keep[l] = true;
            }
        }
    }
    (0..n).filter(|&l| keep[l]).collect()
}

/// Common interface of the three attack methods.
///
/// `run` returns the location ranking for the hidden step plus the number
/// of model queries spent (the cost axis of Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttackMethod {
    /// Exhaustive enumeration.
    BruteForce(BruteForce),
    /// Continuity-exploiting smart enumeration.
    TimeBased(TimeBased),
    /// Input reconstruction by gradient descent.
    GradientDescent(GradientDescent),
}

impl AttackMethod {
    /// Runs the attack on one instance against any query oracle (a plain
    /// [`SequenceModel`] or e.g. a [`crate::CachedBlackBox`]).
    pub fn run<M: BlackBox>(
        &self,
        model: &mut M,
        space: &FeatureSpace,
        prior: &Prior,
        interest: &[usize],
        instance: &Instance,
    ) -> (Ranking, u64) {
        match self {
            AttackMethod::BruteForce(m) => m.run(model, space, prior, instance),
            AttackMethod::TimeBased(m) => m.run(model, space, prior, interest, instance),
            AttackMethod::GradientDescent(m) => m.run(model, space, prior, instance),
        }
    }

    /// Short name for reports (`brute force`, `time-based`, …).
    pub fn name(&self) -> &'static str {
        match self {
            AttackMethod::BruteForce(_) => "brute force",
            AttackMethod::TimeBased(_) => "time-based",
            AttackMethod::GradientDescent(_) => "gradient descent",
        }
    }
}

/// Assembles the two-step model input for a candidate value of the hidden
/// step. Known steps are encoded from their sessions; a hidden non-target
/// step (adversary A3) is filled with the *expected-context relaxation*:
/// the prior over locations and uniform time blocks — a dense vector the
/// LSTM consumes like any other.
fn assemble(
    space: &FeatureSpace,
    prior: &Prior,
    instance: &Instance,
    candidate: &Step,
) -> Sequence {
    let target = instance.target_step();
    (0..2)
        .map(|step| {
            if step == target {
                candidate.clone()
            } else if let Some(s) = &instance.known[step] {
                space.encode_session(s)
            } else {
                expected_context(space, prior, instance.day_of_week)
            }
        })
        .collect()
}

/// The soft "average" step used for steps the adversary neither knows nor
/// reconstructs.
fn expected_context(space: &FeatureSpace, prior: &Prior, dow: usize) -> Step {
    let mut x = vec![0.0f32; space.dim()];
    for (l, slot) in x.iter_mut().enumerate().take(space.n_locations) {
        *slot = prior.prob(l) as f32;
    }
    for slot in 0..ENTRY_SLOTS {
        x[space.entry_offset() + slot] = 1.0 / ENTRY_SLOTS as f32;
    }
    for b in 0..DURATION_BINS {
        x[space.duration_offset() + b] = 1.0 / DURATION_BINS as f32;
    }
    x[space.dow_offset() + dow] = 1.0;
    x
}

/// Initial all-zero score vector. Enumeration raises `score[l]` to
/// `max_{e,d} confidence(l_t | l, e, d) · p(l)`; locations the attack never
/// enumerates (outside the interest set) keep score 0 and rank last in
/// index order, exactly like the paper's enumerate-and-argmax attack.
/// Under the privacy layer this is what collapses the attack: confidences
/// degenerate to 0/1, every consistent candidate ties at its prior mass,
/// and locations outside the shrunken interest set are never even scored.
fn zero_scores(prior: &Prior) -> Vec<f64> {
    vec![0.0; prior.len()]
}

/// Exhaustive enumeration over the hidden step's full feature domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BruteForce {
    /// Optional cap on locations enumerated (cost control at AP scale);
    /// `None` enumerates everything.
    pub max_locations: Option<usize>,
}

impl BruteForce {
    fn run<M: BlackBox>(
        &self,
        model: &mut M,
        space: &FeatureSpace,
        prior: &Prior,
        instance: &Instance,
    ) -> (Ranking, u64) {
        let mut scores = zero_scores(prior);
        let mut queries = 0u64;
        let n = self.max_locations.map_or(space.n_locations, |m| m.min(space.n_locations));
        for (l, best) in scores.iter_mut().enumerate().take(n) {
            let p_l = prior.prob(l);
            for e in 0..ENTRY_SLOTS {
                for d in 0..DURATION_BINS {
                    let candidate = space.encode(l, e, d, instance.day_of_week);
                    let xs = assemble(space, prior, instance, &candidate);
                    let conf = model.predict_proba(&xs)[instance.observed_output] as f64;
                    queries += 1;
                    let score = conf * p_l;
                    if score > *best {
                        *best = score;
                    }
                }
            }
        }
        (Ranking::from_scores(scores), queries)
    }
}

/// The paper's time-based smart enumeration.
///
/// Exploits session continuity: for A1 the hidden step's entry time is
/// (approximately) the known previous session's end; for A2 it is the known
/// next session's entry minus the candidate duration. Only `(location,
/// duration)` remain to enumerate, and locations are restricted to the
/// model's locations of interest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBased {
    /// Entry-slot stride used when *no* timestep is known (A3); 4 checks
    /// every other hour.
    pub a3_slot_stride: usize,
}

impl Default for TimeBased {
    fn default() -> Self {
        Self { a3_slot_stride: 4 }
    }
}

impl TimeBased {
    fn run<M: BlackBox>(
        &self,
        model: &mut M,
        space: &FeatureSpace,
        prior: &Prior,
        interest: &[usize],
        instance: &Instance,
    ) -> (Ranking, u64) {
        let mut scores = zero_scores(prior);
        let mut queries = 0u64;
        let entry_slots = self.candidate_entry_slots(instance);
        for &l in interest {
            let p_l = prior.prob(l);
            for (d, slots) in entry_slots.iter().enumerate() {
                for &e in slots {
                    let candidate = space.encode(l, e, d, instance.day_of_week);
                    let xs = assemble(space, prior, instance, &candidate);
                    let conf = model.predict_proba(&xs)[instance.observed_output] as f64;
                    queries += 1;
                    let score = conf * p_l;
                    if score > scores[l] {
                        scores[l] = score;
                    }
                }
            }
        }
        (Ranking::from_scores(scores), queries)
    }

    /// For each candidate duration bin, the entry slots consistent with the
    /// continuity constraint (usually exactly one).
    fn candidate_entry_slots(&self, instance: &Instance) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); DURATION_BINS];
        match (instance.target_step(), &instance.known) {
            // A1: hidden x_{t−1} follows known x_{t−2}:
            // e_{t−1} ≈ e_{t−2} + d_{t−2}, independent of candidate duration.
            (1, [Some(prev), _]) => {
                let e = (prev.entry_minutes + prev.duration_minutes).min(MINUTES_PER_DAY - 1);
                let slot = entry_slot(e);
                for slots in &mut out {
                    slots.push(slot);
                }
            }
            // A2: hidden x_{t−2} precedes known x_{t−1}:
            // e_{t−2} ≈ e_{t−1} − d_{t−2}, which depends on the candidate
            // duration bin (use its midpoint).
            (0, [_, Some(next)]) => {
                for (d, slots) in out.iter_mut().enumerate() {
                    let midpoint = d as u32 * 10 + 5;
                    let e = next.entry_minutes.saturating_sub(midpoint);
                    slots.push(entry_slot(e));
                }
            }
            // A3: nothing known; scan a stride of slots.
            _ => {
                let stride = self.a3_slot_stride.max(1);
                for slots in &mut out {
                    for e in (0..ENTRY_SLOTS).step_by(stride) {
                        slots.push(e);
                    }
                }
            }
        }
        out
    }
}

/// Gradient-descent input reconstruction with temperature-softened block
/// projections (§III-B2).
///
/// Maintains unconstrained logits for the hidden step, repeatedly descends
/// the model's input gradient toward maximizing the observed output's
/// confidence, and after every step re-projects each one-hot block through
/// `softmax(z / temperature)` so the candidate stays a (soft) discrete
/// encoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientDescent {
    /// Number of descent iterations.
    pub iterations: usize,
    /// Step size on the logits.
    pub lr: f32,
    /// Projection temperature (paper's Eq. 1), < 1 sharpens.
    pub temperature: f32,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self { iterations: 60, lr: 2.0, temperature: 0.5 }
    }
}

impl GradientDescent {
    fn run<M: BlackBox>(
        &self,
        model: &mut M,
        space: &FeatureSpace,
        prior: &Prior,
        instance: &Instance,
    ) -> (Ranking, u64) {
        let dim = space.dim();
        let target_step = instance.target_step();
        // Optimization variable: logits of the hidden step, zero-initialized
        // (uniform after projection).
        let mut z = vec![0.0f32; dim];
        let mut queries = 0u64;
        for _ in 0..self.iterations {
            let candidate = self.project(space, &z, instance.day_of_week);
            let xs = assemble(space, prior, instance, &candidate);
            let (_, grads) = model.input_gradient(&xs, instance.observed_output);
            queries += 1;
            for (zv, g) in z.iter_mut().zip(&grads[target_step]) {
                *zv -= self.lr * g;
            }
        }
        // Rank by the reconstructed location block alone. The paper's
        // gradient-descent attack reads the hidden location off the
        // reconstructed input; on large discrete domains the
        // reconstruction is poor, which is exactly why Fig. 2a shows this
        // method far below the enumeration attacks.
        let final_candidate = self.project(space, &z, instance.day_of_week);
        let scores: Vec<f64> = (0..space.n_locations).map(|l| final_candidate[l] as f64).collect();
        let _ = prior; // the GD attack uses the prior only for A3's expected context
        (Ranking::from_scores(scores), queries)
    }

    /// Projects raw logits to a soft one-hot encoding blockwise.
    fn project(&self, space: &FeatureSpace, z: &[f32], dow: usize) -> Step {
        let mut x = z.to_vec();
        softmax_temperature_in_place(&mut x[..space.n_locations], self.temperature);
        let (e0, d0, w0) = (space.entry_offset(), space.duration_offset(), space.dow_offset());
        softmax_temperature_in_place(&mut x[e0..d0], self.temperature);
        softmax_temperature_in_place(&mut x[d0..w0], self.temperature);
        // Day of week is public context; pin it hard.
        for (i, v) in x[w0..].iter_mut().enumerate() {
            *v = if i == dow { 1.0 } else { 0.0 };
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Adversary;
    use pelican_mobility::{Session, SpatialLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SequenceModel, FeatureSpace, Prior, [Session; 3]) {
        let space = FeatureSpace::new(SpatialLevel::Building, 8);
        let mut rng = StdRng::seed_from_u64(33);
        let model = SequenceModel::general_lstm(space.dim(), 12, 8, 0.0, &mut rng);
        let prior = Prior::uniform(8);
        let mk = |b: usize, e: u32| Session {
            user: 0,
            building: b,
            ap: b,
            day: 2,
            entry_minutes: e,
            duration_minutes: 55,
        };
        (model, space, prior, [mk(1, 540), mk(4, 600), mk(6, 660)])
    }

    #[test]
    fn rankings_order_by_score() {
        let r = Ranking::from_scores(vec![0.1, 0.9, 0.5]);
        assert_eq!(r.top_k(3), vec![1, 2, 0]);
        assert!(r.hit(1, 1));
        assert!(!r.hit(0, 2));
    }

    #[test]
    fn interest_locations_filters_by_confidence() {
        let (model, space, prior, _) = setup();
        let probes = crate::prior::random_probes(&space, 8, 5);
        let all = interest_locations(&model, &probes, 0.0);
        assert_eq!(all.len(), 8, "zero threshold keeps everything");
        let some = interest_locations(&model, &probes, 0.01);
        assert!(!some.is_empty(), "argmax always clears 1%");
        assert!(some.len() <= all.len());
        let _ = prior;
    }

    #[test]
    fn brute_force_covers_the_domain() {
        let (mut model, space, prior, triple) = setup();
        let inst = Adversary::A1.instance(&triple, space.location_of(&triple[2]));
        let (ranking, queries) = AttackMethod::BruteForce(BruteForce::default()).run(
            &mut model,
            &space,
            &prior,
            &[],
            &inst,
        );
        assert_eq!(queries, 8 * ENTRY_SLOTS as u64 * DURATION_BINS as u64);
        assert_eq!(ranking.top_k(8).len(), 8);
    }

    #[test]
    fn time_based_is_cheaper_than_brute_force() {
        let (mut model, space, prior, triple) = setup();
        let inst = Adversary::A1.instance(&triple, space.location_of(&triple[2]));
        let interest: Vec<usize> = (0..8).collect();
        let (_, tq) = AttackMethod::TimeBased(TimeBased::default())
            .run(&mut model, &space, &prior, &interest, &inst);
        let (_, bq) = AttackMethod::BruteForce(BruteForce::default()).run(
            &mut model,
            &space,
            &prior,
            &[],
            &inst,
        );
        assert!(tq * 10 < bq, "time-based ({tq}) should be ≫ cheaper than brute ({bq})");
    }

    #[test]
    fn a1_continuity_pins_the_entry_slot() {
        let (_, space, _, triple) = setup();
        let inst = Adversary::A1.instance(&triple, space.location_of(&triple[2]));
        let tb = TimeBased::default();
        let slots = tb.candidate_entry_slots(&inst);
        // e_{t-1} = 540 + 55 = 595 → slot 19, same for every duration bin.
        for s in &slots {
            assert_eq!(s, &vec![entry_slot(595)]);
        }
    }

    #[test]
    fn a2_continuity_depends_on_duration() {
        let (_, space, _, triple) = setup();
        let inst = Adversary::A2.instance(&triple, space.location_of(&triple[2]));
        let tb = TimeBased::default();
        let slots = tb.candidate_entry_slots(&inst);
        // e_{t-2} = 600 − (10d+5): early bins → later slots.
        assert_eq!(slots[0], vec![entry_slot(595)]);
        assert_eq!(slots[DURATION_BINS - 1], vec![entry_slot(600 - 235)]);
    }

    #[test]
    fn a3_scans_a_stride_of_slots() {
        let (_, space, _, triple) = setup();
        let inst = Adversary::A3.instance(&triple, space.location_of(&triple[2]));
        let tb = TimeBased { a3_slot_stride: 8 };
        let slots = tb.candidate_entry_slots(&inst);
        assert_eq!(slots[0].len(), ENTRY_SLOTS / 8);
    }

    #[test]
    fn gradient_descent_returns_full_ranking() {
        let (mut model, space, prior, triple) = setup();
        let inst = Adversary::A1.instance(&triple, space.location_of(&triple[2]));
        let gd = GradientDescent { iterations: 10, ..GradientDescent::default() };
        let (ranking, queries) =
            AttackMethod::GradientDescent(gd).run(&mut model, &space, &prior, &[], &inst);
        assert_eq!(queries, 10);
        assert_eq!(ranking.top_k(8).len(), 8);
    }

    #[test]
    fn expected_context_is_a_valid_soft_step() {
        let (_, space, prior, _) = setup();
        let x = expected_context(&space, &prior, 3);
        assert_eq!(x.len(), space.dim());
        let loc_sum: f32 = x[..space.n_locations].iter().sum();
        assert!((loc_sum - 1.0).abs() < 1e-5);
        assert_eq!(x[space.dow_offset() + 3], 1.0);
    }

    #[test]
    fn attack_names_are_stable() {
        assert_eq!(AttackMethod::BruteForce(BruteForce::default()).name(), "brute force");
        assert_eq!(AttackMethod::TimeBased(TimeBased::default()).name(), "time-based");
        assert_eq!(
            AttackMethod::GradientDescent(GradientDescent::default()).name(),
            "gradient descent"
        );
    }
}

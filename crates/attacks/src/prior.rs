//! Priors over the sensitive variable (Fig. 2c).
//!
//! The inversion attack weights model confidence by the marginal
//! probability of the sensitive location. The paper studies four ways an
//! adversary might come by that prior: the *true* marginals, no prior at
//! all, a *predicted* prior (observe the black-box model's outputs for a
//! while and average), and an *estimated* prior (know only the most
//! probable value; put 75% mass there).

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};

use pelican_mobility::{FeatureSpace, Session};
use pelican_nn::SequenceModel;

/// How the adversary obtained its prior (§IV-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorKind {
    /// True empirical marginals of the sensitive variable.
    True,
    /// No prior: uniform weighting.
    None,
    /// Observe model outputs for a while and average the confidences.
    Predict,
    /// Know the most probable value only; assign it 75% and spread the rest.
    Estimate,
}

impl std::fmt::Display for PriorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PriorKind::True => "true",
            PriorKind::None => "none",
            PriorKind::Predict => "predict",
            PriorKind::Estimate => "estimate",
        };
        write!(f, "{name}")
    }
}

/// A marginal distribution over location classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    probs: Vec<f64>,
}

impl Prior {
    /// A uniform prior over `n` locations — the "none" condition.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one location");
        Self { probs: vec![1.0 / n as f64; n] }
    }

    /// The true empirical marginals of hidden-step locations in the user's
    /// history.
    ///
    /// Unvisited locations receive a small floor (rather than zero) so the
    /// attack's prior-weighted score never hard-excludes a location; the
    /// floor is one tenth of a uniform cell.
    pub fn from_history(space: &FeatureSpace, sessions: &[Session]) -> Self {
        let n = space.n_locations;
        let floor = 0.1 / n as f64;
        let mut counts = vec![floor; n];
        for s in sessions {
            counts[space.location_of(s)] += 1.0;
        }
        Self::normalized(counts)
    }

    /// The "predict" prior: query the black-box model on `probes` and
    /// average its confidence vectors.
    pub fn predicted(model: &SequenceModel, probes: &[Vec<Vec<f32>>]) -> Self {
        assert!(!probes.is_empty(), "need at least one probe input");
        let n = model.output_dim();
        let mut sums = vec![0.0f64; n];
        for xs in probes {
            for (s, &p) in sums.iter_mut().zip(model.predict_proba(xs).iter()) {
                *s += p as f64;
            }
        }
        Self::normalized(sums)
    }

    /// The "estimate" prior: 75% mass on the most probable location (taken
    /// from `reference`, e.g. the true prior), remainder spread equally.
    pub fn estimated(reference: &Prior) -> Self {
        let n = reference.probs.len();
        let top = reference.argmax();
        let mut probs = vec![0.25 / (n.saturating_sub(1)).max(1) as f64; n];
        probs[top] = 0.75;
        Self { probs }
    }

    /// Builds the prior of a given kind for one user's attack setting.
    ///
    /// `history` is the user's training sessions (true marginals);
    /// `probe_seed` drives random probe generation for [`PriorKind::Predict`].
    pub fn of_kind(
        kind: PriorKind,
        space: &FeatureSpace,
        history: &[Session],
        model: &SequenceModel,
        probe_seed: u64,
    ) -> Self {
        match kind {
            PriorKind::True => Self::from_history(space, history),
            PriorKind::None => Self::uniform(space.n_locations),
            PriorKind::Predict => {
                let probes = random_probes(space, 32, probe_seed);
                Self::predicted(model, &probes)
            }
            PriorKind::Estimate => Self::estimated(&Self::from_history(space, history)),
        }
    }

    fn normalized(mut probs: Vec<f64>) -> Self {
        let sum: f64 = probs.iter().sum();
        assert!(sum > 0.0, "cannot normalize an all-zero prior");
        for p in &mut probs {
            *p /= sum;
        }
        Self { probs }
    }

    /// Probability of location `l`.
    pub fn prob(&self, l: usize) -> f64 {
        self.probs[l]
    }

    /// Number of location classes.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the prior covers zero locations (never true after build).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Most probable location.
    pub fn argmax(&self) -> usize {
        self.probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("priors are finite"))
            .map(|(i, _)| i)
            .expect("nonempty prior")
    }

    /// Borrows the raw probabilities.
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }
}

/// Generates random plausible probe inputs for black-box interrogation.
pub fn random_probes(space: &FeatureSpace, count: usize, seed: u64) -> Vec<Vec<Vec<f32>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let step = |rng: &mut StdRng| {
                space.encode(
                    rng.random_range(0..space.n_locations),
                    rng.random_range(0..pelican_mobility::ENTRY_SLOTS),
                    rng.random_range(0..pelican_mobility::DURATION_BINS),
                    rng.random_range(0..7),
                )
            };
            vec![step(&mut rng), step(&mut rng)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::SpatialLevel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> FeatureSpace {
        FeatureSpace::new(SpatialLevel::Building, 6)
    }

    fn sessions(buildings: &[usize]) -> Vec<Session> {
        buildings
            .iter()
            .map(|&b| Session {
                user: 0,
                building: b,
                ap: b,
                day: 0,
                entry_minutes: 60,
                duration_minutes: 30,
            })
            .collect()
    }

    #[test]
    fn uniform_sums_to_one() {
        let p = Prior::uniform(6);
        assert!((p.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p.prob(0), p.prob(5));
    }

    #[test]
    fn history_prior_tracks_frequencies() {
        let p = Prior::from_history(&space(), &sessions(&[2, 2, 2, 4]));
        assert_eq!(p.argmax(), 2);
        assert!(p.prob(2) > p.prob(4));
        assert!(p.prob(4) > p.prob(0), "visited beats unvisited");
        assert!(p.prob(0) > 0.0, "floor keeps unvisited locations alive");
    }

    #[test]
    fn estimate_concentrates_on_top() {
        let truth = Prior::from_history(&space(), &sessions(&[1, 1, 3]));
        let est = Prior::estimated(&truth);
        assert_eq!(est.argmax(), 1);
        assert!((est.prob(1) - 0.75).abs() < 1e-12);
        let rest: f64 = (0..6).filter(|&i| i != 1).map(|i| est.prob(i)).sum();
        assert!((rest - 0.25).abs() < 1e-12);
    }

    #[test]
    fn predicted_prior_is_a_distribution() {
        let sp = space();
        let mut rng = StdRng::seed_from_u64(0);
        let model = SequenceModel::general_lstm(sp.dim(), 8, sp.n_locations, 0.0, &mut rng);
        let probes = random_probes(&sp, 8, 1);
        let p = Prior::predicted(&model, &probes);
        assert_eq!(p.len(), 6);
        assert!((p.as_slice().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probes_have_model_shape() {
        let sp = space();
        let probes = random_probes(&sp, 3, 9);
        assert_eq!(probes.len(), 3);
        for p in &probes {
            assert_eq!(p.len(), 2);
            assert_eq!(p[0].len(), sp.dim());
        }
    }
}

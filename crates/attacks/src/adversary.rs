//! Adversary models (Table I) and concrete attack instances.

use serde::{Deserialize, Serialize};

use pelican_mobility::Session;

/// The adversaries of Table I. All have black-box model access, a prior
/// `p` over the sensitive variable, and the observed output `l_t`; they
/// differ in which input timesteps they additionally observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Adversary {
    /// Knows `x_{t−2}`; reconstructs `l_{t−1}`.
    A1,
    /// Knows `x_{t−1}`; reconstructs `l_{t−2}`.
    A2,
    /// Knows neither input timestep (only `l_t`); reconstructs `l_{t−1}`.
    A3,
}

impl Adversary {
    /// Index of the timestep being reconstructed (0 = `x_{t−2}`,
    /// 1 = `x_{t−1}`).
    pub fn target_step(self) -> usize {
        match self {
            Adversary::A1 | Adversary::A3 => 1,
            Adversary::A2 => 0,
        }
    }

    /// Index of the known timestep, if any.
    pub fn known_step(self) -> Option<usize> {
        match self {
            Adversary::A1 => Some(0),
            Adversary::A2 => Some(1),
            Adversary::A3 => None,
        }
    }

    /// Builds the attack instance this adversary sees for a ground-truth
    /// session triple `(x_{t−2}, x_{t−1}, x_t)`.
    ///
    /// `observed_output` is the location index of `x_t` at the attack's
    /// spatial level (the adversary observes the service's prediction or
    /// the user's actual next location; the paper treats both as `l_t`).
    pub fn instance(self, triple: &[Session; 3], observed_output: usize) -> Instance {
        let mut known = [None, None];
        if let Some(k) = self.known_step() {
            known[k] = Some(triple[k]);
        }
        Instance {
            adversary: self,
            known,
            observed_output,
            day_of_week: triple[2].day_of_week(),
            truth: triple[self.target_step()],
        }
    }
}

impl std::fmt::Display for Adversary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Adversary::A1 => write!(f, "A1"),
            Adversary::A2 => write!(f, "A2"),
            Adversary::A3 => write!(f, "A3"),
        }
    }
}

/// One concrete attack problem: what the adversary knows and (for
/// evaluation only) the hidden ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Which adversary constructed this instance.
    pub adversary: Adversary,
    /// Known input sessions by step index (`[x_{t−2}, x_{t−1}]`).
    pub known: [Option<Session>; 2],
    /// The observed model output `l_t` (location index).
    pub observed_output: usize,
    /// Day of week of the sequence (public calendar context).
    pub day_of_week: usize,
    /// Ground truth for the hidden step — used only to score the attack,
    /// never revealed to attack methods.
    pub truth: Session,
}

impl Instance {
    /// Index of the hidden step to reconstruct.
    pub fn target_step(&self) -> usize {
        self.adversary.target_step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triple() -> [Session; 3] {
        let mk = |building: usize, entry: u32| Session {
            user: 0,
            building,
            ap: building,
            day: 3,
            entry_minutes: entry,
            duration_minutes: 60,
        };
        [mk(1, 540), mk(2, 610), mk(3, 680)]
    }

    #[test]
    fn a1_hides_the_middle_step() {
        let inst = Adversary::A1.instance(&triple(), 3);
        assert_eq!(inst.known[0].unwrap().building, 1);
        assert!(inst.known[1].is_none());
        assert_eq!(inst.truth.building, 2);
        assert_eq!(inst.target_step(), 1);
    }

    #[test]
    fn a2_hides_the_first_step() {
        let inst = Adversary::A2.instance(&triple(), 3);
        assert!(inst.known[0].is_none());
        assert_eq!(inst.known[1].unwrap().building, 2);
        assert_eq!(inst.truth.building, 1);
        assert_eq!(inst.target_step(), 0);
    }

    #[test]
    fn a3_knows_nothing_but_the_output() {
        let inst = Adversary::A3.instance(&triple(), 3);
        assert!(inst.known[0].is_none() && inst.known[1].is_none());
        assert_eq!(inst.observed_output, 3);
        assert_eq!(inst.truth.building, 2);
    }

    #[test]
    fn day_of_week_is_propagated() {
        let inst = Adversary::A1.instance(&triple(), 3);
        assert_eq!(inst.day_of_week, 3);
    }
}

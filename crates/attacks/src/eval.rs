//! Attack evaluation: aggregate top-k attack accuracy, query and time cost.

use std::time::{Duration, Instant};

use pelican_mobility::FeatureSpace;

use crate::adversary::Instance;
use crate::methods::AttackMethod;
use crate::oracle::BlackBox;
use crate::prior::Prior;

/// Aggregated result of running one attack over many instances.
///
/// "Attack accuracy is defined as the percentage of historical locations
/// correctly identified" (§IV-B), evaluated at several top-k cutoffs.
#[derive(Debug, Clone)]
pub struct AttackEvaluation {
    ks: Vec<usize>,
    hits: Vec<usize>,
    /// Number of attacked instances.
    pub total: usize,
    /// Wall-clock time spent inside attack runs.
    pub elapsed: Duration,
    /// Total black-box model queries issued.
    pub queries: u64,
}

impl AttackEvaluation {
    /// Attack accuracy at `k` (fraction in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `k` was not evaluated.
    pub fn accuracy(&self, k: usize) -> f64 {
        let slot = self
            .ks
            .iter()
            .position(|&x| x == k)
            .unwrap_or_else(|| panic!("k={k} not evaluated (have {:?})", self.ks));
        if self.total == 0 {
            0.0
        } else {
            self.hits[slot] as f64 / self.total as f64
        }
    }

    /// The evaluated k values.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// Mean model queries per instance.
    pub fn queries_per_instance(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.queries as f64 / self.total as f64
        }
    }

    /// Merges another evaluation (e.g. a different user) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the k grids differ.
    pub fn merge(&mut self, other: &AttackEvaluation) {
        assert_eq!(self.ks, other.ks, "cannot merge evaluations over different k grids");
        for (h, o) in self.hits.iter_mut().zip(&other.hits) {
            *h += o;
        }
        self.total += other.total;
        self.elapsed += other.elapsed;
        self.queries += other.queries;
    }

    /// An empty evaluation over a k grid, for accumulating merges.
    pub fn empty(ks: &[usize]) -> Self {
        Self {
            ks: ks.to_vec(),
            hits: vec![0; ks.len()],
            total: 0,
            elapsed: Duration::ZERO,
            queries: 0,
        }
    }
}

/// Runs `method` against every instance and aggregates top-k accuracy.
///
/// `interest` is the pre-computed locations-of-interest set (see
/// [`crate::interest_locations`]); brute force and gradient descent ignore
/// it. `model` is any [`BlackBox`] oracle — a plain
/// [`pelican_nn::SequenceModel`] or a cached wrapper
/// ([`crate::CachedBlackBox`]).
pub fn evaluate_attack<M: BlackBox>(
    method: &AttackMethod,
    model: &mut M,
    space: &FeatureSpace,
    prior: &Prior,
    interest: &[usize],
    instances: &[Instance],
    ks: &[usize],
) -> AttackEvaluation {
    let mut eval = AttackEvaluation::empty(ks);
    let start = Instant::now();
    for inst in instances {
        let (ranking, queries) = method.run(model, space, prior, interest, inst);
        eval.queries += queries;
        let truth = space.location_of(&inst.truth);
        for (slot, &k) in eval.ks.clone().iter().enumerate() {
            if ranking.hit(truth, k) {
                eval.hits[slot] += 1;
            }
        }
        eval.total += 1;
    }
    eval.elapsed = start.elapsed();
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Adversary;
    use crate::methods::TimeBased;
    use pelican_mobility::{Session, SpatialLevel};
    use pelican_nn::SequenceModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn instances(space: &FeatureSpace, n: usize) -> Vec<Instance> {
        (0..n)
            .map(|i| {
                let mk = |b: usize, e: u32| Session {
                    user: 0,
                    building: b % space.n_locations,
                    ap: b % space.n_locations,
                    day: 1,
                    entry_minutes: e,
                    duration_minutes: 45,
                };
                let triple = [mk(i, 500), mk(i + 1, 550), mk(i + 2, 600)];
                Adversary::A1.instance(&triple, space.location_of(&triple[2]))
            })
            .collect()
    }

    #[test]
    fn evaluation_counts_and_merges() {
        let space = FeatureSpace::new(SpatialLevel::Building, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = SequenceModel::general_lstm(space.dim(), 8, 6, 0.0, &mut rng);
        let prior = Prior::uniform(6);
        let interest: Vec<usize> = (0..6).collect();
        let method = AttackMethod::TimeBased(TimeBased::default());
        let insts = instances(&space, 4);
        let mut a =
            evaluate_attack(&method, &mut model, &space, &prior, &interest, &insts[..2], &[1, 3]);
        let b =
            evaluate_attack(&method, &mut model, &space, &prior, &interest, &insts[2..], &[1, 3]);
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert!(a.queries > 0);
        assert!(a.accuracy(3) >= a.accuracy(1), "top-k accuracy is monotone");
        assert!(a.queries_per_instance() > 0.0);
    }

    #[test]
    #[should_panic(expected = "not evaluated")]
    fn unknown_k_panics() {
        AttackEvaluation::empty(&[1]).accuracy(5);
    }

    #[test]
    #[should_panic(expected = "different k grids")]
    fn merge_requires_same_grid() {
        let mut a = AttackEvaluation::empty(&[1]);
        let b = AttackEvaluation::empty(&[2]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different k grids")]
    fn merge_rejects_disjoint_k_grids_even_with_equal_lengths() {
        // Same grid *length* is not enough — the slots would silently
        // aggregate accuracies at different cutoffs.
        let mut a = AttackEvaluation::empty(&[1, 3]);
        let b = AttackEvaluation::empty(&[1, 5]);
        a.merge(&b);
    }

    #[test]
    fn merging_an_empty_evaluation_is_identity() {
        let space = FeatureSpace::new(SpatialLevel::Building, 6);
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = SequenceModel::general_lstm(space.dim(), 8, 6, 0.0, &mut rng);
        let prior = Prior::uniform(6);
        let interest: Vec<usize> = (0..6).collect();
        let method = AttackMethod::TimeBased(TimeBased::default());
        let insts = instances(&space, 3);
        let real = evaluate_attack(&method, &mut model, &space, &prior, &interest, &insts, &[1, 3]);

        let mut merged = real.clone();
        merged.merge(&AttackEvaluation::empty(&[1, 3]));
        assert_eq!(merged.total, real.total);
        assert_eq!(merged.queries, real.queries);
        assert_eq!(merged.accuracy(1), real.accuracy(1));
        assert_eq!(merged.accuracy(3), real.accuracy(3));

        // And the other direction: accumulating into an empty evaluation
        // (the attack_all pattern) reproduces the original exactly.
        let mut acc = AttackEvaluation::empty(&[1, 3]);
        acc.merge(&real);
        assert_eq!(acc.total, real.total);
        assert_eq!(acc.accuracy(1), real.accuracy(1));
    }

    #[test]
    fn empty_evaluations_report_zero_not_nan() {
        let empty = AttackEvaluation::empty(&[1, 3]);
        assert_eq!(empty.total, 0);
        assert_eq!(empty.accuracy(1), 0.0);
        assert_eq!(empty.queries_per_instance(), 0.0);
        let mut a = AttackEvaluation::empty(&[1, 3]);
        a.merge(&empty);
        assert_eq!(a.total, 0);
        assert_eq!(a.accuracy(3), 0.0);
    }

    #[test]
    fn merge_accounts_queries_and_weighted_accuracy() {
        let space = FeatureSpace::new(SpatialLevel::Building, 6);
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = SequenceModel::general_lstm(space.dim(), 8, 6, 0.0, &mut rng);
        let prior = Prior::uniform(6);
        let interest: Vec<usize> = (0..6).collect();
        let method = AttackMethod::TimeBased(TimeBased::default());
        let insts = instances(&space, 6);

        let parts: Vec<AttackEvaluation> = insts
            .chunks(2)
            .map(|c| evaluate_attack(&method, &mut model, &space, &prior, &interest, c, &[1, 3]))
            .collect();
        let whole =
            evaluate_attack(&method, &mut model, &space, &prior, &interest, &insts, &[1, 3]);

        let mut merged = AttackEvaluation::empty(&[1, 3]);
        for part in &parts {
            merged.merge(part);
        }
        assert_eq!(merged.total, whole.total);
        assert_eq!(merged.queries, parts.iter().map(|p| p.queries).sum::<u64>());
        assert_eq!(merged.queries, whole.queries, "splitting instances costs no extra queries");
        // Hit counts (and therefore accuracies over the same total) add up.
        assert_eq!(merged.accuracy(1), whole.accuracy(1));
        assert_eq!(merged.accuracy(3), whole.accuracy(3));
        assert_eq!(
            merged.queries_per_instance(),
            whole.queries_per_instance(),
            "per-instance cost is merge-invariant"
        );
    }
}

//! The inversion attack mounted strictly through a serving interface.
//!
//! Every other attack entry point in this crate holds the model in hand:
//! `predict_proba` is a synchronous call and answers arrive instantly and
//! in full precision. A production adversary has neither luxury — queries
//! travel a client uplink, wait in a shard batch, and come back as the
//! *served* confidence vector (possibly top-k truncated), stamped with
//! real response latency. [`ServedAdversary`] reshapes the attack into
//! that mold: a poll-based state machine that *emits* query batches and
//! *absorbs* served answers, never touching a model.
//!
//! The reshaping is sound because the enumeration attacks are
//! **answer-independent**: the query set of [`BruteForce`] and
//! [`TimeBased`] is a pure function of the feature space, the prior, the
//! interest set and the instance — model answers only enter at scoring
//! time. So the adversary (1) sends interest probes, (2) replays the
//! attack against a [`RecordingBlackBox`] that answers uniformly while
//! writing down every query, (3) sends the recorded set over the wire,
//! and (4) replays the attack once more against a [`ReplayBlackBox`] that
//! answers from the served responses — producing the exact ranking an
//! in-hand attack over the same answers would.
//!
//! The gradient-descent attack has no served analogue: `input_gradient`
//! is a white-box oracle no serving tier exposes, which is precisely why
//! Table II's cheap attack is not a deployment threat.
//!
//! [`BruteForce`]: crate::BruteForce
//! [`TimeBased`]: crate::TimeBased

use std::collections::HashMap;

use pelican_mobility::FeatureSpace;
use pelican_nn::{query_hash, Sequence, SequenceModel, Step};

use crate::adversary::Instance;
use crate::eval::{evaluate_attack, AttackEvaluation};
use crate::methods::{interest_locations_in, AttackMethod};
use crate::oracle::BlackBox;
use crate::prior::{random_probes, Prior};

/// One query the adversary wants served: an opaque id (echoed back in the
/// answer) and the model input.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedQuery {
    /// Adversary-local sequence number, dense from 0.
    pub id: usize,
    /// The two-step model input.
    pub xs: Sequence,
}

/// One served response: what a network observer actually sees.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedAnswer {
    /// Echo of [`ServedQuery::id`].
    pub id: usize,
    /// The served confidence vector — already through the deployed
    /// defense, and possibly top-k truncated by the serving tier.
    pub probs: Step,
    /// Arrival-to-response latency on the serving clock.
    pub latency_us: u64,
}

/// Shape of the served attack.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedConfig {
    /// Random probes sent to map the model's locations of interest.
    pub probe_count: usize,
    /// Seed for probe generation.
    pub probe_seed: u64,
    /// Confidence threshold for the interest set (paper uses 1%).
    pub interest_threshold: f32,
    /// Top-k cutoffs to evaluate.
    pub ks: Vec<usize>,
}

impl Default for ServedConfig {
    fn default() -> Self {
        Self {
            probe_count: 24,
            probe_seed: 0x5EED ^ 0x1f,
            interest_threshold: 0.01,
            ks: vec![1, 3],
        }
    }
}

/// Records every distinct query an attack issues while answering
/// uniformly; used to pre-enumerate an answer-independent query set.
#[derive(Debug, Default)]
pub struct RecordingBlackBox {
    output_dim: usize,
    queries: Vec<Sequence>,
    seen: HashMap<u64, ()>,
}

impl RecordingBlackBox {
    /// A recorder for a model with `output_dim` location classes.
    pub fn new(output_dim: usize) -> Self {
        Self { output_dim, queries: Vec::new(), seen: HashMap::new() }
    }

    /// The distinct queries recorded, in first-issue order.
    pub fn into_queries(self) -> Vec<Sequence> {
        self.queries
    }
}

impl BlackBox for RecordingBlackBox {
    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn predict_proba(&mut self, xs: &[Step]) -> Step {
        if self.seen.insert(query_hash(xs), ()).is_none() {
            self.queries.push(xs.to_vec());
        }
        vec![1.0 / self.output_dim as f32; self.output_dim]
    }

    fn input_gradient(&mut self, _xs: &Sequence, _target: usize) -> (f32, Sequence) {
        unreachable!("the served interface exposes no gradient oracle")
    }
}

/// Answers queries from a store of served responses, keyed by query
/// fingerprint; the scoring half of the record/replay split.
#[derive(Debug)]
pub struct ReplayBlackBox<'a> {
    output_dim: usize,
    answers: &'a HashMap<u64, Step>,
}

impl<'a> ReplayBlackBox<'a> {
    /// A replayer over `answers` (query fingerprint → served confidences).
    pub fn new(output_dim: usize, answers: &'a HashMap<u64, Step>) -> Self {
        Self { output_dim, answers }
    }
}

impl BlackBox for ReplayBlackBox<'_> {
    fn output_dim(&self) -> usize {
        self.output_dim
    }

    fn predict_proba(&mut self, xs: &[Step]) -> Step {
        self.answers
            .get(&query_hash(xs))
            .cloned()
            .expect("replay hit a query that was never served — the query set must be enumerated before scoring")
    }

    fn input_gradient(&mut self, _xs: &Sequence, _target: usize) -> (f32, Sequence) {
        unreachable!("the served interface exposes no gradient oracle")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Interest probes are (about to be) in flight.
    Probing,
    /// The enumerated candidate set is (about to be) in flight.
    Enumerating,
    /// Every answer is home; the evaluation is available.
    Done,
}

/// A model-inversion adversary that only ever talks to a serving tier.
///
/// Poll-driven: the experiment loop calls [`Self::next_queries`] to drain
/// whatever the adversary wants sent next (empty while answers are
/// outstanding), routes each query through the serving stack however it
/// likes, and hands responses back via [`Self::absorb`]. Once
/// [`Self::is_done`], [`Self::evaluation`] scores the attack from served
/// answers alone.
#[derive(Debug)]
pub struct ServedAdversary {
    space: FeatureSpace,
    prior: Prior,
    instances: Vec<Instance>,
    method: AttackMethod,
    config: ServedConfig,
    probes: Vec<Sequence>,
    phase: Phase,
    issued: bool,
    /// Outstanding query ids → their inputs.
    pending: HashMap<usize, Sequence>,
    /// Served answers by query fingerprint.
    answers: HashMap<u64, Step>,
    latencies_us: Vec<u64>,
    next_id: usize,
    interest: Vec<usize>,
}

impl ServedAdversary {
    /// Sets up the adversary for a batch of instances against one user's
    /// served model.
    ///
    /// # Panics
    ///
    /// Panics if `method` is the gradient-descent attack: its oracle
    /// ([`BlackBox::input_gradient`]) does not exist behind a serving
    /// interface.
    pub fn new(
        space: FeatureSpace,
        prior: Prior,
        instances: Vec<Instance>,
        method: AttackMethod,
        config: ServedConfig,
    ) -> Self {
        assert!(
            !matches!(method, AttackMethod::GradientDescent(_)),
            "gradient descent needs a white-box oracle the serving interface never exposes"
        );
        let probes = random_probes(&space, config.probe_count, config.probe_seed);
        Self {
            space,
            prior,
            instances,
            method,
            config,
            probes,
            phase: Phase::Probing,
            issued: false,
            pending: HashMap::new(),
            answers: HashMap::new(),
            latencies_us: Vec::new(),
            next_id: 0,
            interest: Vec::new(),
        }
    }

    /// The next batch of queries to serve; empty while answers are
    /// outstanding or after [`Self::is_done`]. Each phase's batch is
    /// emitted exactly once.
    pub fn next_queries(&mut self) -> Vec<ServedQuery> {
        if !self.pending.is_empty() || self.issued {
            return Vec::new();
        }
        match self.phase {
            Phase::Probing => {
                let batch = self.issue(self.probes.clone());
                if batch.is_empty() {
                    // Zero probes configured: the interest set stays
                    // empty and enumeration proceeds directly.
                    self.advance();
                    return self.next_queries();
                }
                batch
            }
            Phase::Enumerating => {
                let candidates = self.enumerate_candidates();
                let batch = self.issue(candidates);
                if batch.is_empty() {
                    self.advance();
                }
                batch
            }
            Phase::Done => Vec::new(),
        }
    }

    /// Accepts one served response. Ids must match an outstanding query.
    ///
    /// # Panics
    ///
    /// Panics on an id the adversary never issued (or already absorbed).
    pub fn absorb(&mut self, answer: ServedAnswer) {
        let xs = self
            .pending
            .remove(&answer.id)
            .expect("served answer for a query this adversary has in flight");
        self.answers.insert(query_hash(&xs), answer.probs);
        self.latencies_us.push(answer.latency_us);
        if self.pending.is_empty() {
            self.advance();
        }
    }

    /// Whether every phase has completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Queries actually sent over the serving interface so far (the
    /// deduplicated network cost, as opposed to the attack's logical
    /// query count).
    pub fn queries_sent(&self) -> usize {
        self.next_id
    }

    /// Response latencies observed so far, in absorb order — the timing
    /// side-channel a network observer gets for free.
    pub fn latencies_us(&self) -> &[u64] {
        &self.latencies_us
    }

    /// The interest set derived from served probe answers (empty until
    /// probing completes).
    pub fn interest(&self) -> &[usize] {
        &self.interest
    }

    /// Scores the attack from served answers alone.
    ///
    /// # Panics
    ///
    /// Panics unless [`Self::is_done`].
    pub fn evaluation(&self) -> AttackEvaluation {
        assert!(self.is_done(), "evaluation needs every served answer home");
        let mut replay = ReplayBlackBox::new(self.space.n_locations, &self.answers);
        evaluate_attack(
            &self.method,
            &mut replay,
            &self.space,
            &self.prior,
            &self.interest,
            &self.instances,
            &self.config.ks,
        )
    }

    /// Issues a batch, skipping inputs whose fingerprint already has an
    /// answer (a candidate can coincide with a probe).
    fn issue(&mut self, inputs: Vec<Sequence>) -> Vec<ServedQuery> {
        let mut batch = Vec::new();
        let mut fresh: HashMap<u64, ()> = HashMap::new();
        for xs in inputs {
            let key = query_hash(&xs);
            if self.answers.contains_key(&key) || fresh.insert(key, ()).is_some() {
                continue;
            }
            let id = self.next_id;
            self.next_id += 1;
            self.pending.insert(id, xs.clone());
            batch.push(ServedQuery { id, xs });
        }
        self.issued = !batch.is_empty();
        batch
    }

    /// Phase transition once a batch is fully absorbed.
    fn advance(&mut self) {
        self.issued = false;
        match self.phase {
            Phase::Probing => {
                let mut replay = ReplayBlackBox::new(self.space.n_locations, &self.answers);
                self.interest = interest_locations_in(
                    &mut replay,
                    &self.probes,
                    self.config.interest_threshold,
                );
                self.phase = Phase::Enumerating;
            }
            Phase::Enumerating => self.phase = Phase::Done,
            Phase::Done => {}
        }
    }

    /// Dry-runs the attack against a recorder to enumerate its (answer-
    /// independent) query set.
    fn enumerate_candidates(&self) -> Vec<Sequence> {
        let mut recorder = RecordingBlackBox::new(self.space.n_locations);
        for inst in &self.instances {
            let _ = self.method.run(&mut recorder, &self.space, &self.prior, &self.interest, inst);
        }
        recorder.into_queries()
    }
}

/// Truncates a served confidence vector to its top-k entries, zeroing the
/// rest — the serving tier's answer-minimization knob. Ties at the k-th
/// score keep the lowest class indices, so truncation is deterministic.
pub fn truncate_top_k(probs: &[f32], k: usize) -> Step {
    if k >= probs.len() {
        return probs.to_vec();
    }
    let mut order: Vec<usize> = (0..probs.len()).collect();
    order.sort_by(|&a, &b| {
        probs[b].partial_cmp(&probs[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut out = vec![0.0; probs.len()];
    for &i in order.iter().take(k) {
        out[i] = probs[i];
    }
    out
}

/// Serves a [`ServedAdversary`] directly from an in-hand model — the
/// zero-latency, full-precision degenerate case. Useful for tests and as
/// the oracle baseline the served evaluation must match bit-for-bit when
/// `top_k` covers every class.
pub fn serve_locally(
    adversary: &mut ServedAdversary,
    model: &mut SequenceModel,
    top_k: usize,
) -> usize {
    let mut served = 0;
    loop {
        let batch = adversary.next_queries();
        if batch.is_empty() {
            break;
        }
        for q in batch {
            let probs = truncate_top_k(&model.predict_proba(&q.xs), top_k);
            adversary.absorb(ServedAnswer { id: q.id, probs, latency_us: 0 });
            served += 1;
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Adversary;
    use crate::methods::{interest_locations, TimeBased};
    use pelican_mobility::{Session, SpatialLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 8;

    fn setup() -> (SequenceModel, FeatureSpace, Prior, Vec<Instance>) {
        let space = FeatureSpace::new(SpatialLevel::Building, N);
        let mut rng = StdRng::seed_from_u64(33);
        let model = SequenceModel::general_lstm(space.dim(), 12, N, 0.0, &mut rng);
        let prior = Prior::uniform(N);
        let mk = |b: usize, e: u32| Session {
            user: 0,
            building: b,
            ap: b,
            day: 2,
            entry_minutes: e,
            duration_minutes: 55,
        };
        let instances = (0..3)
            .map(|i| {
                let triple = [mk(1 + i, 540), mk((4 + i) % N, 600), mk(6, 660)];
                Adversary::A1.instance(&triple, 6)
            })
            .collect();
        (model, space, prior, instances)
    }

    fn adversary(space: &FeatureSpace, prior: &Prior, instances: &[Instance]) -> ServedAdversary {
        ServedAdversary::new(
            *space,
            prior.clone(),
            instances.to_vec(),
            AttackMethod::TimeBased(TimeBased::default()),
            ServedConfig { probe_count: 8, probe_seed: 5, ..ServedConfig::default() },
        )
    }

    #[test]
    fn served_attack_matches_the_in_hand_attack_exactly() {
        let (mut model, space, prior, instances) = setup();
        let mut adv = adversary(&space, &prior, &instances);
        serve_locally(&mut adv, &mut model, N);
        assert!(adv.is_done());
        let served = adv.evaluation();

        // The oracle baseline: same probes, same attack, model in hand.
        let probes = random_probes(&space, 8, 5);
        let interest = interest_locations(&model, &probes, 0.01);
        assert_eq!(adv.interest(), &interest[..], "probing through serving finds the same set");
        let direct = evaluate_attack(
            &AttackMethod::TimeBased(TimeBased::default()),
            &mut model,
            &space,
            &prior,
            &interest,
            &instances,
            &[1, 3],
        );
        assert_eq!(served.total, direct.total);
        assert_eq!(served.accuracy(1), direct.accuracy(1));
        assert_eq!(served.accuracy(3), direct.accuracy(3));
        assert_eq!(served.queries, direct.queries, "logical query counts agree");
    }

    #[test]
    fn deduplication_makes_the_wire_cheaper_than_the_logical_count() {
        let (mut model, space, prior, instances) = setup();
        let mut adv = adversary(&space, &prior, &instances);
        let sent = serve_locally(&mut adv, &mut model, N);
        assert_eq!(sent, adv.queries_sent());
        let logical = adv.evaluation().queries as usize + 8; // attack + probes
        assert!(
            adv.queries_sent() <= logical,
            "wire count {} must not exceed logical count {logical}",
            adv.queries_sent()
        );
        assert_eq!(adv.latencies_us().len(), sent, "every response is timed");
    }

    #[test]
    fn generous_truncation_changes_nothing() {
        let (mut model, space, prior, instances) = setup();
        let mut full = adversary(&space, &prior, &instances);
        serve_locally(&mut full, &mut model, N);
        let mut wide = adversary(&space, &prior, &instances);
        serve_locally(&mut wide, &mut model, usize::MAX);
        let (a, b) = (full.evaluation(), wide.evaluation());
        assert_eq!(a.accuracy(3), b.accuracy(3));
    }

    #[test]
    fn truncation_zeroes_everything_below_the_cut() {
        let probs = vec![0.4, 0.1, 0.3, 0.2];
        assert_eq!(truncate_top_k(&probs, 2), vec![0.4, 0.0, 0.3, 0.0]);
        assert_eq!(truncate_top_k(&probs, 4), probs);
        let tied = vec![0.25; 4];
        assert_eq!(truncate_top_k(&tied, 2), vec![0.25, 0.25, 0.0, 0.0], "ties break low-index");
    }

    #[test]
    fn phases_drain_in_order_and_batches_emit_once() {
        let (_, space, prior, instances) = setup();
        let mut adv = adversary(&space, &prior, &instances);
        let probes = adv.next_queries();
        assert_eq!(probes.len(), 8);
        assert!(adv.next_queries().is_empty(), "no new batch while probes are in flight");
        for q in probes {
            adv.absorb(ServedAnswer { id: q.id, probs: vec![1.0 / N as f32; N], latency_us: 7 });
        }
        let candidates = adv.next_queries();
        assert!(!candidates.is_empty(), "uniform probes keep every location interesting");
        assert!(!adv.is_done());
        for q in candidates {
            adv.absorb(ServedAnswer { id: q.id, probs: vec![1.0 / N as f32; N], latency_us: 9 });
        }
        assert!(adv.is_done());
        assert!(adv.next_queries().is_empty());
    }

    #[test]
    #[should_panic(expected = "white-box oracle")]
    fn gradient_descent_is_rejected_at_the_door() {
        let (_, space, prior, instances) = setup();
        ServedAdversary::new(
            space,
            prior,
            instances,
            AttackMethod::GradientDescent(crate::methods::GradientDescent::default()),
            ServedConfig::default(),
        );
    }
}

//! The black-box query oracle attacks run against, and a logit cache
//! that makes repeated audits of the same weights (e.g. an audit gate
//! climbing a defense ladder) nearly free.
//!
//! The paper's threat model (§III-B) gives the adversary *black-box*
//! access: confidence vectors out, nothing else. [`BlackBox`] captures
//! exactly that interface (plus the input-gradient oracle the
//! gradient-descent attack needs), so attack methods are generic over
//! *what* answers their queries. A plain [`SequenceModel`] is the
//! deployed model; [`CachedBlackBox`] wraps one with a [`LogitCache`]
//! that remembers raw logits per query fingerprint. Defenses
//! ([`pelican_nn::Postprocess`], temperature) only transform the
//! logits→confidence mapping, never the logits, so a cache filled under
//! one defense answers the same queries under *any other defense of the
//! same weights* without a single forward pass — the incremental-audit
//! optimization the training gate's escalation ladder exploits.

use std::collections::HashMap;

use pelican_nn::{query_hash, Sequence, SequenceModel, Step};

/// Black-box (plus gradient-oracle) access to a deployed model.
pub trait BlackBox {
    /// Number of output classes.
    fn output_dim(&self) -> usize;
    /// The deployed confidence vector for a query — what the paper's
    /// adversary observes.
    fn predict_proba(&mut self, xs: &[Step]) -> Step;
    /// Input-gradient oracle used by the gradient-descent attack (a
    /// white-box concession the paper also grants that method).
    fn input_gradient(&mut self, xs: &Sequence, target: usize) -> (f32, Sequence);
}

impl BlackBox for SequenceModel {
    fn output_dim(&self) -> usize {
        SequenceModel::output_dim(self)
    }

    fn predict_proba(&mut self, xs: &[Step]) -> Step {
        SequenceModel::predict_proba(self, xs)
    }

    fn input_gradient(&mut self, xs: &Sequence, target: usize) -> (f32, Sequence) {
        SequenceModel::input_gradient(self, xs, target)
    }
}

/// Raw logits memoized per query fingerprint, with hit/miss accounting.
///
/// Valid across *defense* changes (temperature, post-processing) of one
/// set of weights; any weight update invalidates it — create a fresh
/// cache per candidate model.
#[derive(Debug, Clone, Default)]
pub struct LogitCache {
    logits: HashMap<u64, Step>,
    /// Queries answered from the cache (no forward pass).
    pub hits: u64,
    /// Queries that ran a real forward pass (and filled the cache).
    pub misses: u64,
}

impl LogitCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct queries cached.
    pub fn len(&self) -> usize {
        self.logits.len()
    }

    /// Whether nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.logits.is_empty()
    }
}

/// A [`SequenceModel`] whose query answers are memoized in a
/// [`LogitCache`].
///
/// Cache hits replay the stored logits through the model's *current*
/// confidence pipeline ([`SequenceModel::proba_from_logits`]), so
/// answers are bit-identical to the uncached model under whatever
/// defense is deployed at query time.
#[derive(Debug)]
pub struct CachedBlackBox<'m, 'c> {
    model: &'m mut SequenceModel,
    cache: &'c mut LogitCache,
}

impl<'m, 'c> CachedBlackBox<'m, 'c> {
    /// Wraps a model with a cache. The cache must only ever have seen
    /// queries answered by these exact weights.
    pub fn new(model: &'m mut SequenceModel, cache: &'c mut LogitCache) -> Self {
        Self { model, cache }
    }
}

impl BlackBox for CachedBlackBox<'_, '_> {
    fn output_dim(&self) -> usize {
        self.model.output_dim()
    }

    fn predict_proba(&mut self, xs: &[Step]) -> Step {
        let key = query_hash(xs);
        if let Some(logits) = self.cache.logits.get(&key) {
            self.cache.hits += 1;
            self.model.proba_from_logits(logits.clone(), key)
        } else {
            self.cache.misses += 1;
            let logits = self.model.logits(xs);
            self.cache.logits.insert(key, logits.clone());
            self.model.proba_from_logits(logits, key)
        }
    }

    fn input_gradient(&mut self, xs: &Sequence, target: usize) -> (f32, Sequence) {
        // Gradients are not black-box replayable; pass through uncached.
        self.model.input_gradient(xs, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(8);
        SequenceModel::single_lstm(4, 6, 5, 0.0, &mut rng)
    }

    #[test]
    fn cached_answers_are_bit_identical_and_counted() {
        let reference = model();
        let mut m = model();
        let mut cache = LogitCache::new();
        let queries: Vec<Sequence> = (0..6).map(|i| vec![vec![0.1 * i as f32; 4]; 2]).collect();

        let mut oracle = CachedBlackBox::new(&mut m, &mut cache);
        for xs in &queries {
            assert_eq!(oracle.predict_proba(xs), reference.predict_proba(xs));
        }
        assert_eq!((cache.hits, cache.misses), (0, 6), "first pass is all misses");

        let mut oracle = CachedBlackBox::new(&mut m, &mut cache);
        for xs in &queries {
            assert_eq!(oracle.predict_proba(xs), reference.predict_proba(xs));
        }
        assert_eq!((cache.hits, cache.misses), (6, 6), "second pass is all hits");
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn cache_survives_defense_changes_on_the_same_weights() {
        let mut m = model();
        let mut cache = LogitCache::new();
        let xs = vec![vec![0.3; 4]; 2];
        let _ = CachedBlackBox::new(&mut m, &mut cache).predict_proba(&xs);

        // Sharpen the temperature (the audit gate's escalation): the
        // cached logits must replay the *new* defense bit-identically,
        // without a forward pass.
        m.set_temperature(1e-3);
        let expected = m.predict_proba(&xs);
        let answer = CachedBlackBox::new(&mut m, &mut cache).predict_proba(&xs);
        assert_eq!(answer, expected);
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn gradient_oracle_passes_through() {
        let mut m = model();
        let mut cache = LogitCache::new();
        let xs = vec![vec![0.2; 4]; 2];
        let mut reference = model();
        let (loss_ref, grads_ref) = reference.input_gradient(&xs, 1);
        let (loss, grads) = CachedBlackBox::new(&mut m, &mut cache).input_gradient(&xs, 1);
        assert_eq!(loss, loss_ref);
        assert_eq!(grads, grads_ref);
        assert!(cache.is_empty(), "gradients never populate the logit cache");
    }
}

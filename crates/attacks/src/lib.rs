//! Model-inversion privacy attacks on personalized next-location models.
//!
//! Implements the paper's §III-B formalization: an honest-but-curious
//! service provider holds **black-box** access to a user's personalized
//! model (outputs + confidence scores only), some side information, and a
//! prior over the sensitive variable, and tries to reconstruct *historical*
//! locations that were inputs to an observed prediction.
//!
//! Three attack methods are implemented, matching Fig. 2a / Table II:
//!
//! * [`BruteForce`] — enumerate every `(location, entry, duration)` value
//!   of the hidden timestep; the accuracy ceiling and the cost ceiling.
//! * [`TimeBased`] — the paper's novel smart enumeration: exploit the
//!   continuity of mobility (`entry ≈ previous entry + previous duration`)
//!   to collapse the entry dimension, and restrict locations to the model's
//!   *locations of interest*; ~100× cheaper at equal accuracy.
//! * [`GradientDescent`] — reconstruct the hidden one-hot input by
//!   descending the model's input gradient with temperature-softened block
//!   projections; cheap but weak on large discrete domains (the paper
//!   measures < 16%).
//!
//! The three adversaries A1/A2/A3 of Table I differ only in which timesteps
//! they observe; see [`Adversary`].

pub mod adversary;
pub mod eval;
pub mod methods;
pub mod oracle;
pub mod prior;
pub mod served;

pub use adversary::{Adversary, Instance};
pub use eval::{evaluate_attack, AttackEvaluation};
pub use methods::{
    interest_locations, interest_locations_in, AttackMethod, BruteForce, GradientDescent, Ranking,
    TimeBased,
};
pub use oracle::{BlackBox, CachedBlackBox, LogitCache};
pub use prior::{Prior, PriorKind};
pub use served::{
    serve_locally, truncate_top_k, RecordingBlackBox, ReplayBlackBox, ServedAdversary,
    ServedAnswer, ServedConfig, ServedQuery,
};

//! Per-user training jobs and cohort construction.

use std::ops::Range;

use pelican_mobility::{train_test_split, MobilityDataset, Session};
use pelican_nn::{ModelEnvelope, Sample};

use crate::audit::AuditSubject;

/// Whether a job trains from scratch or warm-starts a deployed model.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Derive a fresh personalized model from the general model (Fig. 4
    /// step 2).
    Fresh,
    /// Step 4: warm-start from the user's currently published envelope and
    /// re-train on newly accumulated data, preserving the freeze pattern
    /// (which survives the envelope round trip). Any deployed defense is
    /// stripped before training and re-decided by the audit gate.
    WarmStart {
        /// The user's currently published model.
        envelope: ModelEnvelope,
    },
}

/// One user's personalization job: their private data plus everything the
/// audit gate needs.
#[derive(Debug, Clone)]
pub struct TrainJob {
    /// The user being personalized.
    pub user_id: usize,
    /// Fresh personalization or warm-start update.
    pub kind: JobKind,
    /// The user's private training samples (never leave the worker —
    /// Pelican's on-device data residency, simulated).
    pub train: Vec<Sample>,
    /// Training sessions (audit prior marginals) and held-out triples
    /// (audit attack instances).
    pub subject: AuditSubject,
}

impl TrainJob {
    /// Converts a fresh job into a warm-start update from a published
    /// envelope (the data fields carry over).
    pub fn into_warm(self, envelope: ModelEnvelope) -> Self {
        Self { kind: JobKind::WarmStart { envelope }, ..self }
    }

    /// Whether this is a warm-start update.
    pub fn is_warm(&self) -> bool {
        matches!(self.kind, JobKind::WarmStart { .. })
    }
}

/// Builds fresh personalization jobs for a cohort of dataset users,
/// splitting each user's triples into training data and audit holdout
/// exactly like the experiment workbench does (so a pipeline-trained
/// cohort is comparable to a `Scenario`-trained one). Users whose split
/// leaves either side empty are skipped.
pub fn cohort_jobs(
    dataset: &MobilityDataset,
    users: Range<usize>,
    train_fraction: f64,
) -> Vec<TrainJob> {
    users
        .filter_map(|user_id| {
            let (train_triples, holdout) =
                train_test_split(&dataset.users[user_id].triples, train_fraction);
            let train: Vec<Sample> = train_triples.iter().map(|t| dataset.sample_of(t)).collect();
            if train.is_empty() || holdout.is_empty() {
                return None;
            }
            let history: Vec<Session> =
                train_triples.iter().flat_map(|t| t.iter().copied()).collect();
            Some(TrainJob {
                user_id,
                kind: JobKind::Fresh,
                train,
                subject: AuditSubject { history, holdout },
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};

    #[test]
    fn cohort_jobs_split_train_and_holdout() {
        let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 9)
            .build(SpatialLevel::Building);
        let n = dataset.users.len();
        let jobs = cohort_jobs(&dataset, (n - 3)..n, 0.8);
        assert!(!jobs.is_empty());
        for job in &jobs {
            assert!(!job.train.is_empty());
            assert!(!job.subject.holdout.is_empty());
            assert!(!job.is_warm());
            assert_eq!(job.subject.history.len(), job.train.len() * 3);
        }
        let warm = jobs[0].clone().into_warm(ModelEnvelope::from_bytes(vec![0u8]));
        assert!(warm.is_warm());
    }
}

//! The fleet-personalization pipeline: trainer pool → audit gate →
//! hot-swap publication.
//!
//! [`FleetTrainer::run`] is the one deterministic-output function the
//! example, the `train-report` experiment and the `fleet_training` bench
//! all drive. Workers steal per-user jobs from the pool, personalize (or
//! warm-start) on the simulated device tier, push each candidate through
//! the privacy-audit gate, and send the release-ready envelope down an
//! [`mpsc`] publication channel. The publisher drains the channel on the
//! calling thread and hot-swaps envelopes into the [`ShardedRegistry`]
//! *while serving continues* — registry lookups go through `&self`, so a
//! serving engine can keep answering queries against the same registry
//! for the whole run.
//!
//! Model weights, audit verdicts and published envelopes are bit-identical
//! for any worker count (per-user seeds come from [`crate::pool::user_seed`],
//! never from scheduling order). Publication *versions* and the wall-clock
//! numbers in the report are the only schedule-dependent outputs.

use std::time::{Duration, Instant};

use pelican::platform::{measure_thread, ComputeTier, NetworkLink};
use pelican::{DefenseKind, DevicePersonalizer, PersonalizationConfig, PersonalizationMethod};
use pelican_mobility::FeatureSpace;
use pelican_nn::{FitReport, ModelEnvelope, SequenceModel};
use pelican_serve::ShardedRegistry;
use pelican_tensor::FlopGuard;

use crate::audit::{AuditConfig, AuditGate, GateOutcome};
use crate::job::{JobKind, TrainJob};
use crate::pool::{user_seed, TrainerPool};
use crate::report::{JobOutcome, TrainReport};

/// Pipeline knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Trainer-pool width.
    pub workers: usize,
    /// Base seed every per-user seed derives from.
    pub base_seed: u64,
    /// Personalization method for fresh jobs.
    pub method: PersonalizationMethod,
    /// Device-side training hyperparameters. The `seed` and
    /// `train.shuffle_seed` fields are overridden per user.
    pub personalization: PersonalizationConfig,
    /// The device↔cloud link paid for each general-model download.
    pub link: NetworkLink,
    /// Red-team configuration of the audit gate.
    pub audit: AuditConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            base_seed: 42,
            method: PersonalizationMethod::TlFeatureExtract,
            personalization: PersonalizationConfig::default(),
            link: NetworkLink::wifi(),
            audit: AuditConfig::default(),
        }
    }
}

/// What a worker sends down the publication channel for one finished job.
struct Candidate {
    index: usize,
    user_id: usize,
    envelope: ModelEnvelope,
    gate: GateOutcome,
    fit: FitReport,
    warm: bool,
    started: Instant,
    train_simulated: Duration,
    audit_simulated: Duration,
}

/// The fleet-training pipeline.
#[derive(Debug, Clone)]
pub struct FleetTrainer {
    config: PipelineConfig,
    gate: AuditGate,
}

impl FleetTrainer {
    /// Creates a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero or the audit configuration is
    /// inconsistent (see [`AuditGate::new`]).
    pub fn new(config: PipelineConfig) -> Self {
        assert!(config.workers > 0, "pipeline needs at least one worker");
        let gate = AuditGate::new(config.audit.clone());
        Self { config, gate }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// A personalizer with this user's derived seeds (stream 0 for layer
    /// init, stream 1 for epoch shuffling).
    fn personalizer_for(&self, user_id: usize) -> DevicePersonalizer {
        let mut cfg = self.config.personalization.clone();
        cfg.seed = user_seed(self.config.base_seed, user_id as u64, 0);
        cfg.train = cfg.train.reseeded(user_seed(self.config.base_seed, user_id as u64, 1));
        DevicePersonalizer::new(cfg, self.config.link)
    }

    /// The pipeline's audit gate — shared with callers (like the live
    /// personalization loop) that audit outside [`FleetTrainer::run`].
    pub fn gate(&self) -> &AuditGate {
        &self.gate
    }

    /// Trains one candidate model (fresh personalization or warm-start
    /// update). Returns the undefended candidate and its fit report.
    ///
    /// This is the single-job entry point the streaming loop re-trains
    /// through: a [`JobKind::WarmStart`] job decodes the published
    /// envelope, strips its serving-time defense, and incrementally
    /// updates the weights on the user's fresh samples — with the exact
    /// per-user seeds [`FleetTrainer::run`] would use, so a re-train is
    /// bit-identical no matter which caller drives it.
    pub fn train_candidate(
        &self,
        general: &ModelEnvelope,
        job: &TrainJob,
    ) -> (SequenceModel, FitReport) {
        let personalizer = self.personalizer_for(job.user_id);
        match &job.kind {
            JobKind::Fresh => {
                let outcome = personalizer
                    .personalize(general, &job.train, self.config.method)
                    .expect("freshly encoded general envelope always decodes");
                (outcome.model, outcome.fit)
            }
            JobKind::WarmStart { envelope } => {
                let mut model = envelope.decode().expect("published envelope always decodes");
                // The deployed defense is serving-time state, not training
                // state: strip it so warm training sees clean logits; the
                // gate re-decides the defense from scratch below.
                DefenseKind::None.apply(&mut model);
                let (fit, _usage) = personalizer.update(&mut model, &job.train);
                (model, fit)
            }
        }
    }

    /// Runs the pipeline over a cohort: personalizes every job in
    /// parallel, audits each candidate, and publishes audited envelopes
    /// into `registry` as they clear the gate. Returns the per-job
    /// outcomes (job order) plus throughput/latency/audit aggregates.
    pub fn run(
        &self,
        general: &SequenceModel,
        space: &FeatureSpace,
        jobs: &[TrainJob],
        registry: &ShardedRegistry,
    ) -> TrainReport {
        let wall = Instant::now();
        let flop_guard = FlopGuard::start();
        let general_envelope = ModelEnvelope::encode(general);

        let mut outcomes: Vec<Option<JobOutcome>> = jobs.iter().map(|_| None).collect();
        let pool = TrainerPool::new(self.config.workers);
        pool.run_streaming(
            jobs,
            // Worker side: steal a job, train, audit, hand the audited
            // envelope to the publication channel.
            |index, job| {
                let started = Instant::now();
                // Per-thread measurement: each job runs entirely on one
                // worker, so its simulated device cost is exact and
                // bit-identical for any pool width — the input the
                // network simulation replays.
                let ((candidate, fit), train_usage) = measure_thread(ComputeTier::Device, || {
                    self.train_candidate(&general_envelope, job)
                });
                let ((published, gate), audit_usage) = measure_thread(ComputeTier::Device, || {
                    self.gate.admit(candidate, space, &job.subject)
                });
                Candidate {
                    index,
                    user_id: job.user_id,
                    envelope: ModelEnvelope::encode(&published),
                    gate,
                    fit,
                    warm: job.is_warm(),
                    started,
                    train_simulated: train_usage.simulated,
                    audit_simulated: audit_usage.simulated,
                }
            },
            // Publisher side, on the calling thread: hot-swap each
            // audited envelope the moment it arrives, concurrently with
            // the still-training workers.
            |c| {
                let Candidate {
                    index,
                    user_id,
                    envelope,
                    gate,
                    fit,
                    warm,
                    started,
                    train_simulated,
                    audit_simulated,
                } = c;
                let envelope_bytes = envelope.len();
                let version = registry.enroll_envelope(user_id, envelope);
                let outcome = JobOutcome {
                    user_id,
                    version,
                    warm,
                    gate,
                    fit,
                    enroll_latency: started.elapsed(),
                    train_simulated,
                    audit_simulated,
                    envelope_bytes,
                };
                outcomes[index] = Some(outcome);
            },
        );

        TrainReport::new(
            self.config.workers,
            outcomes
                .into_iter()
                .map(|o| o.expect("every job was trained, audited and published"))
                .collect(),
            wall.elapsed(),
            flop_guard.stop(),
        )
    }
}

/// Convenience wrapper: personalize, audit and publish a cohort, then
/// report. Equivalent to `FleetTrainer::new(config).run(..)`.
pub fn run_pipeline(
    config: PipelineConfig,
    general: &SequenceModel,
    space: &FeatureSpace,
    jobs: &[TrainJob],
    registry: &ShardedRegistry,
) -> TrainReport {
    FleetTrainer::new(config).run(general, space, jobs, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::cohort_jobs;
    use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
    use pelican_nn::TrainConfig;
    use pelican_serve::RegistryConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setting() -> (SequenceModel, pelican_mobility::MobilityDataset, Vec<TrainJob>) {
        let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 13)
            .build(SpatialLevel::Building);
        let mut rng = StdRng::seed_from_u64(13);
        let general = SequenceModel::general_lstm(
            dataset.space.dim(),
            12,
            dataset.n_locations(),
            0.1,
            &mut rng,
        );
        let n = dataset.users.len();
        let jobs = cohort_jobs(&dataset, (n - 2)..n, 0.8);
        (general, dataset, jobs)
    }

    fn fast_config(workers: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_publishes_every_job() {
        let (general, dataset, jobs) = tiny_setting();
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        let report = run_pipeline(fast_config(2), &general, &dataset.space, &jobs, &registry);
        assert_eq!(report.outcomes.len(), jobs.len());
        let stats = registry.stats();
        assert_eq!(stats.cold_models, jobs.len());
        assert_eq!(stats.publishes, jobs.len() as u64);
        for (job, outcome) in jobs.iter().zip(&report.outcomes) {
            assert_eq!(outcome.user_id, job.user_id);
            assert!(registry.is_enrolled(job.user_id));
            assert_eq!(registry.version_of(job.user_id), Some(outcome.version));
            assert!(outcome.fit.steps > 0);
        }
        assert!(report.flops > 0);
    }

    #[test]
    fn warm_start_republishes_with_a_higher_version() {
        let (general, dataset, jobs) = tiny_setting();
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        let trainer = FleetTrainer::new(fast_config(2));
        let first = trainer.run(&general, &dataset.space, &jobs, &registry);

        let warm_jobs: Vec<TrainJob> = jobs
            .iter()
            .map(|j| {
                let (_, lookup) = registry.get(j.user_id).unwrap();
                assert_ne!(lookup, pelican_serve::Lookup::Fallback);
                let decoded = registry.get(j.user_id).unwrap().0;
                j.clone().into_warm(ModelEnvelope::encode(&decoded))
            })
            .collect();
        let second = trainer.run(&general, &dataset.space, &warm_jobs, &registry);
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert!(!a.warm && b.warm);
            assert!(b.version > a.version, "hot-swap bumps the publication version");
            assert_eq!(registry.version_of(b.user_id), Some(b.version));
        }
        assert_eq!(registry.stats().cold_models, jobs.len(), "updates replace, not add");
    }
}

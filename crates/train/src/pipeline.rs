//! The fleet-personalization pipeline: trainer pool → audit gate →
//! hot-swap publication.
//!
//! [`FleetTrainer::run`] is the one deterministic-output function the
//! example, the `train-report` experiment and the `fleet_training` bench
//! all drive. Workers steal per-user jobs from the pool, personalize (or
//! warm-start) on the simulated device tier, push each candidate through
//! the privacy-audit gate, and send the release-ready envelope down an
//! [`mpsc`] publication channel. The publisher drains the channel on the
//! calling thread and hot-swaps envelopes into the [`ShardedRegistry`]
//! *while serving continues* — registry lookups go through `&self`, so a
//! serving engine can keep answering queries against the same registry
//! for the whole run.
//!
//! Model weights, audit verdicts and published envelopes are bit-identical
//! for any worker count (per-user seeds come from [`crate::pool::user_seed`],
//! never from scheduling order). Publication *versions* and the wall-clock
//! numbers in the report are the only schedule-dependent outputs.

use std::time::{Duration, Instant};

use pelican::platform::{measure_thread, usage_of, ComputeTier, NetworkLink, ResourceUsage};
use pelican::{
    prepare, DefenseKind, DevicePersonalizer, PersonalizationConfig, PersonalizationMethod,
};
use pelican_mobility::FeatureSpace;
use pelican_nn::{
    fit_lockstep, FitReport, LockstepJob, LockstepOutcome, ModelEnvelope, SequenceModel,
};
use pelican_serve::ShardedRegistry;
use pelican_tensor::{thread_flops_now, FlopGuard};

use crate::audit::{AuditConfig, AuditGate, GateOutcome};
use crate::job::{JobKind, TrainJob};
use crate::pool::{form_cohorts, user_seed, TrainerPool};
use crate::report::{JobOutcome, TrainReport};

/// Pipeline knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Trainer-pool width.
    pub workers: usize,
    /// Base seed every per-user seed derives from.
    pub base_seed: u64,
    /// Personalization method for fresh jobs.
    pub method: PersonalizationMethod,
    /// Device-side training hyperparameters. The `seed` and
    /// `train.shuffle_seed` fields are overridden per user.
    pub personalization: PersonalizationConfig,
    /// The device↔cloud link paid for each general-model download.
    pub link: NetworkLink,
    /// Red-team configuration of the audit gate.
    pub audit: AuditConfig,
    /// Lockstep cohort size: `0` or `1` dispatches per-user jobs one at a
    /// time (the classic path); `B ≥ 2` groups up to `B` consecutive
    /// same-shape jobs into one cohort that a worker trains together
    /// through the fused [`pelican_nn::fit_lockstep`] kernels. Trained
    /// weights, fit reports and simulated durations are bit-identical for
    /// every value (see [`crate::pool::form_cohorts`] for the contract);
    /// only throughput changes.
    pub cohort: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            base_seed: 42,
            method: PersonalizationMethod::TlFeatureExtract,
            personalization: PersonalizationConfig::default(),
            link: NetworkLink::wifi(),
            audit: AuditConfig::default(),
            cohort: 0,
        }
    }
}

/// What a worker sends down the publication channel for one finished job.
struct Candidate {
    index: usize,
    user_id: usize,
    envelope: ModelEnvelope,
    gate: GateOutcome,
    fit: FitReport,
    warm: bool,
    started: Instant,
    train_simulated: Duration,
    audit_simulated: Duration,
}

/// The fleet-training pipeline.
#[derive(Debug, Clone)]
pub struct FleetTrainer {
    config: PipelineConfig,
    gate: AuditGate,
}

impl FleetTrainer {
    /// Creates a pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` is zero or the audit configuration is
    /// inconsistent (see [`AuditGate::new`]).
    pub fn new(config: PipelineConfig) -> Self {
        assert!(config.workers > 0, "pipeline needs at least one worker");
        let gate = AuditGate::new(config.audit.clone());
        Self { config, gate }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// A personalizer with this user's derived seeds (stream 0 for layer
    /// init, stream 1 for epoch shuffling).
    fn personalizer_for(&self, user_id: usize) -> DevicePersonalizer {
        let mut cfg = self.config.personalization.clone();
        cfg.seed = user_seed(self.config.base_seed, user_id as u64, 0);
        cfg.train = cfg.train.reseeded(user_seed(self.config.base_seed, user_id as u64, 1));
        DevicePersonalizer::new(cfg, self.config.link)
    }

    /// The pipeline's audit gate — shared with callers (like the live
    /// personalization loop) that audit outside [`FleetTrainer::run`].
    pub fn gate(&self) -> &AuditGate {
        &self.gate
    }

    /// Trains one candidate model (fresh personalization or warm-start
    /// update). Returns the undefended candidate and its fit report.
    ///
    /// This is the single-job entry point the streaming loop re-trains
    /// through: a [`JobKind::WarmStart`] job decodes the published
    /// envelope, strips its serving-time defense, and incrementally
    /// updates the weights on the user's fresh samples — with the exact
    /// per-user seeds [`FleetTrainer::run`] would use, so a re-train is
    /// bit-identical no matter which caller drives it.
    pub fn train_candidate(
        &self,
        general: &ModelEnvelope,
        job: &TrainJob,
    ) -> (SequenceModel, FitReport) {
        let personalizer = self.personalizer_for(job.user_id);
        match &job.kind {
            JobKind::Fresh => {
                let outcome = personalizer
                    .personalize(general, &job.train, self.config.method)
                    .expect("freshly encoded general envelope always decodes");
                (outcome.model, outcome.fit)
            }
            JobKind::WarmStart { envelope } => {
                let mut model = envelope.decode().expect("published envelope always decodes");
                // The deployed defense is serving-time state, not training
                // state: strip it so warm training sees clean logits; the
                // gate re-decides the defense from scratch below.
                DefenseKind::None.apply(&mut model);
                let (fit, _usage) = personalizer.update(&mut model, &job.train);
                (model, fit)
            }
        }
    }

    /// Trains a whole cohort of jobs in lockstep through the fused
    /// batched kernels, returning each job's candidate model, fit report
    /// and device-tier resource usage **in job order**.
    ///
    /// Per job this is bit-identical to [`FleetTrainer::train_candidate`]
    /// wrapped in a device-tier measurement: model construction consumes
    /// each user's init RNG exactly as the sequential path would, training
    /// runs through [`pelican_nn::fit_lockstep`] (whose kernels preserve
    /// the sequential accumulation order and FLOP counts), and the usage
    /// is rebuilt from per-user FLOP deltas with [`usage_of`] — so the
    /// simulated durations the network replay consumes do not depend on
    /// the cohort size.
    pub fn train_candidates_lockstep(
        &self,
        general: &ModelEnvelope,
        jobs: &[TrainJob],
    ) -> Vec<(SequenceModel, FitReport, ResourceUsage)> {
        struct Prep {
            model: SequenceModel,
            config: pelican_nn::TrainConfig,
            flops: u64,
            host: Duration,
            trains: bool,
        }
        // The shared general model is decoded once per cohort instead of
        // once per job: decoding is deterministic (every job sees
        // bit-identical weights) and records no FLOPs (per-user FLOP
        // deltas — and the simulated device durations built from them —
        // are unchanged), so only redundant host-side parsing goes away.
        let general_model = jobs
            .iter()
            .any(|j| matches!(j.kind, JobKind::Fresh))
            .then(|| general.decode().expect("freshly encoded general envelope always decodes"));
        // Phase 1 — per-user model construction, in job order, with the
        // exact seeds `personalizer_for` derives. Construction happens
        // inside the measured window to mirror the sequential
        // `measure_thread` around `train_candidate`.
        let mut preps: Vec<Prep> = Vec::with_capacity(jobs.len());
        for job in jobs {
            let mut cfg = self.config.personalization.clone();
            cfg.seed = user_seed(self.config.base_seed, job.user_id as u64, 0);
            cfg.train = cfg.train.reseeded(user_seed(self.config.base_seed, job.user_id as u64, 1));
            let wall = Instant::now();
            let before = thread_flops_now();
            let (model, trains) = match &job.kind {
                JobKind::Fresh => {
                    let shared =
                        general_model.as_ref().expect("decoded above for cohorts with fresh jobs");
                    let model = prepare(shared, self.config.method, &cfg);
                    (model, self.config.method != PersonalizationMethod::Reuse)
                }
                JobKind::WarmStart { envelope } => {
                    let mut model = envelope.decode().expect("published envelope always decodes");
                    DefenseKind::None.apply(&mut model);
                    (model, true)
                }
            };
            preps.push(Prep {
                model,
                config: cfg.train,
                flops: thread_flops_now().wrapping_sub(before),
                host: wall.elapsed(),
                trains,
            });
        }
        // Phase 2 — fused lockstep training of every job that trains
        // (Reuse jobs ship the prepared model untrained, as sequentially).
        let mut trained_at = Vec::new();
        let mut lockstep: Vec<LockstepJob> = Vec::new();
        for ((i, prep), job) in preps.iter_mut().enumerate().zip(jobs) {
            if prep.trains {
                trained_at.push(i);
                let config = prep.config.clone();
                lockstep.push(LockstepJob { model: &mut prep.model, samples: &job.train, config });
            }
        }
        let outcomes = fit_lockstep(&mut lockstep);
        drop(lockstep);
        let mut fits: Vec<Option<LockstepOutcome>> = jobs.iter().map(|_| None).collect();
        for (i, outcome) in trained_at.into_iter().zip(outcomes) {
            fits[i] = Some(outcome);
        }
        preps
            .into_iter()
            .zip(fits)
            .map(|(prep, outcome)| {
                let (fit, flops, host) = match outcome {
                    Some(o) => (o.fit, prep.flops + o.flops, prep.host + o.host_elapsed),
                    None => (
                        FitReport { epoch_losses: Vec::new(), steps: 0, samples_per_epoch: 0 },
                        prep.flops,
                        prep.host,
                    ),
                };
                (prep.model, fit, usage_of(ComputeTier::Device, flops, host))
            })
            .collect()
    }

    /// Runs the pipeline over a cohort: personalizes every job in
    /// parallel, audits each candidate, and publishes audited envelopes
    /// into `registry` as they clear the gate. Returns the per-job
    /// outcomes (job order) plus throughput/latency/audit aggregates.
    ///
    /// With [`PipelineConfig::cohort`] ≥ 2 the pool steals whole lockstep
    /// cohorts instead of single jobs; everything in the report except
    /// wall-clock numbers (and publication versions under >1 workers) is
    /// bit-identical either way.
    pub fn run(
        &self,
        general: &SequenceModel,
        space: &FeatureSpace,
        jobs: &[TrainJob],
        registry: &ShardedRegistry,
    ) -> TrainReport {
        let wall = Instant::now();
        let flop_guard = FlopGuard::start();
        let general_envelope = ModelEnvelope::encode(general);

        let mut outcomes: Vec<Option<JobOutcome>> = jobs.iter().map(|_| None).collect();
        let pool = TrainerPool::new(self.config.workers);
        // Publisher side, on the calling thread: hot-swap each audited
        // envelope the moment it arrives, concurrently with the
        // still-training workers.
        let mut publish = |c: Candidate| {
            let Candidate {
                index,
                user_id,
                envelope,
                gate,
                fit,
                warm,
                started,
                train_simulated,
                audit_simulated,
            } = c;
            let envelope_bytes = envelope.len();
            let version = registry.enroll_envelope(user_id, envelope);
            let outcome = JobOutcome {
                user_id,
                version,
                warm,
                gate,
                fit,
                enroll_latency: started.elapsed(),
                train_simulated,
                audit_simulated,
                envelope_bytes,
            };
            outcomes[index] = Some(outcome);
        };
        if self.config.cohort > 1 {
            // Lockstep dispatch: the steal unit is a cohort of consecutive
            // same-shape jobs. Warm jobs key on envelope length (a fixed
            // byte width per architecture); a key collision would only
            // merge cohorts, never change any per-job result — the fused
            // kernels are per-user and shape-agnostic.
            let cohorts = form_cohorts(jobs, self.config.cohort, |job| match &job.kind {
                JobKind::Fresh => 0,
                JobKind::WarmStart { envelope } => 1 | ((envelope.len() as u64) << 1),
            });
            pool.run_streaming(
                &cohorts,
                |_, range| {
                    let chunk = &jobs[range.clone()];
                    let started = Instant::now();
                    let trained = self.train_candidates_lockstep(&general_envelope, chunk);
                    chunk
                        .iter()
                        .zip(trained)
                        .enumerate()
                        .map(|(off, (job, (candidate, fit, train_usage)))| {
                            let ((published, gate), audit_usage) =
                                measure_thread(ComputeTier::Device, || {
                                    self.gate.admit(candidate, space, &job.subject)
                                });
                            Candidate {
                                index: range.start + off,
                                user_id: job.user_id,
                                envelope: ModelEnvelope::encode(&published),
                                gate,
                                fit,
                                warm: job.is_warm(),
                                started,
                                train_simulated: train_usage.simulated,
                                audit_simulated: audit_usage.simulated,
                            }
                        })
                        .collect::<Vec<Candidate>>()
                },
                |batch| batch.into_iter().for_each(&mut publish),
            );
        } else {
            pool.run_streaming(
                jobs,
                // Worker side: steal a job, train, audit, hand the audited
                // envelope to the publication channel.
                |index, job| {
                    let started = Instant::now();
                    // Per-thread measurement: each job runs entirely on one
                    // worker, so its simulated device cost is exact and
                    // bit-identical for any pool width — the input the
                    // network simulation replays.
                    let ((candidate, fit), train_usage) =
                        measure_thread(ComputeTier::Device, || {
                            self.train_candidate(&general_envelope, job)
                        });
                    let ((published, gate), audit_usage) =
                        measure_thread(ComputeTier::Device, || {
                            self.gate.admit(candidate, space, &job.subject)
                        });
                    Candidate {
                        index,
                        user_id: job.user_id,
                        envelope: ModelEnvelope::encode(&published),
                        gate,
                        fit,
                        warm: job.is_warm(),
                        started,
                        train_simulated: train_usage.simulated,
                        audit_simulated: audit_usage.simulated,
                    }
                },
                &mut publish,
            );
        }

        TrainReport::new(
            self.config.workers,
            outcomes
                .into_iter()
                .map(|o| o.expect("every job was trained, audited and published"))
                .collect(),
            wall.elapsed(),
            flop_guard.stop(),
        )
    }
}

/// Convenience wrapper: personalize, audit and publish a cohort, then
/// report. Equivalent to `FleetTrainer::new(config).run(..)`.
pub fn run_pipeline(
    config: PipelineConfig,
    general: &SequenceModel,
    space: &FeatureSpace,
    jobs: &[TrainJob],
    registry: &ShardedRegistry,
) -> TrainReport {
    FleetTrainer::new(config).run(general, space, jobs, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::cohort_jobs;
    use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
    use pelican_nn::TrainConfig;
    use pelican_serve::RegistryConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_setting() -> (SequenceModel, pelican_mobility::MobilityDataset, Vec<TrainJob>) {
        let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 13)
            .build(SpatialLevel::Building);
        let mut rng = StdRng::seed_from_u64(13);
        let general = SequenceModel::general_lstm(
            dataset.space.dim(),
            12,
            dataset.n_locations(),
            0.1,
            &mut rng,
        );
        let n = dataset.users.len();
        let jobs = cohort_jobs(&dataset, (n - 2)..n, 0.8);
        (general, dataset, jobs)
    }

    fn fast_config(workers: usize) -> PipelineConfig {
        PipelineConfig {
            workers,
            personalization: PersonalizationConfig {
                train: TrainConfig { epochs: 2, ..TrainConfig::default() },
                hidden_dim: 12,
                ..PersonalizationConfig::default()
            },
            audit: AuditConfig { max_instances: 3, ..AuditConfig::default() },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn pipeline_publishes_every_job() {
        let (general, dataset, jobs) = tiny_setting();
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        let report = run_pipeline(fast_config(2), &general, &dataset.space, &jobs, &registry);
        assert_eq!(report.outcomes.len(), jobs.len());
        let stats = registry.stats();
        assert_eq!(stats.cold_models, jobs.len());
        assert_eq!(stats.publishes, jobs.len() as u64);
        for (job, outcome) in jobs.iter().zip(&report.outcomes) {
            assert_eq!(outcome.user_id, job.user_id);
            assert!(registry.is_enrolled(job.user_id));
            assert_eq!(registry.version_of(job.user_id), Some(outcome.version));
            assert!(outcome.fit.steps > 0);
        }
        assert!(report.flops > 0);
    }

    #[test]
    fn lockstep_cohorts_match_sequential_dispatch_bitwise() {
        let (general, dataset, _) = tiny_setting();
        let n = dataset.users.len();
        let jobs = cohort_jobs(&dataset, 0..n, 0.8);
        assert!(jobs.len() >= 3, "need a multi-job fleet to exercise cohorts");

        let run_with = |cohort: usize, workers: usize| {
            let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
            let config = PipelineConfig { cohort, ..fast_config(workers) };
            let report = FleetTrainer::new(config).run(&general, &dataset.space, &jobs, &registry);
            let envelopes: Vec<ModelEnvelope> = jobs
                .iter()
                .map(|j| ModelEnvelope::encode(&registry.get(j.user_id).unwrap().0))
                .collect();
            (report, envelopes)
        };

        let (seq_report, seq_envelopes) = run_with(0, 1);
        for (cohort, workers) in [(2, 1), (3, 2), (64, 2)] {
            let (report, envelopes) = run_with(cohort, workers);
            assert_eq!(envelopes, seq_envelopes, "published weights diverged at cohort {cohort}");
            for (a, b) in seq_report.outcomes.iter().zip(&report.outcomes) {
                assert_eq!(a.user_id, b.user_id);
                assert_eq!(a.fit, b.fit, "fit report diverged at cohort {cohort}");
                assert_eq!(a.gate, b.gate, "gate verdict diverged at cohort {cohort}");
                assert_eq!(
                    a.train_simulated, b.train_simulated,
                    "simulated training duration diverged at cohort {cohort}"
                );
                assert_eq!(a.audit_simulated, b.audit_simulated);
                assert_eq!(a.envelope_bytes, b.envelope_bytes);
            }
            assert_eq!(report.flops, seq_report.flops, "FLOP parity broken at cohort {cohort}");
        }
    }

    #[test]
    fn lockstep_warm_starts_match_sequential_dispatch_bitwise() {
        let (general, dataset, jobs) = tiny_setting();
        let trainer = FleetTrainer::new(fast_config(1));
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        trainer.run(&general, &dataset.space, &jobs, &registry);
        let warm_jobs: Vec<TrainJob> = jobs
            .iter()
            .map(|j| {
                let decoded = registry.get(j.user_id).unwrap().0;
                j.clone().into_warm(ModelEnvelope::encode(&decoded))
            })
            .collect();

        let general_envelope = ModelEnvelope::encode(&general);
        let lockstep = trainer.train_candidates_lockstep(&general_envelope, &warm_jobs);
        for (job, (model, fit, usage)) in warm_jobs.iter().zip(lockstep) {
            let ((seq_model, seq_fit), seq_usage) = measure_thread(ComputeTier::Device, || {
                trainer.train_candidate(&general_envelope, job)
            });
            assert_eq!(ModelEnvelope::encode(&seq_model), ModelEnvelope::encode(&model));
            assert_eq!(seq_fit, fit);
            assert_eq!(seq_usage.flops, usage.flops, "warm-start FLOP parity");
            assert_eq!(seq_usage.simulated, usage.simulated);
        }
    }

    #[test]
    fn warm_start_republishes_with_a_higher_version() {
        let (general, dataset, jobs) = tiny_setting();
        let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
        let trainer = FleetTrainer::new(fast_config(2));
        let first = trainer.run(&general, &dataset.space, &jobs, &registry);

        let warm_jobs: Vec<TrainJob> = jobs
            .iter()
            .map(|j| {
                let (_, lookup) = registry.get(j.user_id).unwrap();
                assert_ne!(lookup, pelican_serve::Lookup::Fallback);
                let decoded = registry.get(j.user_id).unwrap().0;
                j.clone().into_warm(ModelEnvelope::encode(&decoded))
            })
            .collect();
        let second = trainer.run(&general, &dataset.space, &warm_jobs, &registry);
        for (a, b) in first.outcomes.iter().zip(&second.outcomes) {
            assert!(!a.warm && b.warm);
            assert!(b.version > a.version, "hot-swap bumps the publication version");
            assert_eq!(registry.version_of(b.user_id), Some(b.version));
        }
        assert_eq!(registry.stats().cold_models, jobs.len(), "updates replace, not add");
    }
}

//! Work-stealing trainer pool: deterministic parallel execution of
//! per-user jobs.
//!
//! Personalization jobs are embarrassingly parallel — each user's model
//! depends only on the general model and that user's private data — but
//! their *costs* vary wildly (users have different history sizes), so a
//! static partition leaves workers idle. The pool instead keeps one
//! shared queue behind an atomic cursor: an idle worker steals the next
//! unclaimed job, whatever thread would nominally "own" it, which is the
//! classic self-scheduling work-stealing discipline without the
//! per-worker deques a general fork-join runtime needs.
//!
//! Determinism is preserved by construction: a job's *result* is a pure
//! function of the job itself (per-user seeds are derived with
//! [`user_seed`], never from thread identity or steal order), and results
//! are indexed by job position, so the output is bit-identical for any
//! worker count — the property the parallel-vs-sequential tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A fixed-size pool of trainer workers over a shared job queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainerPool {
    workers: usize,
}

impl TrainerPool {
    /// Creates a pool with `workers` threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "trainer pool needs at least one worker");
        Self { workers }
    }

    /// Number of worker threads the pool spawns.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `worker` over every job, streaming each result to `consume`
    /// **on the calling thread** as soon as it is ready (completion
    /// order). This is the pipeline's publication channel: workers train
    /// and audit, the caller publishes while later jobs are still
    /// running. With one worker no threads are spawned — jobs run inline
    /// in order, which doubles as the sequential reference the
    /// determinism tests compare against.
    pub fn run_streaming<J, R, F, C>(&self, jobs: &[J], worker: F, mut consume: C)
    where
        J: Sync,
        R: Send,
        F: Fn(usize, &J) -> R + Sync,
        C: FnMut(R),
    {
        if self.workers == 1 {
            for (i, job) in jobs.iter().enumerate() {
                consume(worker(i, job));
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<R>();
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let worker = &worker;
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    tx.send(worker(i, job)).expect("consumer outlives the workers");
                });
            }
            drop(tx);
            for result in rx {
                consume(result);
            }
        });
    }

    /// Runs `worker` over every job and returns the results in job order
    /// (independent of which worker ran which job or in what order they
    /// finished).
    pub fn run<J, R, F>(&self, jobs: &[J], worker: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(usize, &J) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = jobs.iter().map(|_| None).collect();
        self.run_streaming(jobs, |i, j| (i, worker(i, j)), |(i, r)| slots[i] = Some(r));
        slots.into_iter().map(|slot| slot.expect("every job ran exactly once")).collect()
    }
}

/// Partitions a job list into lockstep cohorts: consecutive runs of at
/// most `cohort` jobs that share a shape key, preserving job order.
///
/// # The dispatch-order contract
///
/// Cohort formation must never reorder *publication instants*, and this
/// helper is written so it cannot:
///
/// * cohorts are **consecutive index ranges** — job `i` is always in a
///   cohort that ends before job `i + 1`'s begins, so iterating cohorts
///   in order and members in range order visits jobs in job order;
/// * a cohort becomes the unit the pool steals (instead of a single
///   job), and within a cohort, results are produced in job order;
/// * each job's *simulated* training duration is bit-identical to its
///   sequential duration (the lockstep kernels record exactly the
///   sequential FLOP counts, measured per user), so replaying a report
///   through the network simulator yields the same publication instants
///   for every `cohort` value and every pool width.
///
/// The regression tests pin this: live-loop and network-replay
/// fingerprints are asserted invariant across cohort sizes and worker
/// counts.
///
/// A `cohort` of 0 or 1 yields one range per job (the sequential
/// dispatch). Jobs with different shape keys never share a cohort — a
/// new key starts a new range even mid-run.
pub fn form_cohorts<J>(
    jobs: &[J],
    cohort: usize,
    mut shape_of: impl FnMut(&J) -> u64,
) -> Vec<std::ops::Range<usize>> {
    let cap = cohort.max(1);
    let mut out = Vec::new();
    let mut start = 0;
    let mut key = None;
    for (i, job) in jobs.iter().enumerate() {
        let k = shape_of(job);
        if i > start && (Some(k) != key || i - start >= cap) {
            out.push(start..i);
            start = i;
        }
        key = Some(k);
    }
    if start < jobs.len() {
        out.push(start..jobs.len());
    }
    out
}

/// Derives a per-user seed from the pipeline's base seed.
///
/// `stream` separates independent uses for the same user (layer init vs.
/// epoch shuffling) so they never correlate. The mix is the workspace's
/// shared splitmix64 ([`pelican_sim::mix64`]) — a bijective avalanche
/// over the packed input, so nearby users get unrelated seeds.
pub fn user_seed(base: u64, user_id: u64, stream: u64) -> u64 {
    pelican_sim::mix64(base ^ user_id.rotate_left(24) ^ stream.rotate_left(48))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_come_back_in_job_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..57).collect();
        let square = |_: usize, j: &u64| j * j;
        let sequential = TrainerPool::new(1).run(&jobs, square);
        for workers in [2, 3, 8] {
            assert_eq!(TrainerPool::new(workers).run(&jobs, square), sequential);
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let jobs: Vec<usize> = (0..40).collect();
        let ran = Mutex::new(Vec::new());
        TrainerPool::new(4).run(&jobs, |i, _| ran.lock().unwrap().push(i));
        let mut ran = ran.into_inner().unwrap();
        ran.sort_unstable();
        assert_eq!(ran, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_consumes_every_result_on_the_calling_thread() {
        let jobs: Vec<usize> = (0..30).collect();
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        TrainerPool::new(4).run_streaming(
            &jobs,
            |_, &j| j * 10,
            |r| {
                assert_eq!(std::thread::current().id(), caller);
                seen.push(r);
            },
        );
        seen.sort_unstable();
        assert_eq!(seen, (0..30).map(|j| j * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out = TrainerPool::new(8).run(&Vec::<u8>::new(), |_, _| 1);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = TrainerPool::new(0);
    }

    #[test]
    fn cohorts_partition_the_job_list_in_order() {
        let jobs: Vec<u64> = vec![0, 0, 0, 0, 0, 1, 1, 0];
        let ranges = form_cohorts(&jobs, 3, |&j| j);
        assert_eq!(ranges, vec![0..3, 3..5, 5..7, 7..8]);
        // The ranges cover every index exactly once, in order.
        let covered: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(covered, (0..jobs.len()).collect::<Vec<_>>());
    }

    #[test]
    fn cohort_of_zero_or_one_is_the_sequential_dispatch() {
        let jobs = [7u64; 5];
        for cohort in [0, 1] {
            let ranges = form_cohorts(&jobs, cohort, |&j| j);
            assert_eq!(ranges.len(), 5, "one range per job");
            assert!(ranges.iter().all(|r| r.len() == 1));
        }
        assert!(form_cohorts(&[] as &[u64], 4, |&j| j).is_empty());
    }

    #[test]
    fn shape_changes_split_cohorts_mid_run() {
        let jobs: Vec<u64> = vec![5, 5, 9, 5, 5];
        let ranges = form_cohorts(&jobs, 10, |&j| j);
        assert_eq!(ranges, vec![0..2, 2..3, 3..5]);
    }

    #[test]
    fn user_seeds_separate_users_and_streams() {
        let mut seen = HashSet::new();
        for user in 0..100u64 {
            for stream in 0..3 {
                assert!(seen.insert(user_seed(42, user, stream)), "seed collision");
            }
        }
        assert_eq!(user_seed(42, 7, 0), user_seed(42, 7, 0), "pure function");
        assert_ne!(user_seed(42, 7, 0), user_seed(43, 7, 0), "base seed matters");
    }
}

//! Network-aware fleet training: replay a pipeline run through the
//! discrete-event simulator.
//!
//! The synchronous pipeline prices the device↔cloud link as a fixed
//! `Duration` per transfer. This module replaces that with
//! [`pelican_sim`]: every cohort device becomes a four-stage sim job —
//! **download** the general envelope over its own (seeded, heterogeneous)
//! link, **train** and **audit** for its exact simulated device-tier
//! durations, then **upload** the published envelope, either over the
//! device's own link or queued on one *shared* cloud uplink. Downloads
//! overlap other devices' training, uploads contend, stragglers straggle,
//! and transfers can time out and retry with backoff.
//!
//! Everything the simulation consumes is deterministic — per-job
//! simulated compute comes from exact per-thread FLOP measurement, link
//! assignment from the fleet seed — so the event trace and every latency
//! split are **bit-identical across trainer-pool widths**, which
//! [`NetTrainReport::fingerprint`] makes cheap to assert.

use pelican_sim::{
    stage_stats, DeviceLink, Discipline, JobStatus, LinkMix, LinkProfile, SimOutcome,
    TransferPolicy,
};
use pelican_tensor::nearest_rank;

use crate::cosim::{cosimulate_fleet, LoopMode};
use crate::report::TrainReport;

/// Where publication uploads go.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UplinkMode {
    /// Each device uploads over its own link — the uncontended baseline.
    PerDevice,
    /// Every device queues its upload on one shared cloud-ingress link.
    Shared {
        /// Shape of the shared uplink.
        profile: LinkProfile,
        /// How contending uploads share it.
        discipline: Discipline,
    },
}

/// Network shape of a fleet-training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Per-device link assignment (wifi/WAN/cellular mix + stragglers).
    pub mix: LinkMix,
    /// Upload routing: per-device or shared-contended.
    pub uplink: UplinkMode,
    /// Timeout/retry policy of general-model downloads.
    pub download: TransferPolicy,
    /// Timeout/retry policy of publication uploads.
    pub upload: TransferPolicy,
    /// Fleet seed for link assignment.
    pub seed: u64,
}

impl Default for NetworkConfig {
    /// A campus mix uploading to one shared fair-share WAN uplink, no
    /// timeouts.
    fn default() -> Self {
        Self {
            mix: LinkMix::campus(),
            uplink: UplinkMode::Shared {
                profile: LinkProfile::wan(),
                discipline: Discipline::FairShare,
            },
            download: TransferPolicy::default(),
            upload: TransferPolicy::default(),
            seed: 0x11EE7,
        }
    }
}

/// One device's simulated enrollment, split into the four components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetEnroll {
    /// The enrolled user.
    pub user_id: usize,
    /// Whether straggler injection degraded this device's link.
    pub straggler: bool,
    /// Link class the device was dealt (`wifi`, `wan`, `cellular`).
    pub link: &'static str,
    /// Contention + retry/backoff delay across both transfers (µs).
    pub queue_us: u64,
    /// Uncontended transfer cost of download + upload (µs).
    pub transfer_us: u64,
    /// Simulated on-device training (µs).
    pub train_us: u64,
    /// Simulated privacy audit (µs).
    pub audit_us: u64,
    /// Release → publication, end to end (µs).
    pub enroll_us: u64,
    /// Transfer attempts spent (2 = no retries anywhere).
    pub attempts: u32,
    /// Whether the device finished (false: retries exhausted).
    pub completed: bool,
}

/// A network-aware fleet-training report.
#[derive(Debug, Clone, PartialEq)]
pub struct NetTrainReport {
    /// Per-device enrollments, in job order.
    pub enrolls: Vec<NetEnroll>,
    /// The raw simulation (trace + per-job stage reports).
    pub sim: SimOutcome,
    /// Enroll latencies of completed devices, sorted once at
    /// construction (like [`TrainReport`]'s latencies) so percentile
    /// queries never re-collect or re-sort.
    sorted_enroll_us: Vec<u64>,
    /// One ascending-sorted vector per [`NetComponent`], completed
    /// devices only (indexed by [`NetComponent::index`]).
    sorted_components_us: [Vec<u64>; 4],
    /// Enroll latencies of completed stragglers, sorted ascending.
    sorted_straggler_us: Vec<u64>,
}

impl NetTrainReport {
    /// Builds a report, sorting every percentile source exactly once.
    fn new(enrolls: Vec<NetEnroll>, sim: SimOutcome) -> Self {
        let completed = || enrolls.iter().filter(|e| e.completed);
        let sorted = |mut xs: Vec<u64>| {
            xs.sort_unstable();
            xs
        };
        let sorted_enroll_us = sorted(completed().map(|e| e.enroll_us).collect());
        let sorted_components_us = [
            sorted(completed().map(|e| e.queue_us).collect()),
            sorted(completed().map(|e| e.transfer_us).collect()),
            sorted(completed().map(|e| e.train_us).collect()),
            sorted(completed().map(|e| e.audit_us).collect()),
        ];
        let sorted_straggler_us =
            sorted(completed().filter(|e| e.straggler).map(|e| e.enroll_us).collect());
        Self { enrolls, sim, sorted_enroll_us, sorted_components_us, sorted_straggler_us }
    }

    /// Determinism fingerprint of the event trace.
    pub fn fingerprint(&self) -> u64 {
        self.sim.fingerprint()
    }

    /// Devices that never published (transfer retries exhausted).
    pub fn timed_out(&self) -> usize {
        self.sim.timed_out()
    }

    /// Straggler devices in the cohort.
    pub fn stragglers(&self) -> usize {
        self.enrolls.iter().filter(|e| e.straggler).count()
    }

    /// Nearest-rank percentile of end-to-end enroll latency over
    /// completed devices (µs).
    pub fn enroll_percentile_us(&self, q: f64) -> u64 {
        nearest_rank(&self.sorted_enroll_us, q).unwrap_or(0)
    }

    /// Nearest-rank percentile of one component over completed devices.
    pub fn component_percentile_us(&self, component: NetComponent, q: f64) -> u64 {
        nearest_rank(&self.sorted_components_us[component.index()], q).unwrap_or(0)
    }

    /// p95 enroll latency of the straggler subset (µs; 0 if none).
    pub fn straggler_p95_us(&self) -> u64 {
        nearest_rank(&self.sorted_straggler_us, 0.95).unwrap_or(0)
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |us: u64| us as f64 / 1e3;
        out.push_str(&format!(
            "{} devices enrolled ({} stragglers, {} timed out), trace {:016x}\n",
            self.enrolls.len(),
            self.stragglers(),
            self.timed_out(),
            self.fingerprint(),
        ));
        out.push_str(&format!(
            "enroll      p50 {:.1} ms  p95 {:.1} ms\n",
            ms(self.enroll_percentile_us(0.50)),
            ms(self.enroll_percentile_us(0.95)),
        ));
        for (name, component) in [
            ("queue", NetComponent::Queue),
            ("transfer", NetComponent::Transfer),
            ("train", NetComponent::Train),
            ("audit", NetComponent::Audit),
        ] {
            out.push_str(&format!(
                "  {name:<9} p50 {:.1} ms  p95 {:.1} ms\n",
                ms(self.component_percentile_us(component, 0.50)),
                ms(self.component_percentile_us(component, 0.95)),
            ));
        }
        let upload = stage_stats(&self.sim, "upload");
        out.push_str(&format!(
            "  uplink    p95 wait {:.1} ms over {} uploads ({} retries)\n",
            ms(upload.wait_p95_us),
            upload.jobs,
            upload.retries,
        ));
        out
    }
}

/// One enroll-latency component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetComponent {
    /// Contention/retry delay on the two transfers.
    Queue,
    /// Uncontended transfer cost.
    Transfer,
    /// On-device training.
    Train,
    /// Privacy audit.
    Audit,
}

impl NetComponent {
    /// Slot in [`NetTrainReport`]'s pre-sorted component arrays.
    fn index(self) -> usize {
        match self {
            NetComponent::Queue => 0,
            NetComponent::Transfer => 1,
            NetComponent::Train => 2,
            NetComponent::Audit => 3,
        }
    }
}

/// Replays a pipeline run through the network simulator.
///
/// `report` supplies the deterministic per-job inputs (simulated train
/// and audit durations, upload sizes); `general_bytes` is the size of
/// the general envelope every device downloads. All devices release at
/// t = 0 — device-side work is inherently fleet-parallel; the trainer
/// pool's width is a host-compute knob that must not (and does not)
/// change the simulated timeline.
///
/// This is the single-round open-loop view, implemented as
/// [`cosimulate_fleet`] with one round — multi-round studies with
/// failure feedback live there.
pub fn simulate_fleet_network(
    report: &TrainReport,
    general_bytes: u64,
    config: &NetworkConfig,
) -> NetTrainReport {
    let devices: Vec<DeviceLink> =
        report.outcomes.iter().map(|o| config.mix.assign(config.seed, o.user_id as u64)).collect();
    // One round, so open vs. closed is moot; jobs land in device order.
    let sim = cosimulate_fleet(&[report], general_bytes, config, LoopMode::Open).sim;
    let enrolls = sim
        .jobs()
        .zip(&devices)
        .zip(&report.outcomes)
        .map(|((job, device), outcome)| {
            let (mut queue_us, mut transfer_us, mut attempts) = (0, 0, 0);
            let (mut train_us, mut audit_us) = (0, 0);
            for s in job.stages() {
                match s.label {
                    "download" | "upload" => {
                        queue_us += s.wait_us();
                        transfer_us += s.ideal_us;
                        attempts += s.attempts;
                    }
                    "train" => train_us = s.span_us(),
                    "audit" => audit_us = s.span_us(),
                    _ => {}
                }
            }
            NetEnroll {
                user_id: outcome.user_id,
                straggler: device.straggler,
                link: device.profile.name,
                queue_us,
                transfer_us,
                train_us,
                audit_us,
                enroll_us: job.total_us(),
                attempts,
                completed: job.status() == JobStatus::Completed,
            }
        })
        .collect();
    NetTrainReport::new(enrolls, sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{GateOutcome, GateVerdict};
    use crate::report::JobOutcome;
    use pelican::DefenseKind;
    use pelican_nn::FitReport;
    use pelican_sim::StragglerConfig;
    use std::time::Duration;

    /// A synthetic pipeline report: deterministic per-job durations and
    /// upload sizes without paying for real training.
    fn synthetic_report(n: usize) -> TrainReport {
        let outcomes: Vec<JobOutcome> = (0..n)
            .map(|i| JobOutcome {
                user_id: 100 + i,
                version: i as u64 + 1,
                warm: false,
                gate: GateOutcome {
                    verdict: GateVerdict::Passed,
                    defense: DefenseKind::None,
                    rungs_climbed: 0,
                    initial_leakage: 0.1,
                    final_leakage: 0.1,
                    audits: 1,
                    queries: 10,
                    cached: 0,
                    cache_misses: 10,
                },
                fit: FitReport { epoch_losses: vec![0.5], steps: 4, samples_per_epoch: 4 },
                enroll_latency: Duration::from_millis(5),
                train_simulated: Duration::from_millis(4 + i as u64 % 3),
                audit_simulated: Duration::from_millis(2),
                envelope_bytes: 60_000,
            })
            .collect();
        TrainReport::new(2, outcomes, Duration::from_millis(40), 1_000)
    }

    fn wifi_fleet(uplink: UplinkMode) -> NetworkConfig {
        NetworkConfig { mix: LinkMix::all_wifi(), uplink, seed: 5, ..NetworkConfig::default() }
    }

    #[test]
    fn components_partition_the_enroll_latency_exactly() {
        let report = synthetic_report(6);
        let net = simulate_fleet_network(&report, 80_000, &NetworkConfig::default());
        assert_eq!(net.enrolls.len(), 6);
        assert_eq!(net.timed_out(), 0);
        for e in &net.enrolls {
            assert!(e.completed);
            assert_eq!(
                e.queue_us + e.transfer_us + e.train_us + e.audit_us,
                e.enroll_us,
                "the four components tile the end-to-end latency"
            );
            assert_eq!(e.attempts, 2, "no timeouts ⇒ one attempt per transfer");
        }
    }

    #[test]
    fn shared_uplink_contention_raises_p95_strictly() {
        let report = synthetic_report(8);
        let baseline = simulate_fleet_network(&report, 80_000, &wifi_fleet(UplinkMode::PerDevice));
        let contended = simulate_fleet_network(
            &report,
            80_000,
            &wifi_fleet(UplinkMode::Shared {
                profile: LinkProfile::wifi(),
                discipline: Discipline::Fifo,
            }),
        );
        // Same link class, so any increase is pure queueing — and with
        // every device releasing at t = 0, uploads must collide.
        assert!(
            contended.enroll_percentile_us(0.95) > baseline.enroll_percentile_us(0.95),
            "contended {} µs must beat uncontended {} µs",
            contended.enroll_percentile_us(0.95),
            baseline.enroll_percentile_us(0.95)
        );
        assert!(contended.component_percentile_us(NetComponent::Queue, 0.95) > 0);
        assert_eq!(baseline.component_percentile_us(NetComponent::Queue, 0.95), 0);
        // Train/audit components are untouched by the network shape.
        for q in [0.5, 0.95] {
            assert_eq!(
                contended.component_percentile_us(NetComponent::Train, q),
                baseline.component_percentile_us(NetComponent::Train, q)
            );
        }
    }

    #[test]
    fn the_simulated_timeline_is_independent_of_pool_width() {
        // Two reports that differ only in schedule-dependent fields
        // (worker count, host wall clock, versions) must replay to
        // bit-identical traces.
        let a = synthetic_report(5);
        let mut outcomes = a.outcomes.clone();
        for o in &mut outcomes {
            o.version += 7; // publication order differs across widths
            o.enroll_latency = Duration::from_millis(99); // host time differs
        }
        let b = TrainReport::new(8, outcomes, Duration::from_millis(123), 1_000);
        let config = NetworkConfig::default();
        let net_a = simulate_fleet_network(&a, 80_000, &config);
        let net_b = simulate_fleet_network(&b, 80_000, &config);
        assert_eq!(net_a.fingerprint(), net_b.fingerprint());
        assert_eq!(net_a.sim.trace, net_b.sim.trace);
        assert_eq!(net_a.enrolls, net_b.enrolls);
    }

    #[test]
    fn stragglers_are_marked_and_slower() {
        let report = synthetic_report(24);
        let mix =
            LinkMix::all_wifi().with_stragglers(StragglerConfig { fraction: 0.3, slowdown: 20.0 });
        let config = NetworkConfig {
            mix,
            uplink: UplinkMode::PerDevice,
            seed: 3,
            ..NetworkConfig::default()
        };
        let net = simulate_fleet_network(&report, 80_000, &config);
        let stragglers = net.stragglers();
        assert!(stragglers > 0, "30% injection over 24 devices");
        assert!(stragglers < 24);
        let worst_normal =
            net.enrolls.iter().filter(|e| !e.straggler).map(|e| e.enroll_us).max().unwrap();
        for e in net.enrolls.iter().filter(|e| e.straggler) {
            assert!(
                e.enroll_us > worst_normal,
                "a 20x straggler ({} µs) must trail every normal device ({} µs)",
                e.enroll_us,
                worst_normal
            );
        }
        assert!(net.straggler_p95_us() > worst_normal);
    }

    #[test]
    fn tight_timeouts_without_retries_fail_stragglers() {
        let report = synthetic_report(16);
        let mix =
            LinkMix::all_wifi().with_stragglers(StragglerConfig { fraction: 0.25, slowdown: 50.0 });
        // Downloads must finish within 40 ms: fine on wifi (~72 kB in
        // ~14 ms), hopeless at 50x slowdown.
        let config = NetworkConfig {
            mix,
            uplink: UplinkMode::PerDevice,
            download: TransferPolicy {
                timeout_us: Some(40_000),
                retry: pelican_sim::RetryPolicy::none(),
            },
            seed: 3,
            ..NetworkConfig::default()
        };
        let net = simulate_fleet_network(&report, 80_000, &config);
        assert_eq!(net.timed_out(), net.stragglers(), "exactly the stragglers fail");
        assert!(net.timed_out() > 0);
        let completed = net.enrolls.iter().filter(|e| e.completed).count();
        assert_eq!(completed + net.timed_out(), 16);
        assert!(!net.render().is_empty());
    }
}

//! **`pelican-train`** — parallel fleet personalization with a
//! privacy-audit gate and hot-swap publication.
//!
//! The paper personalizes one model per user on that user's device and
//! evaluates privacy attacks against the models *after* deployment. The
//! serving tier ([`pelican_serve`]) already scales the query side of that
//! story; this crate scales the *training* side toward the ROADMAP's
//! north star — personalizing an entire fleet as fast as the hardware
//! allows, with no model reaching production unaudited:
//!
//! * [`pool`] — a work-stealing trainer pool over `std::thread` +
//!   channels. Per-user jobs are stolen from a shared queue; per-user
//!   seeds derive from [`pool::user_seed`], so parallel output is
//!   **bit-identical** to sequential output for any worker count. With a
//!   [`pipeline::PipelineConfig::cohort`] size set, the steal unit becomes
//!   a [`pool::form_cohorts`] cohort of same-shape jobs trained together
//!   through the fused [`pelican_nn::fit_lockstep`] kernels — same bits,
//!   higher throughput.
//! * [`job`] — per-user [`job::TrainJob`]s: fresh personalization
//!   (Fig. 4 step 2, via [`pelican::DevicePersonalizer::personalize`]) or
//!   warm-start updates (step 4, via
//!   [`pelican::DevicePersonalizer::update`]) from the user's currently
//!   published envelope.
//! * [`audit`] — the privacy-audit gate: every candidate model is
//!   attacked with the [`pelican_attacks`] suite before release, and the
//!   gate escalates the deployed defense (a ladder of
//!   [`pelican::DefenseKind`] rungs) and re-audits whenever leakage
//!   exceeds the provider's budget.
//! * [`pipeline`] — [`pipeline::FleetTrainer`] wires the three together
//!   and hot-swaps audited envelopes into a shared
//!   [`pelican_serve::ShardedRegistry`] through its `&self` publication
//!   path, so serving continues while the fleet retrains.
//! * [`report`] — throughput (models/s vs. worker count), audit
//!   pass/escalate/exhaust counts and end-to-end enroll latency.
//! * [`rollback`] — the durable registry as an operational tool: a
//!   fleet-wide bad publication is canary-detected and rolled back to
//!   the prior retained version over contended links while queries keep
//!   flowing, with the staleness window measured on the virtual clock.
//! * [`staleness`] — the detection→last-swap window measurement itself,
//!   shared with any other flow that swaps a fleet back (e.g. the A/B
//!   losing-arm flip in `pelican-abx`).
//! * [`network`] — replays a pipeline run through the [`pelican_sim`]
//!   discrete-event simulator: downloads overlap training across the
//!   fleet, uploads queue on a shared uplink, stragglers straggle, and
//!   the whole timeline is bit-identical across pool widths.
//! * [`cosim`] — closes the loop over multiple training rounds: network
//!   outcomes feed back (a timed-out download means the device never
//!   trains that round, retries reorder warm-start arrivals, audit
//!   compute and publication uploads share the same virtual clock),
//!   with open-loop replay and closed-loop co-simulation bit-identical
//!   exactly when nothing fails.
//!
//! # Example
//!
//! ```
//! use pelican_mobility::{CampusConfig, DatasetBuilder, Scale, SpatialLevel};
//! use pelican_nn::SequenceModel;
//! use pelican_serve::{RegistryConfig, ShardedRegistry};
//! use pelican_train::{cohort_jobs, run_pipeline, PipelineConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dataset = DatasetBuilder::new(CampusConfig::for_scale(Scale::Tiny), 7)
//!     .build(SpatialLevel::Building);
//! let mut rng = StdRng::seed_from_u64(7);
//! let general = SequenceModel::general_lstm(
//!     dataset.space.dim(), 8, dataset.n_locations(), 0.1, &mut rng);
//!
//! // Personalize one user in parallel-capable machinery, audit the
//! // candidate, and hot-swap it into the serving registry.
//! let n = dataset.users.len();
//! let jobs = cohort_jobs(&dataset, (n - 1)..n, 0.8);
//! let registry = ShardedRegistry::new(general.clone(), RegistryConfig::default());
//! let config = PipelineConfig {
//!     workers: 2,
//!     personalization: pelican::PersonalizationConfig {
//!         train: pelican_nn::TrainConfig { epochs: 1, ..Default::default() },
//!         hidden_dim: 8,
//!         ..Default::default()
//!     },
//!     ..PipelineConfig::default()
//! };
//! let report = run_pipeline(config, &general, &dataset.space, &jobs, &registry);
//! assert_eq!(report.outcomes.len(), jobs.len());
//! assert!(registry.is_enrolled(jobs[0].user_id));
//! ```

pub mod audit;
pub mod cosim;
pub mod job;
pub mod network;
pub mod pipeline;
pub mod pool;
pub mod report;
pub mod rollback;
pub mod staleness;

pub use audit::{AuditConfig, AuditGate, AuditSubject, GateOutcome, GateVerdict};
// The cache type `AuditGate::admit_with_cache` hands back; re-exported so
// incremental re-audit callers need no direct `pelican_attacks` edge.
pub use cosim::{cosimulate_fleet, CosimReport, LoopMode, Publication, RoundRecord};
pub use job::{cohort_jobs, JobKind, TrainJob};
pub use network::{
    simulate_fleet_network, NetComponent, NetEnroll, NetTrainReport, NetworkConfig, UplinkMode,
};
pub use pelican_attacks::LogitCache;
pub use pipeline::{run_pipeline, FleetTrainer, PipelineConfig};
pub use pool::{form_cohorts, user_seed, TrainerPool};
pub use report::{JobOutcome, TrainReport};
pub use rollback::{run_rollback_study, RollbackConfig, RollbackOutcome, RollbackReport};
pub use staleness::{count_degraded_after_swap, StalenessWindow};

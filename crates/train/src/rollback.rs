//! Live rollback under traffic: the durable registry's version history
//! as an *operational* tool, measured on the simulation's virtual clock.
//!
//! The scenario reproduces the fleet operator's worst Tuesday. Every
//! user's personalized model is published (v1) through a store-backed
//! [`ShardedRegistry`], and queries flow continuously. At a known
//! virtual instant a fleet-wide re-publication goes out with an
//! over-aggressive noise postprocess — the models still decode and
//! serve, but their top-1 answers are wrong (exactly the failure mode a
//! type-check can't catch). A canary probe running on a timer compares
//! served top-1 answers against a held-back v1 reference; when
//! agreement drops below the floor, the operator pushes the prior
//! envelope back to every serving replica over one **contended** egress
//! link, and each push completion triggers
//! [`ShardedRegistry::rollback`] — re-publishing the retained v1 bytes
//! under a fresh monotone version. Queries keep flowing the whole time.
//!
//! The quantity of interest is the **staleness window**: the span from
//! detection to the last replica swap, which the shared egress link
//! stretches as pushes queue behind each other. [`RollbackReport`]
//! carries that window, the degraded-answer counts before/after, the
//! push queueing percentiles, and the run's determinism fingerprint.
//!
//! Everything is deterministic: models, probes, the regression noise,
//! and the event schedule are pure functions of [`RollbackConfig`].

use std::sync::Arc;

use pelican_nn::{Postprocess, SequenceModel, Step};
use pelican_serve::{RegistryConfig, ShardedRegistry};
use pelican_sim::{
    mix64, stage_stats, Discipline, JobReport, JobSpec, LinkProfile, LinkSpec, RetryPolicy,
    SimControl, Simulator, Stage, TransferPolicy, Workload,
};
use pelican_store::{EnvelopeStore, MemBackend, StoreConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Job-id namespacing: kind in the top byte, payload below (the same
/// convention as `pelican_serve::simserve` and `pelican_train::cosim`).
const KIND_SHIFT: u32 = 56;
const KIND_QUERY: u64 = 1;
const KIND_REGRESS: u64 = 2;
const KIND_CANARY: u64 = 3;
const KIND_PUSH: u64 = 4;
const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

fn job_id(kind: u64, payload: u64) -> u64 {
    debug_assert!(payload <= PAYLOAD_MASK);
    (kind << KIND_SHIFT) | payload
}

/// The answer a client acts on: argmax of the *served confidences*
/// (`predict_proba`), which is where the postprocess applies — a raw
/// top-k over logits would never see the regression. Ties break to the
/// lowest class, deterministically.
fn served_top1(model: &SequenceModel, probe: &[Step]) -> usize {
    let probs = model.predict_proba(probe);
    let mut best = 0;
    for (i, p) in probs.iter().enumerate() {
        if *p > probs[best] {
            best = i;
        }
    }
    best
}

/// Everything that shapes one rollback study. All fields feed the
/// deterministic schedule; two runs with equal configs produce equal
/// [`RollbackReport`]s, fingerprint included.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollbackConfig {
    /// Fleet size (one personalized model per user).
    pub users: usize,
    /// Registry/store shard count.
    pub shards: usize,
    /// Sigma of the Gaussian noise the bad publication applies to the
    /// output distribution — large enough to scramble top-1 answers.
    pub regression_sigma: f32,
    /// Virtual instant the regressed fleet publication lands (µs).
    pub regress_at_us: u64,
    /// Canary probe cadence (µs); the first canary fires one interval in.
    pub canary_interval_us: u64,
    /// Detection threshold: rollback triggers when served-vs-reference
    /// top-1 agreement drops below this fraction.
    pub canary_agreement_floor: f64,
    /// Probe sequences per user in the canary set.
    pub canary_probes: usize,
    /// Total query jobs; user `i % users` is queried at `i * gap`.
    pub queries: usize,
    /// Inter-query gap (µs). `queries * query_gap_us` is also the
    /// horizon past which an undetected regression stops the canary.
    pub query_gap_us: u64,
    /// Serve-side compute occupancy per query (µs).
    pub query_compute_us: u64,
    /// Bytes of one rollback push (envelope + transport framing).
    pub push_bytes: u64,
    /// The one shared egress path every push contends on.
    pub egress: LinkProfile,
    /// How concurrent pushes share the egress link. FIFO serializes the
    /// fleet (the widest staleness window); fair-share drains all
    /// replicas together.
    pub egress_discipline: Discipline,
    /// Compress envelope payloads in the durable log.
    pub compress_log: bool,
    /// Master seed for models, probes and the regression noise.
    pub seed: u64,
}

impl Default for RollbackConfig {
    fn default() -> Self {
        Self {
            users: 10,
            shards: 4,
            regression_sigma: 2.5,
            regress_at_us: 37_000,
            canary_interval_us: 20_000,
            canary_agreement_floor: 0.9,
            canary_probes: 4,
            queries: 600,
            query_gap_us: 1_500,
            query_compute_us: 200,
            push_bytes: 64 * 1024,
            egress: LinkProfile::wan(),
            egress_discipline: Discipline::Fifo,
            compress_log: false,
            seed: 0x0711,
        }
    }
}

/// What one rollback-under-traffic run measured, all times virtual (µs).
#[derive(Debug, Clone, PartialEq)]
pub struct RollbackReport {
    /// Fleet size.
    pub users: usize,
    /// When the regressed publication landed.
    pub regress_at_us: u64,
    /// When the canary crossed the agreement floor.
    pub detected_at_us: u64,
    /// Detection lag: `detected_at_us - regress_at_us`.
    pub detection_lag_us: u64,
    /// Served-vs-reference top-1 agreement at the detecting canary.
    pub agreement_at_detection: f64,
    /// First replica swapped back (rollback publication visible).
    pub first_swap_us: u64,
    /// Last replica swapped back.
    pub last_swap_us: u64,
    /// The staleness window: `last_swap_us - detected_at_us`. This is
    /// what the contended egress link stretches.
    pub staleness_us: u64,
    /// Full degraded exposure: `last_swap_us - regress_at_us`.
    pub exposure_us: u64,
    /// p95 queueing delay of the rollback pushes on the shared link.
    pub push_wait_p95_us: u64,
    /// Queries served over the whole run.
    pub queries_total: usize,
    /// Queries whose top-1 differed from the v1 reference.
    pub queries_degraded: usize,
    /// Degraded answers served *after* the user's replica swapped —
    /// must be zero: rollback restores exact v1 behavior.
    pub queries_degraded_after_swap: usize,
    /// Publications the registry accepted (v1 fleet + regression +
    /// rollbacks).
    pub publishes: u64,
    /// Rollback publications among them.
    pub rollbacks: u64,
    /// Versions retained in the durable log (full history: the
    /// regression stays on disk for the post-mortem).
    pub history_total: u64,
    /// Determinism fingerprint of the simulation trace.
    pub fingerprint: u64,
}

impl RollbackReport {
    /// Human-readable study summary (the `store-report` experiment's
    /// rollback section).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rollback under traffic: {} users, regression at {} us\n",
            self.users, self.regress_at_us
        ));
        out.push_str(&format!(
            "  detected at {} us (lag {} us, canary agreement {:.3})\n",
            self.detected_at_us, self.detection_lag_us, self.agreement_at_detection
        ));
        out.push_str(&format!(
            "  swaps {} .. {} us | staleness window {} us | exposure {} us\n",
            self.first_swap_us, self.last_swap_us, self.staleness_us, self.exposure_us
        ));
        out.push_str(&format!("  push wait p95 {} us\n", self.push_wait_p95_us));
        out.push_str(&format!(
            "  queries: {} total, {} degraded, {} degraded after swap\n",
            self.queries_total, self.queries_degraded, self.queries_degraded_after_swap
        ));
        out.push_str(&format!(
            "  log: {} publishes ({} rollbacks), {} versions retained\n",
            self.publishes, self.rollbacks, self.history_total
        ));
        out.push_str(&format!("  fingerprint {:#018x}\n", self.fingerprint));
        out
    }
}

/// A finished study: the report plus the live registry and its backing
/// "disk", so callers (and tests) can keep serving, restart the store
/// over the same bytes, or inspect retained history.
pub struct RollbackOutcome {
    /// The measurements.
    pub report: RollbackReport,
    /// The registry as the run left it (every user on a rolled-back
    /// version newer than the regression).
    pub registry: ShardedRegistry,
    /// The in-memory backend holding the durable log; `clone()` shares
    /// the same bytes, so reopening a store over it is a kill-free
    /// restart.
    pub disk: MemBackend,
    /// The v1 reference models, index = user.
    pub reference: Vec<SequenceModel>,
    /// The probe set the canary and queries used.
    pub probes: Vec<Vec<Step>>,
}

/// The reactive workload driving the study on the virtual clock.
struct RollbackFlow<'a> {
    cfg: &'a RollbackConfig,
    registry: &'a ShardedRegistry,
    bad: &'a [SequenceModel],
    v1: &'a [u64],
    probes: &'a [Vec<Step>],
    /// `good_top1[user][probe]`: the v1 reference answers.
    good_top1: &'a [Vec<usize>],
    horizon_us: u64,
    detected_at: Option<u64>,
    agreement_at_detection: f64,
    /// Per-user swap completion time, once rolled back.
    swaps: Vec<Option<u64>>,
    /// `(end_us, user, degraded)` per served query.
    query_log: Vec<(u64, usize, bool)>,
}

impl RollbackFlow<'_> {
    /// Served-vs-reference top-1 agreement across the canary set.
    fn canary_agreement(&self) -> f64 {
        let mut matches = 0usize;
        let mut total = 0usize;
        for user in 0..self.cfg.users {
            let (served, _) = self.registry.get(user).expect("published envelopes decode");
            for (p, probe) in self.probes.iter().enumerate() {
                total += 1;
                if served_top1(&served, probe) == self.good_top1[user][p] {
                    matches += 1;
                }
            }
        }
        matches as f64 / total.max(1) as f64
    }

    fn submit_canary(&self, tick: u64, at: u64, sim: &mut SimControl) {
        sim.submit(JobSpec { id: job_id(KIND_CANARY, tick), release_us: at, stages: Vec::new() });
    }
}

impl Workload for RollbackFlow<'_> {
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
        let kind = job.id >> KIND_SHIFT;
        let payload = job.id & PAYLOAD_MASK;
        match kind {
            KIND_QUERY => {
                let user = payload as usize % self.cfg.users;
                let probe_idx = payload as usize % self.probes.len();
                let (served, _) = self.registry.get(user).expect("published envelopes decode");
                let answer = served_top1(&served, &self.probes[probe_idx]);
                let degraded = answer != self.good_top1[user][probe_idx];
                self.query_log.push((job.end_us, user, degraded));
            }
            KIND_REGRESS => {
                // The bad fleet publication: every user re-published with
                // the over-noised postprocess, through the same durable
                // path as any legitimate update.
                for (user, model) in self.bad.iter().enumerate() {
                    self.registry.enroll(user, model);
                }
            }
            KIND_CANARY => {
                if self.detected_at.is_some() {
                    return;
                }
                let agreement = self.canary_agreement();
                if agreement < self.cfg.canary_agreement_floor {
                    self.detected_at = Some(job.end_us);
                    self.agreement_at_detection = agreement;
                    // Push the prior envelope to every replica over the
                    // one shared egress link — this is where contention
                    // stretches the staleness window.
                    for user in 0..self.cfg.users {
                        sim.submit(JobSpec {
                            id: job_id(KIND_PUSH, user as u64),
                            release_us: job.end_us,
                            stages: vec![Stage::Transfer {
                                label: "rollback-push",
                                link: 0,
                                bytes: self.cfg.push_bytes,
                                policy: TransferPolicy {
                                    timeout_us: None,
                                    retry: RetryPolicy::none(),
                                },
                            }],
                        });
                    }
                } else if job.end_us + self.cfg.canary_interval_us <= self.horizon_us {
                    self.submit_canary(payload + 1, job.end_us + self.cfg.canary_interval_us, sim);
                }
            }
            KIND_PUSH => {
                let user = payload as usize;
                self.registry
                    .rollback(user, self.v1[user])
                    .expect("v1 is retained in the durable log");
                self.swaps[user] = Some(job.end_us);
            }
            _ => unreachable!("unknown job kind {kind}"),
        }
    }
}

/// Runs the rollback-under-traffic study.
///
/// # Panics
///
/// Panics if the canary never detects the regression before the query
/// horizon (an agreement floor below the scrambled-answer baseline), or
/// if any configured count is zero.
pub fn run_rollback_study(cfg: &RollbackConfig) -> RollbackOutcome {
    assert!(cfg.users > 0 && cfg.queries > 0 && cfg.canary_probes > 0, "empty study");

    // The durable tier: store-backed registry, v1 fleet published
    // through the write-ahead log before traffic starts.
    let disk = MemBackend::new();
    let store = EnvelopeStore::open(
        Arc::new(disk.clone()),
        StoreConfig { shards: cfg.shards, compress: cfg.compress_log, ..StoreConfig::default() },
    )
    .expect("fresh backend opens");
    let registry = ShardedRegistry::with_store(
        reference_model(cfg.seed, 0),
        RegistryConfig { shards: cfg.shards, hot_capacity: (cfg.users / 2).max(2) },
        Arc::new(store),
    );

    let reference: Vec<SequenceModel> =
        (0..cfg.users).map(|u| reference_model(cfg.seed, u as u64 + 1)).collect();
    let v1: Vec<u64> = reference.iter().enumerate().map(|(u, m)| registry.enroll(u, m)).collect();

    // The regressed variants: same weights, scrambling postprocess.
    let bad: Vec<SequenceModel> = reference
        .iter()
        .enumerate()
        .map(|(u, m)| {
            let mut bad = m.clone();
            bad.set_postprocess(Postprocess::GaussianNoise {
                sigma: cfg.regression_sigma,
                seed: mix64(cfg.seed ^ (u as u64).wrapping_mul(0x9E37)),
            });
            bad
        })
        .collect();

    // Deterministic probe set and the v1 reference answers.
    let probes: Vec<Vec<Step>> = (0..cfg.canary_probes)
        .map(|p| {
            (0..2)
                .map(|s| {
                    (0..3)
                        .map(|d| {
                            let h = mix64(cfg.seed ^ ((p * 64 + s * 8 + d) as u64 | 1 << 40));
                            (h >> 40) as f32 / (1u64 << 24) as f32
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let good_top1: Vec<Vec<usize>> =
        reference.iter().map(|m| probes.iter().map(|p| served_top1(m, p)).collect()).collect();

    // The schedule: queries at a fixed cadence, the regression drop, and
    // the first canary (later canaries chain off completed ones).
    let mut initial: Vec<JobSpec> = (0..cfg.queries)
        .map(|i| JobSpec {
            id: job_id(KIND_QUERY, i as u64),
            release_us: i as u64 * cfg.query_gap_us,
            stages: vec![Stage::Compute { label: "query", duration_us: cfg.query_compute_us }],
        })
        .collect();
    initial.push(JobSpec {
        id: job_id(KIND_REGRESS, 0),
        release_us: cfg.regress_at_us,
        stages: Vec::new(),
    });
    initial.push(JobSpec {
        id: job_id(KIND_CANARY, 0),
        release_us: cfg.canary_interval_us,
        stages: Vec::new(),
    });

    let sim = Simulator::builder()
        .links([LinkSpec { profile: cfg.egress, discipline: cfg.egress_discipline }])
        .build();
    let mut flow = RollbackFlow {
        cfg,
        registry: &registry,
        bad: &bad,
        v1: &v1,
        probes: &probes,
        good_top1: &good_top1,
        horizon_us: cfg.queries as u64 * cfg.query_gap_us,
        detected_at: None,
        agreement_at_detection: 1.0,
        swaps: vec![None; cfg.users],
        query_log: Vec::with_capacity(cfg.queries),
    };
    let outcome = sim.run(&initial, &mut flow);

    let detected_at_us =
        flow.detected_at.expect("canary must detect the regression before the query horizon");
    let swap_times: Vec<u64> =
        flow.swaps.iter().map(|s| s.expect("every replica rolled back")).collect();
    let window = crate::staleness::StalenessWindow::measure(detected_at_us, &swap_times);

    let queries_degraded = flow.query_log.iter().filter(|(_, _, d)| *d).count();
    let queries_degraded_after_swap =
        crate::staleness::count_degraded_after_swap(&flow.query_log, &swap_times);

    let stats = registry.stats();
    let report = RollbackReport {
        users: cfg.users,
        regress_at_us: cfg.regress_at_us,
        detected_at_us,
        detection_lag_us: detected_at_us - cfg.regress_at_us,
        agreement_at_detection: flow.agreement_at_detection,
        first_swap_us: window.first_swap_us,
        last_swap_us: window.last_swap_us,
        staleness_us: window.staleness_us(),
        exposure_us: window.exposure_us(cfg.regress_at_us),
        push_wait_p95_us: stage_stats(&outcome, "rollback-push").wait_p95_us,
        queries_total: flow.query_log.len(),
        queries_degraded,
        queries_degraded_after_swap,
        publishes: stats.publishes,
        rollbacks: stats.rollbacks,
        history_total: stats.history_total(),
        fingerprint: outcome.fingerprint(),
    };
    RollbackOutcome { report, registry, disk, reference, probes }
}

/// User `u`'s deterministic v1 model (`u == 0` is the fleet fallback).
fn reference_model(seed: u64, u: u64) -> SequenceModel {
    let mut rng = StdRng::seed_from_u64(mix64(seed.wrapping_add(u)));
    SequenceModel::single_lstm(3, 4, 5, 0.0, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_store::StorageBackend;

    #[test]
    fn the_study_is_deterministic() {
        let cfg = RollbackConfig { users: 6, queries: 300, ..RollbackConfig::default() };
        let a = run_rollback_study(&cfg);
        let b = run_rollback_study(&cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.report.fingerprint, b.report.fingerprint);
    }

    #[test]
    fn the_staleness_window_is_ordered_and_paid_for() {
        let out = run_rollback_study(&RollbackConfig::default());
        let r = &out.report;
        assert!(r.regress_at_us < r.detected_at_us, "detection follows the regression");
        assert!(r.detected_at_us < r.first_swap_us, "pushes take link time");
        assert!(r.first_swap_us < r.last_swap_us, "FIFO pushes serialize");
        assert_eq!(r.staleness_us, r.last_swap_us - r.detected_at_us);
        assert!(r.staleness_us > 0);
        assert!(r.push_wait_p95_us > 0, "the shared egress link queues");
        assert!(r.queries_degraded > 0, "the regression was user-visible");
        assert_eq!(r.queries_degraded_after_swap, 0, "rollback restores v1 behavior");
        assert_eq!(r.rollbacks, r.users as u64);
        // v1 fleet + regression + rollbacks, all retained in the log.
        assert_eq!(r.publishes, 3 * r.users as u64);
        assert_eq!(r.history_total, r.publishes);
    }

    #[test]
    fn fatter_pushes_stretch_the_staleness_window() {
        let slim = run_rollback_study(&RollbackConfig::default()).report;
        let fat = run_rollback_study(&RollbackConfig {
            push_bytes: 4 * RollbackConfig::default().push_bytes,
            ..RollbackConfig::default()
        })
        .report;
        assert!(
            fat.staleness_us > slim.staleness_us,
            "4x push bytes must widen the window: {} vs {}",
            fat.staleness_us,
            slim.staleness_us
        );
    }

    #[test]
    fn rolled_back_serving_matches_v1_and_survives_a_restart() {
        let cfg = RollbackConfig { users: 5, queries: 300, ..RollbackConfig::default() };
        let out = run_rollback_study(&cfg);

        // Live registry: every user answers exactly like their v1 model
        // again, under a version newer than the regression's.
        for (user, reference) in out.reference.iter().enumerate() {
            let (served, _) = out.registry.get(user).unwrap();
            for probe in &out.probes {
                assert_eq!(served.predict_proba(probe), reference.predict_proba(probe));
            }
            // v1 fleet (users) + bad fleet (users) precede any rollback.
            assert!(out.registry.version_of(user).unwrap() > 2 * cfg.users as u64);
        }

        // Kill-free restart over the same bytes: history (including the
        // regression, for the post-mortem) and the rollback all survive.
        let disk: &dyn StorageBackend = &out.disk;
        assert!(disk.list().unwrap().iter().any(|n| n.ends_with(".plog")));
        let store = EnvelopeStore::open(
            Arc::new(out.disk.clone()),
            StoreConfig { shards: cfg.shards, ..StoreConfig::default() },
        )
        .unwrap();
        assert_eq!(store.recovery().torn_segments, 0);
        let reborn = ShardedRegistry::with_store(
            out.registry.general().clone(),
            RegistryConfig { shards: cfg.shards, hot_capacity: 4 },
            Arc::new(store),
        );
        for (user, reference) in out.reference.iter().enumerate() {
            assert_eq!(reborn.version_of(user), out.registry.version_of(user));
            let (served, _) = reborn.get(user).unwrap();
            for probe in &out.probes {
                assert_eq!(served.predict_proba(probe), reference.predict_proba(probe));
            }
        }
    }
}

//! The privacy-audit gate: no model reaches the serving registry without
//! facing the attack suite first.
//!
//! The paper evaluates model-inversion attacks *after* deployment; a
//! production fleet cannot afford that ordering. The gate turns the
//! [`pelican_attacks`] evaluation into a release check: every candidate
//! model is attacked with the provider's own red-team configuration
//! (adversary, attack method, prior), and if the measured leakage — attack
//! accuracy at the audit's top-k cutoff — exceeds the provider's budget,
//! the gate **escalates the defense** (climbing a ladder of
//! [`DefenseKind`] rungs, e.g. ever-sharper privacy temperatures) and
//! re-audits before release. A model leaves the gate in exactly one of
//! three states: passed as-is, escalated until compliant, or published
//! with the strongest rung *flagged* as still-leaking
//! ([`GateVerdict::Exhausted`]) so operators can quarantine it.
//!
//! Audits are deterministic: probes, priors and instances all derive from
//! the gate's seed, so the same candidate always receives the same
//! verdict — bit-identical across the trainer pool's worker counts.

use pelican::DefenseKind;
use pelican_attacks::prior::random_probes;
use pelican_attacks::{
    evaluate_attack, interest_locations_in, Adversary, AttackEvaluation, AttackMethod,
    CachedBlackBox, Instance, LogitCache, Prior, PriorKind, TimeBased,
};
use pelican_mobility::{FeatureSpace, Session};
use pelican_nn::SequenceModel;

/// Everything the gate needs to know about the user being audited.
///
/// Mirrors the threat model of §III-B: the provider red-teams with the
/// user's *training-time* marginals as the prior and attacks held-out
/// triples the model never saw.
#[derive(Debug, Clone)]
pub struct AuditSubject {
    /// The user's training sessions (prior marginals come from these).
    pub history: Vec<Session>,
    /// Held-out session triples; attack instances are built from them.
    pub holdout: Vec<[Session; 3]>,
}

/// Red-team configuration of the audit gate.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Which timesteps the simulated adversary observes (Table I).
    pub adversary: Adversary,
    /// Attack method run against each candidate.
    pub method: AttackMethod,
    /// Prior handed to the attack.
    pub prior: PriorKind,
    /// Top-k grid the evaluation scores.
    pub ks: Vec<usize>,
    /// The cutoff in `ks` the leakage threshold applies to.
    pub audit_k: usize,
    /// Attack instances sampled per audit (cost knob).
    pub max_instances: usize,
    /// Maximum tolerated attack accuracy at `audit_k` (fraction in
    /// `[0, 1]`). Above this, the gate escalates.
    pub max_leakage: f64,
    /// Defense every candidate carries into its first audit.
    pub base_defense: DefenseKind,
    /// Escalation ladder, weakest rung first. Rungs are absolute
    /// deployments, not increments: each one replaces the previous.
    pub ladder: Vec<DefenseKind>,
    /// Random probes used for the locations-of-interest scan.
    pub probe_count: usize,
    /// Confidence threshold of the locations-of-interest scan.
    pub interest_threshold: f32,
    /// Seed for probe generation and prediction-based priors.
    pub seed: u64,
}

impl Default for AuditConfig {
    /// Audits with the paper's cheapest strong attack (time-based, A1,
    /// true prior) and escalates through the privacy-temperature sweep of
    /// Fig. 5b. The budget applies at top-3: that is where the time-based
    /// attack separates defended from undefended models (top-1 is near
    /// the noise floor at small scales, Fig. 2a).
    fn default() -> Self {
        Self {
            adversary: Adversary::A1,
            method: AttackMethod::TimeBased(TimeBased::default()),
            prior: PriorKind::True,
            ks: vec![1, 3],
            audit_k: 3,
            max_instances: 6,
            max_leakage: 0.35,
            base_defense: DefenseKind::None,
            ladder: vec![
                DefenseKind::Temperature { temperature: 1e-1 },
                DefenseKind::Temperature { temperature: 1e-3 },
                DefenseKind::Temperature { temperature: 1e-5 },
            ],
            probe_count: 24,
            interest_threshold: 0.01,
            seed: 0x5EED,
        }
    }
}

/// How a candidate left the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateVerdict {
    /// Leakage was within budget under the base defense.
    Passed,
    /// One or more ladder rungs were applied; the final audit passed.
    Escalated,
    /// Even the strongest available rung (or the base defense, if the
    /// ladder is empty) leaked above budget; the model carries it anyway
    /// and is flagged for the operator.
    Exhausted,
}

impl std::fmt::Display for GateVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateVerdict::Passed => write!(f, "passed"),
            GateVerdict::Escalated => write!(f, "escalated"),
            GateVerdict::Exhausted => write!(f, "exhausted"),
        }
    }
}

/// The gate's full record for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Final state of the candidate.
    pub verdict: GateVerdict,
    /// Defense deployed on the published model.
    pub defense: DefenseKind,
    /// Ladder rungs climbed (0 when the base defense sufficed).
    pub rungs_climbed: usize,
    /// Attack accuracy at `audit_k` under the base defense.
    pub initial_leakage: f64,
    /// Attack accuracy at `audit_k` under the published defense.
    pub final_leakage: f64,
    /// Audits run (1 + re-audits after escalations).
    pub audits: usize,
    /// Total black-box model queries the audits spent.
    pub queries: u64,
    /// Oracle queries answered from the per-candidate logit cache
    /// instead of a forward pass. Escalation rungs only change the
    /// deployed defense (temperature/post-processing), never the
    /// weights, so every re-audit replays cached logits. Note the two
    /// counters have different scopes: `queries` counts *attack*
    /// queries only, while `cached` also counts replayed
    /// interest-probe sweeps — so `cached` can exceed `queries`; the
    /// gate's true forward-pass count is
    /// `queries + probe_count * audits - cached`.
    pub cached: u64,
    /// Oracle queries that actually ran a forward pass (the cache
    /// misses). For a fresh candidate this is the cost of audit #1; for
    /// a re-audit riding a warm [`LogitCache`] of unchanged weights it
    /// is zero — the observable form of "unchanged candidates pay zero
    /// forward passes".
    pub cache_misses: u64,
}

impl GateOutcome {
    /// Whether the published model's leakage is within the gate's budget.
    pub fn within_budget(&self, config: &AuditConfig) -> bool {
        self.final_leakage <= config.max_leakage
    }

    /// Cache hits: oracle queries that skipped their forward pass.
    pub fn saved_forward_passes(&self) -> u64 {
        self.cached
    }

    /// Forward passes the gate actually ran (its cache misses). Always
    /// equals `queries + probe_count * audits - cached`.
    pub fn forward_passes(&self) -> u64 {
        self.cache_misses
    }
}

/// Audits candidate models and escalates their defenses until the leakage
/// budget holds (or the ladder runs out).
#[derive(Debug, Clone)]
pub struct AuditGate {
    config: AuditConfig,
}

impl AuditGate {
    /// Creates a gate.
    ///
    /// # Panics
    ///
    /// Panics if `audit_k` is missing from `ks` or `max_leakage` is
    /// outside `[0, 1]`.
    pub fn new(config: AuditConfig) -> Self {
        assert!(
            config.ks.contains(&config.audit_k),
            "audit_k={} must be part of the evaluated grid {:?}",
            config.audit_k,
            config.ks
        );
        assert!(
            (0.0..=1.0).contains(&config.max_leakage),
            "max_leakage must be a fraction, got {}",
            config.max_leakage
        );
        Self { config }
    }

    /// The gate's red-team configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Runs one audit: attacks the candidate as-is and returns the
    /// aggregate evaluation. A subject with no held-out triples yields an
    /// empty evaluation (leakage 0 — nothing to attack with).
    pub fn audit(
        &self,
        model: &SequenceModel,
        space: &FeatureSpace,
        subject: &AuditSubject,
    ) -> AttackEvaluation {
        self.audit_cached(model, space, subject, &mut LogitCache::new())
    }

    /// [`AuditGate::audit`] with an explicit per-candidate logit cache.
    ///
    /// The cache keys raw logits by query fingerprint, so it stays valid
    /// across *defense* changes of the same weights — exactly what
    /// [`AuditGate::admit`]'s escalation ladder does between rungs: the
    /// first audit fills the cache, and every re-audit under a sharper
    /// temperature re-scores its candidates from cached logits without a
    /// single new forward pass. Never reuse a cache across candidates
    /// (weight changes invalidate it).
    pub fn audit_cached(
        &self,
        model: &SequenceModel,
        space: &FeatureSpace,
        subject: &AuditSubject,
        cache: &mut LogitCache,
    ) -> AttackEvaluation {
        let c = &self.config;
        let instances: Vec<Instance> = subject
            .holdout
            .iter()
            .take(c.max_instances)
            .map(|t| c.adversary.instance(t, space.location_of(&t[2])))
            .collect();
        let prior = Prior::of_kind(c.prior, space, &subject.history, model, c.seed ^ 0x9d);
        let probes = random_probes(space, c.probe_count, c.seed ^ 0x1f);
        let mut attacked = model.clone();
        let mut oracle = CachedBlackBox::new(&mut attacked, cache);
        let interest = interest_locations_in(&mut oracle, &probes, c.interest_threshold);
        evaluate_attack(&c.method, &mut oracle, space, &prior, &interest, &instances, &c.ks)
    }

    /// The full gate: installs the base defense, audits, escalates along
    /// the ladder while leakage exceeds the budget, and returns the
    /// release-ready model (defense installed) with the gate's record.
    pub fn admit(
        &self,
        candidate: SequenceModel,
        space: &FeatureSpace,
        subject: &AuditSubject,
    ) -> (SequenceModel, GateOutcome) {
        let (model, outcome, _cache) = self.admit_with_cache(candidate, space, subject);
        (model, outcome)
    }

    /// [`AuditGate::admit`], but hands back the logit cache the ladder
    /// filled — the entry point for *incremental* re-audits. The cache
    /// is keyed to the released candidate's weights, so a later
    /// [`AuditGate::audit_cached`] of the same published model (policy
    /// re-verification of an unchanged candidate) replays it entirely
    /// and pays zero forward passes. Discard the cache the moment the
    /// user's weights change (e.g. after a warm-start re-train).
    pub fn admit_with_cache(
        &self,
        mut candidate: SequenceModel,
        space: &FeatureSpace,
        subject: &AuditSubject,
    ) -> (SequenceModel, GateOutcome, LogitCache) {
        let c = &self.config;
        c.base_defense.apply(&mut candidate);
        let mut defense = c.base_defense;
        // One logit cache for the whole ladder: rungs only swap the
        // deployed defense (temperature/post-processing), never the
        // weights, so every re-audit below replays cached logits instead
        // of re-running forward passes.
        let mut cache = LogitCache::new();
        let mut eval = self.audit_cached(&candidate, space, subject, &mut cache);
        let initial_leakage = eval.accuracy(c.audit_k);
        let mut final_leakage = initial_leakage;
        let mut audits = 1;
        let mut queries = eval.queries;
        let mut rungs_climbed = 0;

        while final_leakage > c.max_leakage && rungs_climbed < c.ladder.len() {
            defense = c.ladder[rungs_climbed];
            rungs_climbed += 1;
            defense.apply(&mut candidate);
            eval = self.audit_cached(&candidate, space, subject, &mut cache);
            final_leakage = eval.accuracy(c.audit_k);
            audits += 1;
            queries += eval.queries;
        }

        // Verdicts follow the *leakage*, not the rung count: with an
        // empty ladder an over-budget model must still come out flagged,
        // never "passed".
        let verdict = if final_leakage > c.max_leakage {
            GateVerdict::Exhausted
        } else if rungs_climbed == 0 {
            GateVerdict::Passed
        } else {
            GateVerdict::Escalated
        };
        let outcome = GateOutcome {
            verdict,
            defense,
            rungs_climbed,
            initial_leakage,
            final_leakage,
            audits,
            queries,
            cached: cache.hits,
            cache_misses: cache.misses,
        };
        (candidate, outcome, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican_mobility::SpatialLevel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> FeatureSpace {
        FeatureSpace::new(SpatialLevel::Building, 6)
    }

    fn subject(space: &FeatureSpace, n: usize) -> AuditSubject {
        let mk = |b: usize, e: u32| Session {
            user: 0,
            building: b % space.n_locations,
            ap: b % space.n_locations,
            day: 1,
            entry_minutes: e,
            duration_minutes: 45,
        };
        let holdout: Vec<[Session; 3]> =
            (0..n).map(|i| [mk(i, 500), mk(i + 1, 550), mk(i + 2, 600)]).collect();
        let history = holdout.iter().flat_map(|t| t.iter().copied()).collect();
        AuditSubject { history, holdout }
    }

    fn model(seed: u64, space: &FeatureSpace) -> SequenceModel {
        let mut rng = StdRng::seed_from_u64(seed);
        SequenceModel::general_lstm(space.dim(), 8, space.n_locations, 0.0, &mut rng)
    }

    #[test]
    fn permissive_budget_passes_without_escalation() {
        let space = space();
        let gate = AuditGate::new(AuditConfig { max_leakage: 1.0, ..AuditConfig::default() });
        let (_, outcome) = gate.admit(model(1, &space), &space, &subject(&space, 4));
        assert_eq!(outcome.verdict, GateVerdict::Passed);
        assert_eq!(outcome.rungs_climbed, 0);
        assert_eq!(outcome.defense, DefenseKind::None);
        assert_eq!(outcome.audits, 1);
        assert!(outcome.queries > 0);
        assert!(outcome.within_budget(gate.config()));
    }

    #[test]
    fn impossible_budget_exhausts_the_ladder() {
        let space = space();
        // Audit at k = n_locations: the truth is always inside the full
        // ranking, so leakage is exactly 1.0 under every defense and a
        // zero budget must climb the whole ladder and come out flagged.
        let config =
            AuditConfig { max_leakage: 0.0, ks: vec![1, 6], audit_k: 6, ..AuditConfig::default() };
        let ladder_len = config.ladder.len();
        let gate = AuditGate::new(config);
        let (published, outcome) = gate.admit(model(2, &space), &space, &subject(&space, 4));
        assert_eq!(outcome.rungs_climbed, ladder_len, "every rung was tried");
        assert_eq!(outcome.audits, ladder_len + 1);
        assert_eq!(outcome.verdict, GateVerdict::Exhausted);
        assert_eq!(outcome.defense, DefenseKind::Temperature { temperature: 1e-5 });
        assert_eq!(published.temperature(), 1e-5, "strongest rung stays deployed");
    }

    #[test]
    fn empty_ladder_over_budget_is_exhausted_not_passed() {
        let space = space();
        // No rungs to climb: an over-budget model must still come out
        // flagged (leakage decides the verdict, not the rung count).
        let gate = AuditGate::new(AuditConfig {
            max_leakage: 0.0,
            ks: vec![1, 6],
            audit_k: 6,
            ladder: Vec::new(),
            ..AuditConfig::default()
        });
        let (_, outcome) = gate.admit(model(9, &space), &space, &subject(&space, 4));
        assert_eq!(outcome.verdict, GateVerdict::Exhausted);
        assert_eq!(outcome.rungs_climbed, 0);
        assert_eq!(outcome.defense, DefenseKind::None, "base defense stays deployed");
        assert!(!outcome.within_budget(gate.config()));
    }

    #[test]
    fn rung_escalation_rescores_nothing_it_already_scored() {
        let space = space();
        // Zero budget at k = n_locations forces the gate up the whole
        // ladder: 1 base audit + 3 escalated re-audits.
        let config =
            AuditConfig { max_leakage: 0.0, ks: vec![1, 6], audit_k: 6, ..AuditConfig::default() };
        let gate = AuditGate::new(config);
        let s = subject(&space, 4);
        let candidate = model(2, &space);

        // Reference: the forward passes one audit of the base-defended
        // candidate costs (probes + attack queries, deduplicated).
        let mut base = candidate.clone();
        gate.config().base_defense.apply(&mut base);
        let mut first = LogitCache::new();
        let first_eval = gate.audit_cached(&base, &space, &s, &mut first);

        let (_, outcome) = gate.admit(candidate, &space, &s);
        assert_eq!(outcome.audits, gate.config().ladder.len() + 1);
        assert!(outcome.cached > 0, "re-audits must hit the cache");
        // Every oracle query the gate made: attack queries plus one probe
        // sweep per audit. Subtracting the cache hits leaves the true
        // forward-pass count — which must equal audit #1's alone, i.e.
        // the three escalation rungs re-scored nothing they had scored.
        let probe_queries = (gate.config().probe_count * outcome.audits) as u64;
        assert_eq!(
            outcome.queries + probe_queries - outcome.cached,
            first.misses,
            "escalation rungs must not re-run any forward pass"
        );
        // The outcome now carries the counters directly: forward passes
        // equal audit #1's misses, saved passes equal the cache hits.
        assert_eq!(outcome.forward_passes(), first.misses);
        assert_eq!(outcome.cache_misses, first.misses);
        assert_eq!(outcome.saved_forward_passes(), outcome.cached);
        assert!(outcome.saved_forward_passes() > 0);
        // Re-audits still pay (and account) their black-box queries; only
        // the forward passes vanish.
        assert!(outcome.queries > first_eval.queries);
    }

    #[test]
    fn reaudit_of_unchanged_candidate_pays_zero_forward_passes() {
        let space = space();
        let gate = AuditGate::new(AuditConfig::default());
        let s = subject(&space, 5);
        let (published, outcome, mut cache) = gate.admit_with_cache(model(6, &space), &space, &s);
        assert!(outcome.cache_misses > 0, "the first audit pays real forward passes");
        let misses_before = cache.misses;
        // Policy re-verification of the unchanged published model: every
        // oracle query replays from the warm cache.
        let reaudit = gate.audit_cached(&published, &space, &s, &mut cache);
        assert_eq!(cache.misses, misses_before, "unchanged candidate re-ran a forward pass");
        assert_eq!(reaudit.accuracy(gate.config().audit_k), outcome.final_leakage);
    }

    #[test]
    fn cached_escalation_matches_an_uncached_audit_of_the_published_model() {
        let space = space();
        let config =
            AuditConfig { max_leakage: 0.0, ks: vec![1, 6], audit_k: 6, ..AuditConfig::default() };
        let gate = AuditGate::new(config);
        let s = subject(&space, 5);
        let (published, outcome) = gate.admit(model(3, &space), &space, &s);
        // A fresh, cache-free audit of the exact model the gate released
        // reproduces the gate's final leakage bit for bit.
        let fresh = gate.audit(&published, &space, &s);
        assert_eq!(fresh.accuracy(6), outcome.final_leakage);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let space = space();
        let gate = AuditGate::new(AuditConfig::default());
        let s = subject(&space, 5);
        let (m1, o1) = gate.admit(model(3, &space), &space, &s);
        let (m2, o2) = gate.admit(model(3, &space), &space, &s);
        assert_eq!(o1, o2);
        let xs = vec![vec![0.2; space.dim()]; 2];
        assert_eq!(m1.predict_proba(&xs), m2.predict_proba(&xs));
    }

    #[test]
    fn empty_holdout_passes_trivially() {
        let space = space();
        let gate = AuditGate::new(AuditConfig::default());
        let empty = AuditSubject { history: subject(&space, 2).history, holdout: Vec::new() };
        let (_, outcome) = gate.admit(model(4, &space), &space, &empty);
        assert_eq!(outcome.verdict, GateVerdict::Passed);
        assert_eq!(outcome.final_leakage, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be part of the evaluated grid")]
    fn audit_k_must_be_evaluated() {
        let _ = AuditGate::new(AuditConfig { audit_k: 7, ..AuditConfig::default() });
    }
}

//! The staleness-window bookkeeping shared by every swap-the-fleet-back
//! flow.
//!
//! Both the [`rollback`](crate::rollback) study and the A/B losing-arm
//! flip-back answer the same operational questions after a detection
//! fires: how long until the *last* replica swapped (the staleness
//! window a contended push link stretches), how long were users exposed
//! in total, and — the correctness gate — did any degraded answer slip
//! out *after* its replica had already swapped? Extracting the
//! measurement keeps the two flows honest about using identical
//! definitions.

/// The detection→swap timeline of one fleet-wide swap-back, all times on
/// the virtual clock (µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalenessWindow {
    /// When the detector (canary probe, A/B verdict, …) fired.
    pub detected_at_us: u64,
    /// First replica swapped.
    pub first_swap_us: u64,
    /// Last replica swapped; the fleet is clean from here on.
    pub last_swap_us: u64,
}

impl StalenessWindow {
    /// Measures the window from the detection instant and the per-replica
    /// swap completion times.
    ///
    /// # Panics
    ///
    /// Panics if `swap_times` is empty or any swap precedes detection.
    pub fn measure(detected_at_us: u64, swap_times: &[u64]) -> Self {
        let first_swap_us = *swap_times.iter().min().expect("at least one replica swapped");
        let last_swap_us = *swap_times.iter().max().expect("at least one replica swapped");
        assert!(detected_at_us <= first_swap_us, "a swap cannot precede its detection");
        Self { detected_at_us, first_swap_us, last_swap_us }
    }

    /// `last_swap_us - detected_at_us`: the span contended push links
    /// stretch.
    pub fn staleness_us(&self) -> u64 {
        self.last_swap_us - self.detected_at_us
    }

    /// `last_swap_us - cause_at_us`: total degraded exposure measured
    /// from the instant the bad state landed (regression publication,
    /// losing-rung rollout, …).
    ///
    /// # Panics
    ///
    /// Panics if the cause postdates the last swap.
    pub fn exposure_us(&self, cause_at_us: u64) -> u64 {
        self.last_swap_us
            .checked_sub(cause_at_us)
            .expect("the cause precedes the swap that fixes it")
    }
}

/// Counts log entries that are degraded *and* completed after their
/// replica's swap — the number that must be zero if swapping restores
/// exact prior behavior. `log` entries are `(end_us, replica, degraded)`
/// with `replica` indexing `swap_times`; entries ending exactly at the
/// swap instant belong to the old model (the swap is visible only to
/// later lookups).
pub fn count_degraded_after_swap(log: &[(u64, usize, bool)], swap_times: &[u64]) -> usize {
    log.iter().filter(|(end, replica, degraded)| *degraded && *end > swap_times[*replica]).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_spans_min_to_max_swap() {
        let w = StalenessWindow::measure(100, &[250, 180, 300]);
        assert_eq!(w.first_swap_us, 180);
        assert_eq!(w.last_swap_us, 300);
        assert_eq!(w.staleness_us(), 200);
        assert_eq!(w.exposure_us(40), 260);
    }

    #[test]
    fn single_replica_window_can_be_zero_wide() {
        let w = StalenessWindow::measure(50, &[50]);
        assert_eq!(w.staleness_us(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot precede")]
    fn swaps_before_detection_are_rejected() {
        StalenessWindow::measure(100, &[90, 150]);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_swap_sets_are_rejected() {
        StalenessWindow::measure(0, &[]);
    }

    #[test]
    fn degraded_after_swap_counts_strictly_later_entries() {
        let swaps = [200, 400];
        let log = [
            (150, 0, true),  // degraded, but before the swap: exposure, not a bug
            (200, 0, true),  // at the swap instant: still the old model
            (201, 0, true),  // after the swap: counted
            (500, 1, false), // after the swap but clean
            (450, 1, true),  // counted
        ];
        assert_eq!(count_degraded_after_swap(&log, &swaps), 2);
        assert_eq!(count_degraded_after_swap(&[], &swaps), 0);
    }
}

//! Closed-loop network/compute co-simulation of multi-round fleet
//! training — the network's outcomes feed back into what gets trained.
//!
//! [`crate::simulate_fleet_network`] prices a *finished* pipeline run:
//! every device's download, train, audit and upload replay on the
//! virtual clock regardless of what the network did to anyone. That
//! open-loop view is exactly right for costing one round, and exactly
//! wrong the moment training spans rounds: a device whose download timed
//! out never produced a model, so its warm-start round should not exist
//! — yet the post-hoc replay prices it anyway.
//!
//! [`cosimulate_fleet`] runs R training rounds through the reactive
//! engine (a reactive [`pelican_sim::Simulator::run`]) on one event heap:
//!
//! * every device's round is a four-stage sim job (download → train →
//!   audit → upload), with train/audit durations and upload sizes drawn
//!   from that round's deterministic [`TrainReport`];
//! * a device's round `r + 1` is **injected at the virtual instant its
//!   round `r` ended** — retries and contention reorder those arrivals,
//!   so publication order is a network outcome, not a list order;
//! * in [`LoopMode::Closed`], a round that timed out ends the device's
//!   participation: no publication, and its remaining rounds are simply
//!   absent from the timeline (and the trace);
//! * in [`LoopMode::Open`], failures are ignored — the finished run is
//!   replayed round after round, chained at the same instants — which
//!   makes the two modes **bit-identical whenever nothing fails** and
//!   divergent exactly when a timeout fires. The `cosim-report`
//!   experiment asserts both directions on every run.
//!
//! Because every per-round input is bit-identical across trainer-pool
//! widths (exact per-thread FLOP measurement, per-user seeds), the
//! closed-loop trace fingerprint is too — co-simulation inherits the
//! reproduction's width-invariance contract.

use std::collections::HashMap;

use pelican_sim::{
    DeviceLink, JobReport, JobSpec, JobStatus, LinkSpec, SimControl, SimOutcome, Simulator, Stage,
    Workload,
};
use pelican_tensor::nearest_rank;

use crate::network::NetworkConfig;
use crate::report::TrainReport;

/// Whether network outcomes feed back into the training timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Post-hoc pricing of a finished run: every device's every round
    /// replays, chained at whatever instant the previous round ended,
    /// success or failure.
    Open,
    /// Network outcomes feed back: a timed-out round ends the device's
    /// participation — it never trains that round, publishes nothing,
    /// and its remaining rounds are absent from the timeline.
    Closed,
}

/// One published envelope on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publication {
    /// Virtual publish time (upload completed), µs.
    pub t_us: u64,
    /// The publishing user.
    pub user_id: usize,
    /// Training round (0-based).
    pub round: usize,
}

/// One device-round that actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRecord {
    /// The device's user.
    pub user_id: usize,
    /// Training round (0-based).
    pub round: usize,
    /// Whether straggler injection degraded this device's link.
    pub straggler: bool,
    /// When the round entered the system (µs) — 0 for round 0, the
    /// previous round's end otherwise.
    pub release_us: u64,
    /// When the round completed or failed (µs).
    pub end_us: u64,
    /// Transfer attempts spent (2 = no retries anywhere).
    pub attempts: u32,
    /// Whether the round completed (false: retries exhausted).
    pub completed: bool,
}

impl RoundRecord {
    /// Release → publication (or failure), end to end (µs).
    pub fn span_us(&self) -> u64 {
        self.end_us - self.release_us
    }
}

/// A finished co-simulation.
#[derive(Debug, Clone)]
pub struct CosimReport {
    /// Whether failures fed back.
    pub mode: LoopMode,
    /// Rounds requested.
    pub rounds: usize,
    /// Devices in the cohort.
    pub devices: usize,
    /// Every device-round that ran, in virtual submission order.
    pub records: Vec<RoundRecord>,
    /// Publications in virtual-time order — the order a registry would
    /// assign versions, reshuffled by retries and contention.
    pub publications: Vec<Publication>,
    /// The raw simulation (trace + per-job stage reports).
    pub sim: SimOutcome,
}

impl CosimReport {
    /// Determinism fingerprint of the event trace.
    pub fn fingerprint(&self) -> u64 {
        self.sim.fingerprint()
    }

    /// Rounds that failed (a transfer exhausted its attempts).
    pub fn timed_out(&self) -> usize {
        self.sim.timed_out()
    }

    /// Device-rounds that ran (closed loops run fewer after failures).
    pub fn scheduled(&self) -> usize {
        self.records.len()
    }

    /// Device-rounds that never ran because the device dropped out — the
    /// rounds a post-hoc replay would have priced anyway.
    pub fn skipped(&self) -> usize {
        self.devices * self.rounds - self.records.len()
    }

    /// Completed device-rounds in round `r`.
    pub fn completed_in_round(&self, round: usize) -> usize {
        self.records.iter().filter(|r| r.round == round && r.completed).count()
    }

    /// Nearest-rank percentile of round `round`'s release→publish span
    /// over completed device-rounds (µs; 0 if none).
    pub fn round_percentile_us(&self, round: usize, q: f64) -> u64 {
        let mut spans: Vec<u64> = self
            .records
            .iter()
            .filter(|r| r.round == round && r.completed)
            .map(RoundRecord::span_us)
            .collect();
        spans.sort_unstable();
        nearest_rank(&spans, q).unwrap_or(0)
    }

    /// Whether publications arrived in a different order than device
    /// order within some round — the "retries reorder warm-start
    /// arrivals" signal.
    pub fn publications_reordered(&self, device_order: &[usize]) -> bool {
        let rank: HashMap<usize, usize> =
            device_order.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        (0..self.rounds).any(|round| {
            let ranks: Vec<usize> = self
                .publications
                .iter()
                .filter(|p| p.round == round)
                .map(|p| rank[&p.user_id])
                .collect();
            ranks.windows(2).any(|w| w[0] > w[1])
        })
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let ms = |us: u64| us as f64 / 1e3;
        let mut out = format!(
            "{:?} loop: {} devices x {} rounds -> {} scheduled, {} skipped, {} timed out; trace {:016x}\n",
            self.mode,
            self.devices,
            self.rounds,
            self.scheduled(),
            self.skipped(),
            self.timed_out(),
            self.fingerprint(),
        );
        for round in 0..self.rounds {
            out.push_str(&format!(
                "  round {round}: {} published, span p50 {:.1} ms  p95 {:.1} ms\n",
                self.completed_in_round(round),
                ms(self.round_percentile_us(round, 0.50)),
                ms(self.round_percentile_us(round, 0.95)),
            ));
        }
        out
    }
}

/// Round index rides in the job id's high bits so round 0 ids are plain
/// user ids — which keeps single-round co-simulation traces bit-identical
/// to the legacy open-loop replay.
const ROUND_SHIFT: u32 = 48;

fn job_id(round: usize, user_id: usize) -> u64 {
    ((round as u64) << ROUND_SHIFT) | user_id as u64
}

/// Runs `rounds.len()` training rounds through the reactive engine.
///
/// `rounds[r]` supplies round `r`'s deterministic per-device inputs
/// (simulated train/audit durations, upload sizes); every report must
/// cover the same users in the same order. Round 0 releases every device
/// at t = 0; each later round releases per device when its previous
/// round ends. See [`LoopMode`] for what failures do.
///
/// # Panics
///
/// Panics if `rounds` is empty, the reports disagree on the cohort, or a
/// user id overflows the 48-bit job-id namespace.
pub fn cosimulate_fleet(
    rounds: &[&TrainReport],
    general_bytes: u64,
    config: &NetworkConfig,
    mode: LoopMode,
) -> CosimReport {
    assert!(!rounds.is_empty(), "co-simulation needs at least one round");
    for round in &rounds[1..] {
        assert!(
            round
                .outcomes
                .iter()
                .map(|o| o.user_id)
                .eq(rounds[0].outcomes.iter().map(|o| o.user_id)),
            "every round must cover the same cohort in the same order"
        );
    }
    let devices: Vec<DeviceLink> = rounds[0]
        .outcomes
        .iter()
        .map(|o| config.mix.assign(config.seed, o.user_id as u64))
        .collect();

    // Link table, exactly as the open-loop replay lays it out: the
    // shared uplink (if any) is link 0; per-device FIFO links follow.
    let mut links: Vec<LinkSpec> = Vec::with_capacity(devices.len() + 1);
    let shared_uplink = match config.uplink {
        crate::network::UplinkMode::Shared { profile, discipline } => {
            links.push(LinkSpec { profile, discipline });
            true
        }
        crate::network::UplinkMode::PerDevice => false,
    };
    let device_link_base = links.len();
    links.extend(devices.iter().map(|d| LinkSpec::fifo(d.profile)));

    let mut flow = CosimFlow {
        rounds,
        general_bytes,
        config,
        mode,
        devices: &devices,
        device_of: rounds[0]
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                assert!((o.user_id as u64) < 1 << ROUND_SHIFT, "user id overflows job-id space");
                (o.user_id, i)
            })
            .collect(),
        shared_uplink,
        device_link_base,
        records: Vec::new(),
        publications: Vec::new(),
    };
    let initial: Vec<JobSpec> =
        (0..devices.len()).map(|device| flow.spec_for(device, 0, 0)).collect();
    let sim = Simulator::builder().links(links).build().run(&initial, &mut flow);
    CosimReport {
        mode,
        rounds: rounds.len(),
        devices: devices.len(),
        records: flow.records,
        publications: flow.publications,
        sim,
    }
}

/// The training loop as a reactive workload.
struct CosimFlow<'a> {
    rounds: &'a [&'a TrainReport],
    general_bytes: u64,
    config: &'a NetworkConfig,
    mode: LoopMode,
    devices: &'a [DeviceLink],
    device_of: HashMap<usize, usize>,
    shared_uplink: bool,
    device_link_base: usize,
    records: Vec<RoundRecord>,
    publications: Vec<Publication>,
}

impl CosimFlow<'_> {
    /// The four-stage job of `device`'s round `round`, released at
    /// `release_us`: download the general envelope over the device's own
    /// link, train and audit for the round's exact simulated durations,
    /// upload the published envelope over the (possibly shared) uplink.
    fn spec_for(&self, device: usize, round: usize, release_us: u64) -> JobSpec {
        let outcome = &self.rounds[round].outcomes[device];
        let device_link = self.device_link_base + device;
        let uplink = if self.shared_uplink { 0 } else { device_link };
        JobSpec {
            id: job_id(round, outcome.user_id),
            release_us,
            stages: vec![
                Stage::Transfer {
                    label: "download",
                    link: device_link,
                    bytes: self.general_bytes,
                    policy: self.config.download,
                },
                Stage::Compute {
                    label: "train",
                    duration_us: outcome.train_simulated.as_micros() as u64,
                },
                Stage::Compute {
                    label: "audit",
                    duration_us: outcome.audit_simulated.as_micros() as u64,
                },
                Stage::Transfer {
                    label: "upload",
                    link: uplink,
                    bytes: outcome.envelope_bytes as u64,
                    policy: self.config.upload,
                },
            ],
        }
    }
}

impl Workload for CosimFlow<'_> {
    fn on_job_end(&mut self, job: &JobReport, sim: &mut SimControl) {
        let round = (job.id >> ROUND_SHIFT) as usize;
        let user_id = (job.id & ((1 << ROUND_SHIFT) - 1)) as usize;
        let device = self.device_of[&user_id];
        let completed = job.status == JobStatus::Completed;
        // Transfer stages only: compute stages always report one attempt
        // and would inflate the retry accounting.
        let attempts = job
            .stages
            .iter()
            .filter(|s| matches!(s.label, "download" | "upload"))
            .map(|s| s.attempts)
            .sum();
        self.records.push(RoundRecord {
            user_id,
            round,
            straggler: self.devices[device].straggler,
            release_us: job.release_us,
            end_us: job.end_us,
            attempts,
            completed,
        });
        if completed {
            self.publications.push(Publication { t_us: job.end_us, user_id, round });
        }
        // Closed loop: a failed round ends the device's participation —
        // its later rounds never enter the timeline. Open loop replays
        // the finished run regardless.
        let proceed = match self.mode {
            LoopMode::Open => true,
            LoopMode::Closed => completed,
        };
        if proceed && round + 1 < self.rounds.len() {
            sim.submit(self.spec_for(device, round + 1, job.end_us));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{GateOutcome, GateVerdict};
    use crate::network::UplinkMode;
    use crate::report::JobOutcome;
    use pelican::DefenseKind;
    use pelican_nn::FitReport;
    use pelican_sim::{
        Discipline, LinkMix, LinkProfile, RetryPolicy, StragglerConfig, TransferPolicy,
    };
    use std::time::Duration;

    /// A synthetic round: deterministic per-device durations and upload
    /// sizes without paying for real training.
    fn synthetic_round(n: usize, salt: u64) -> TrainReport {
        let outcomes: Vec<JobOutcome> = (0..n)
            .map(|i| JobOutcome {
                user_id: 100 + i,
                version: i as u64 + 1,
                warm: salt > 0,
                gate: GateOutcome {
                    verdict: GateVerdict::Passed,
                    defense: DefenseKind::None,
                    rungs_climbed: 0,
                    initial_leakage: 0.1,
                    final_leakage: 0.1,
                    audits: 1,
                    queries: 10,
                    cached: 0,
                    cache_misses: 10,
                },
                fit: FitReport { epoch_losses: vec![0.5], steps: 4, samples_per_epoch: 4 },
                enroll_latency: Duration::from_millis(5),
                train_simulated: Duration::from_millis(4 + (i as u64 + salt) % 3),
                audit_simulated: Duration::from_millis(2),
                envelope_bytes: 60_000 + 1_000 * salt as usize,
            })
            .collect();
        TrainReport::new(2, outcomes, Duration::from_millis(40), 1_000)
    }

    fn straggling(fraction: f64, slowdown: f64) -> NetworkConfig {
        NetworkConfig {
            mix: LinkMix::all_wifi().with_stragglers(StragglerConfig { fraction, slowdown }),
            download: TransferPolicy { timeout_us: Some(40_000), retry: RetryPolicy::none() },
            seed: 3,
            ..NetworkConfig::default()
        }
    }

    #[test]
    fn open_and_closed_loops_are_bit_identical_without_failures() {
        let fresh = synthetic_round(6, 0);
        let warm = synthetic_round(6, 1);
        let rounds = [&fresh, &warm];
        let config = NetworkConfig::default();
        let open = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Open);
        let closed = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Closed);
        assert_eq!(open.timed_out(), 0);
        assert_eq!(open.sim.trace, closed.sim.trace, "no failures ⇒ nothing to feed back");
        assert_eq!(open.fingerprint(), closed.fingerprint());
        assert_eq!(open.records, closed.records);
        assert_eq!(open.publications, closed.publications);
        assert_eq!(closed.scheduled(), 12);
        assert_eq!(closed.skipped(), 0);
    }

    #[test]
    fn closed_loop_drops_a_timed_out_devices_remaining_rounds() {
        let fresh = synthetic_round(12, 0);
        let warm = synthetic_round(12, 1);
        let rounds = [&fresh, &warm];
        // 40 ms downloads are hopeless at a 50x slowdown, fine on wifi.
        let config = straggling(0.25, 50.0);
        let open = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Open);
        let closed = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Closed);
        assert!(closed.timed_out() > 0, "stragglers must fail their downloads");
        assert_ne!(open.fingerprint(), closed.fingerprint(), "failures must diverge the loops");
        assert!(closed.skipped() > 0);
        assert_eq!(open.skipped(), 0, "the open loop prices every round regardless");
        // The failed device's warm round exists only in the open loop.
        let failed_round0: Vec<usize> = closed
            .records
            .iter()
            .filter(|r| r.round == 0 && !r.completed)
            .map(|r| r.user_id)
            .collect();
        assert!(!failed_round0.is_empty());
        for user in failed_round0 {
            assert!(
                !closed.records.iter().any(|r| r.user_id == user && r.round == 1),
                "closed loop: user {user}'s round 1 must be absent"
            );
            assert!(
                open.records.iter().any(|r| r.user_id == user && r.round == 1),
                "open loop: user {user}'s round 1 must still be priced"
            );
        }
        // Traces agree on that absence too, via the round-tagged job ids.
        let closed_round1_jobs = closed.sim.jobs().filter(|j| j.id() >> ROUND_SHIFT == 1).count();
        assert_eq!(closed_round1_jobs, 12 - closed.timed_out_round0());
    }

    #[test]
    fn retries_reorder_warm_start_arrivals() {
        let fresh = synthetic_round(10, 0);
        let warm = synthetic_round(10, 1);
        let rounds = [&fresh, &warm];
        // Ten uploads collide on one shared FIFO uplink with a timeout
        // tight enough that queued attempts expire and retry with
        // backoff. The contention is transient, so every retry
        // eventually lands — but the backoff lottery decides who
        // publishes (and therefore warm-starts) first.
        let config = NetworkConfig {
            mix: LinkMix::all_wifi()
                .with_stragglers(StragglerConfig { fraction: 0.3, slowdown: 2.0 }),
            uplink: UplinkMode::Shared {
                profile: LinkProfile::wifi(),
                discipline: Discipline::Fifo,
            },
            upload: TransferPolicy {
                timeout_us: Some(30_000),
                retry: RetryPolicy::exponential(12, 10_000, 1.5),
            },
            seed: 3,
            ..NetworkConfig::default()
        };
        let closed = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Closed);
        assert_eq!(closed.timed_out(), 0, "transient contention ⇒ retries eventually succeed");
        let retries: u32 =
            closed.records.iter().map(|r| r.attempts).sum::<u32>() - 2 * closed.scheduled() as u32;
        assert!(retries > 0, "queued uploads must have timed out and retried");
        let device_order: Vec<usize> = fresh.outcomes.iter().map(|o| o.user_id).collect();
        assert!(
            closed.publications_reordered(&device_order),
            "retries must reorder publication order"
        );
        assert_eq!(closed.publications.len(), 20);
        // Publications are in virtual-time order.
        for w in closed.publications.windows(2) {
            assert!(w[0].t_us <= w[1].t_us);
        }
    }

    #[test]
    fn cosimulation_is_deterministic() {
        let fresh = synthetic_round(8, 0);
        let warm = synthetic_round(8, 1);
        let rounds = [&fresh, &warm];
        let config = straggling(0.25, 50.0);
        let a = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Closed);
        let b = cosimulate_fleet(&rounds, 80_000, &config, LoopMode::Closed);
        assert_eq!(a.sim.trace, b.sim.trace);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.records, b.records);
        assert!(!a.render().is_empty());
    }

    impl CosimReport {
        /// Round-0 failures (test helper).
        fn timed_out_round0(&self) -> usize {
            self.records.iter().filter(|r| r.round == 0 && !r.completed).count()
        }
    }
}

//! Pipeline reporting: throughput, audit outcomes, enroll latency.
//!
//! Model weights and audit verdicts in a report are deterministic; the
//! wall-clock fields (`wall`, `enroll_latency`, and everything derived
//! from them) measure the *host* machine, since parallel speedup is
//! exactly the thing simulated time cannot show.

use std::time::Duration;

use pelican_nn::FitReport;
use pelican_tensor::nearest_rank;

use crate::audit::{GateOutcome, GateVerdict};

/// One published model's record.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The personalized user.
    pub user_id: usize,
    /// Publication version the registry assigned (schedule-dependent).
    pub version: u64,
    /// Whether this was a warm-start update.
    pub warm: bool,
    /// The audit gate's record (deterministic).
    pub gate: GateOutcome,
    /// Fit report of the on-device training (deterministic).
    pub fit: FitReport,
    /// Host time from job steal to registry publication.
    pub enroll_latency: Duration,
    /// Simulated device-tier time of this job's training, derived from
    /// its exact per-thread FLOP count (deterministic for any pool
    /// width) — the `train` stage of the network simulation.
    pub train_simulated: Duration,
    /// Simulated device-tier time of this job's privacy audit
    /// (deterministic) — the `audit` stage of the network simulation.
    pub audit_simulated: Duration,
    /// Size of the published envelope in bytes — the payload the
    /// network simulation uploads.
    pub envelope_bytes: usize,
}

/// Aggregate result of one pipeline run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Trainer-pool width of the run.
    pub workers: usize,
    /// Per-job outcomes, in job order regardless of completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Host wall-clock time of the whole run.
    pub wall: Duration,
    /// Total floating-point operations spent (training + audits), summed
    /// across all workers.
    pub flops: u64,
    /// Enroll latencies sorted ascending, built once at construction so
    /// percentile queries never re-clone or re-sort the outcomes.
    sorted_latencies: Vec<Duration>,
}

impl TrainReport {
    /// Builds a report, sorting the enroll latencies exactly once.
    pub fn new(workers: usize, outcomes: Vec<JobOutcome>, wall: Duration, flops: u64) -> Self {
        let mut sorted_latencies: Vec<Duration> =
            outcomes.iter().map(|o| o.enroll_latency).collect();
        sorted_latencies.sort_unstable();
        Self { workers, outcomes, wall, flops, sorted_latencies }
    }

    /// Models published per host second.
    pub fn models_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.outcomes.len() as f64 / secs
        }
    }

    /// Published models whose first audit already passed.
    pub fn passed(&self) -> usize {
        self.count(GateVerdict::Passed)
    }

    /// Published models that needed at least one escalation rung.
    pub fn escalated(&self) -> usize {
        self.count(GateVerdict::Escalated)
    }

    /// Published models still above budget at the top of the ladder
    /// (flagged for the operator).
    pub fn exhausted(&self) -> usize {
        self.count(GateVerdict::Exhausted)
    }

    /// Warm-start updates in this run.
    pub fn warm_starts(&self) -> usize {
        self.outcomes.iter().filter(|o| o.warm).count()
    }

    /// Total black-box queries the audits spent.
    pub fn audit_queries(&self) -> u64 {
        self.outcomes.iter().map(|o| o.gate.queries).sum()
    }

    /// Forward passes the audits actually ran (cache misses summed
    /// across every gate).
    pub fn audit_forward_passes(&self) -> u64 {
        self.outcomes.iter().map(|o| o.gate.cache_misses).sum()
    }

    /// Forward passes the logit caches saved (cache hits summed across
    /// every gate) — escalation rungs and incremental re-audits replay
    /// these instead of re-querying the model.
    pub fn forward_passes_saved(&self) -> u64 {
        self.outcomes.iter().map(|o| o.gate.cached).sum()
    }

    /// Median end-to-end enroll latency (job steal → publication).
    pub fn enroll_latency_p50(&self) -> Duration {
        self.latency_percentile(0.50)
    }

    /// 95th-percentile end-to-end enroll latency.
    pub fn enroll_latency_p95(&self) -> Duration {
        self.latency_percentile(0.95)
    }

    fn count(&self, verdict: GateVerdict) -> usize {
        self.outcomes.iter().filter(|o| o.gate.verdict == verdict).count()
    }

    /// Nearest-rank percentile over the pre-sorted enroll latencies
    /// (zero if empty). O(1): the sort happened once in
    /// [`TrainReport::new`].
    fn latency_percentile(&self, q: f64) -> Duration {
        nearest_rank(&self.sorted_latencies, q).unwrap_or(Duration::ZERO)
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} models published by {} workers in {:.2?} ({:.2} models/s, {:.1}e9 flops)\n",
            self.outcomes.len(),
            self.workers,
            self.wall,
            self.models_per_sec(),
            self.flops as f64 / 1e9,
        ));
        out.push_str(&format!(
            "audit gate  {} passed, {} escalated, {} exhausted ({} queries: {} forward passes, {} cached)\n",
            self.passed(),
            self.escalated(),
            self.exhausted(),
            self.audit_queries(),
            self.audit_forward_passes(),
            self.forward_passes_saved(),
        ));
        out.push_str(&format!(
            "enroll      p50 {:.2?}  p95 {:.2?}  ({} warm starts)\n",
            self.enroll_latency_p50(),
            self.enroll_latency_p95(),
            self.warm_starts(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pelican::DefenseKind;

    fn outcome(verdict: GateVerdict, latency_ms: u64, warm: bool) -> JobOutcome {
        JobOutcome {
            user_id: 0,
            version: 1,
            warm,
            gate: GateOutcome {
                verdict,
                defense: DefenseKind::None,
                rungs_climbed: 0,
                initial_leakage: 0.5,
                final_leakage: 0.2,
                audits: 1,
                queries: 10,
                cached: 4,
                cache_misses: 6,
            },
            fit: FitReport { epoch_losses: vec![1.0], steps: 1, samples_per_epoch: 1 },
            enroll_latency: Duration::from_millis(latency_ms),
            train_simulated: Duration::from_millis(2),
            audit_simulated: Duration::from_millis(1),
            envelope_bytes: 1_000,
        }
    }

    #[test]
    fn report_aggregates_verdicts_and_latency() {
        let report = TrainReport::new(
            4,
            vec![
                outcome(GateVerdict::Passed, 10, false),
                outcome(GateVerdict::Escalated, 20, false),
                outcome(GateVerdict::Escalated, 30, true),
                outcome(GateVerdict::Exhausted, 40, false),
            ],
            Duration::from_secs(2),
            4_000_000_000,
        );
        assert_eq!((report.passed(), report.escalated(), report.exhausted()), (1, 2, 1));
        assert_eq!(report.warm_starts(), 1);
        assert_eq!(report.audit_queries(), 40);
        assert_eq!(report.audit_forward_passes(), 24);
        assert_eq!(report.forward_passes_saved(), 16);
        assert_eq!(report.models_per_sec(), 2.0);
        assert_eq!(report.enroll_latency_p50(), Duration::from_millis(20));
        assert_eq!(report.enroll_latency_p95(), Duration::from_millis(40));
        let rendered = report.render();
        assert!(rendered.contains("1 passed, 2 escalated, 1 exhausted"));
        assert!(rendered.contains("1 warm starts"));
    }

    #[test]
    fn empty_report_is_well_defined() {
        let report = TrainReport::new(1, Vec::new(), Duration::ZERO, 0);
        assert_eq!(report.models_per_sec(), 0.0);
        assert_eq!(report.enroll_latency_p50(), Duration::ZERO);
        assert!(!report.render().is_empty());
    }

    #[test]
    fn percentiles_ignore_outcome_order() {
        // The latencies are sorted once at construction, not on every
        // call — shuffled outcome order must not change any percentile.
        let latencies = [40, 10, 30, 20];
        let outcomes: Vec<JobOutcome> =
            latencies.iter().map(|&ms| outcome(GateVerdict::Passed, ms, false)).collect();
        let report = TrainReport::new(2, outcomes, Duration::from_secs(1), 1);
        assert_eq!(report.enroll_latency_p50(), Duration::from_millis(20));
        assert_eq!(report.enroll_latency_p95(), Duration::from_millis(40));
        // Outcome order itself is preserved for callers.
        assert_eq!(report.outcomes[0].enroll_latency, Duration::from_millis(40));
    }
}
